//! Tests pinned to specific quantitative claims in the paper's text, beyond
//! the tables and figures.

use replay_core::{optimize, AliasProfile, OptConfig};
use replay_frame::{ControlExpectation, Frame, FrameId};
use replay_trace::workloads;
use replay_uop::{ArchReg, Cond, Opcode, Uop};
use replay_x86::Interp;

/// §5.1.1: "we attain an average micro-operation-to-x86 instruction ratio
/// of 1.4".
#[test]
fn uop_ratio_near_1_4() {
    let mut x86 = 0u64;
    let mut uops = 0u64;
    for w in workloads::all() {
        let (program, data) = w.segment_program(0);
        let mut interp = Interp::new(program);
        for (addr, bytes) in &data {
            interp.machine.mem.write_bytes(*addr, bytes);
        }
        interp.run(5_000).unwrap();
        x86 += interp.translator().x86_count();
        uops += interp.translator().uop_count();
    }
    let ratio = uops as f64 / x86 as f64;
    assert!(
        (1.25..1.55).contains(&ratio),
        "uop/x86 ratio {ratio:.3}, paper: 1.4"
    );
}

/// §5.1.1: long-flow (serializing) instructions account for well under
/// 0.05% of the dynamic stream.
#[test]
fn longflow_fraction_tiny() {
    let mut total = 0usize;
    let mut longflow = 0usize;
    for w in workloads::all() {
        let t = w.segment_trace(0, 20_000);
        total += t.len();
        longflow += t
            .records()
            .iter()
            .filter(|r| matches!(r.inst, replay_x86::Inst::LongFlow))
            .count();
    }
    let frac = longflow as f64 / total as f64;
    assert!(frac < 0.0005, "long-flow fraction {frac}");
}

/// §3.3's "larger frame" discussion: when the code surrounding a call site
/// is included in the frame, the whole procedure reduces to its two stores
/// plus the check — parameter loads, return-address load, and return jump
/// all disappear.
#[test]
fn figure2_in_larger_frame_collapses_to_stores_and_check() {
    use ArchReg::*;
    let ret_addr = 0x105i32;
    let uops = vec![
        // Call site: PUSH argument values (constants here), CALL.
        Uop::mov_imm(Et1, 0x40).at(0xf0),
        Uop::store(Esp, -4, Et1).at(0xf0),
        Uop::lea(Esp, Esp, None, 1, -4).at(0xf0),
        Uop::mov_imm(Et1, 0x50).at(0xf8),
        Uop::store(Esp, -4, Et1).at(0xf8),
        Uop::lea(Esp, Esp, None, 1, -4).at(0xf8),
        // CALL 0x10 (return address 0x105)
        Uop::mov_imm(Et1, ret_addr).at(0x100),
        Uop::store(Esp, -4, Et1).at(0x100),
        Uop::lea(Esp, Esp, None, 1, -4).at(0x100),
        Uop::jmp(0x10).at(0x100),
        // The procedure of Figure 2.
        Uop::store(Esp, -4, Ebp).at(0x10),
        Uop::lea(Esp, Esp, None, 1, -4).at(0x10),
        Uop::store(Esp, -4, Ebx).at(0x11),
        Uop::lea(Esp, Esp, None, 1, -4).at(0x11),
        Uop::load(Ecx, Esp, 0xc).at(0x12),
        Uop::load(Ebx, Esp, 0x10).at(0x16),
        Uop::alu(Opcode::Xor, Eax, Eax, Eax).at(0x1a),
        Uop::mov(Edx, Ecx).at(0x1c),
        Uop::alu(Opcode::Or, Edx, Edx, Ebx).at(0x1e),
        Uop::assert_cc(Cond::Eq).at(0x20),
        Uop::lea(Esp, Esp, None, 1, 4).at(0x30),
        Uop::load(Ebx, Esp, -4).at(0x30),
        Uop::lea(Esp, Esp, None, 1, 4).at(0x31),
        Uop::load(Ebp, Esp, -4).at(0x31),
        // RET biased to the call site: converted target assertion.
        Uop::load(Et2, Esp, 0).at(0x32),
        Uop::lea(Esp, Esp, None, 1, 4).at(0x32),
        Uop::assert_cmp(Cond::Eq, Et2, None, ret_addr).at(0x32),
        // Back at the call site: pop the arguments.
        Uop::alu_imm(Opcode::Add, Esp, Esp, 8).at(0x105),
    ];
    let n = uops.len();
    let frame = Frame {
        id: FrameId(3),
        start_addr: 0xf0,
        x86_addrs: vec![
            0xf0, 0xf8, 0x100, 0x10, 0x11, 0x12, 0x16, 0x1a, 0x1c, 0x1e, 0x20, 0x30, 0x31, 0x32,
            0x105,
        ],
        block_starts: vec![0, 10, 20],
        expectations: vec![
            ControlExpectation {
                x86_addr: 0x20,
                expected_next: 0x30,
                uop_index: 19,
            },
            ControlExpectation {
                x86_addr: 0x32,
                expected_next: 0x105,
                uop_index: 26,
            },
        ],
        exit_next: 0x110,
        orig_uop_count: n,
        uops,
    };
    let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
    // Parameter loads forwarded from the argument pushes.
    assert!(
        stats.store_forwards >= 4,
        "param + saved-reg + ret loads forwarded"
    );
    // The return-target assertion is proven and removed.
    assert!(stats.asserts_removed >= 1, "constant return target removed");
    // The intra-frame CALL jump is removed.
    assert!(stats.nop_removed >= 1);
    // Every load disappears.
    assert_eq!(
        opt.load_count(),
        0,
        "all five loads removed:\n{}",
        opt.listing()
    );
    // What remains: the stores (never removed), the check (09+10), and
    // whatever live-out housekeeping survives. The paper says "two stores
    // and a single check" for the procedure body; our frame also carries
    // the call-site argument stores.
    // 28 uops collapse to 13: three argument/return-address stores with
    // one merged ESP update at the call site, the procedure's two saves,
    // the check (OR + assert), and the final stack pop.
    assert!(
        opt.uop_count() <= 13,
        "procedure collapses ({} uops left):\n{}",
        opt.uop_count(),
        opt.listing()
    );
    let remaining_asserts = opt.iter_valid().filter(|(_, u)| u.op.is_assert()).count();
    assert_eq!(remaining_asserts, 1, "only the real check remains");
}

/// §2: atomicity — either all of a frame's stores commit or none do.
#[test]
fn frame_commit_is_atomic() {
    use replay_core::{exec_frame, FrameOutcome, OptFrame};
    let uops = vec![
        Uop::store(ArchReg::Esi, 0, ArchReg::Eax).at(1),
        Uop::store(ArchReg::Esi, 4, ArchReg::Ebx).at(2),
        Uop::cmp_imm(ArchReg::Ecx, 1).at(3),
        Uop::assert_cc(Cond::Eq).at(3),
        Uop::store(ArchReg::Esi, 8, ArchReg::Edx).at(4),
    ];
    let n = uops.len();
    let frame = Frame {
        id: FrameId(4),
        start_addr: 1,
        x86_addrs: vec![1, 2, 3, 4],
        block_starts: vec![0],
        expectations: vec![],
        exit_next: 5,
        orig_uop_count: n,
        uops,
    };
    let mut f = OptFrame::from_frame(&frame);
    f.compact();

    let mut m = replay_uop::MachineState::new();
    m.set_reg(ArchReg::Esi, 0x8000);
    m.set_reg(ArchReg::Eax, 1);
    m.set_reg(ArchReg::Ebx, 2);
    m.set_reg(ArchReg::Edx, 3);
    m.set_reg(ArchReg::Ecx, 0); // assert will fire
    let out = exec_frame(&f, &mut m);
    assert!(matches!(out, FrameOutcome::AssertFired { .. }));
    for off in [0u32, 4, 8] {
        assert_eq!(m.load32(0x8000 + off), 0, "no partial commit at +{off}");
    }

    m.set_reg(ArchReg::Ecx, 1); // assert holds
    let out = exec_frame(&f, &mut m);
    assert!(matches!(out, FrameOutcome::Completed { .. }));
    assert_eq!(m.load32(0x8000), 1);
    assert_eq!(m.load32(0x8004), 2);
    assert_eq!(m.load32(0x8008), 3);
}

/// §4: the optimizer never reorders or inserts memory operations — the
/// sequence of store addresses is a subsequence invariant.
#[test]
fn memory_order_is_preserved() {
    let uops = vec![
        Uop::store(ArchReg::Esp, -4, ArchReg::Eax).at(1),
        Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4).at(1),
        Uop::store(ArchReg::Esp, -4, ArchReg::Ebx).at(2),
        Uop::load(ArchReg::Ecx, ArchReg::Esp, 0).at(3),
        Uop::store(ArchReg::Esi, 0, ArchReg::Ecx).at(4),
    ];
    let n = uops.len();
    let frame = Frame {
        id: FrameId(5),
        start_addr: 1,
        x86_addrs: vec![1, 2, 3, 4],
        block_starts: vec![0],
        expectations: vec![],
        exit_next: 5,
        orig_uop_count: n,
        uops,
    };
    let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
    let stores: Vec<_> = opt
        .iter_valid()
        .filter(|(_, u)| u.is_store())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(stores.len(), 3, "no store removed or added");
    let mut sorted = stores.clone();
    sorted.sort_unstable();
    assert_eq!(stores, sorted, "stores stay in program order");
}
