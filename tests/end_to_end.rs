//! End-to-end integration: the whole stack — workload generation, the
//! functional interpreter, the injector, the frame constructor, the
//! optimizer, the datapath model, the frame cache, the timing model, and
//! the verifier — wired together exactly as the benchmark harnesses use it.

use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_timing::CycleBin;
use replay_trace::{read_trace, workloads, write_trace};

const N: usize = 8_000;

#[test]
fn every_workload_runs_every_config() {
    for w in workloads::all() {
        let trace = w.segment_trace(0, N);
        for kind in ConfigKind::ALL {
            let r = simulate(&trace, &SimConfig::new(kind).without_verify());
            assert_eq!(
                r.x86_retired, N as u64,
                "{} {kind}: all instructions retire",
                w.name
            );
            assert_eq!(
                r.cycles,
                r.bins.total(),
                "{} {kind}: every cycle is classified",
                w.name
            );
            assert!(r.ipc() > 0.05, "{} {kind}: ipc sane ({})", w.name, r.ipc());
        }
    }
}

#[test]
fn verifier_passes_on_every_workload() {
    for w in workloads::all() {
        let trace = w.segment_trace(0, N);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(r.verify.checked > 0, "{}: frames verified", w.name);
        assert_eq!(r.verify.failed, 0, "{}: no unsound optimizations", w.name);
    }
}

#[test]
fn optimization_always_helps_or_is_neutral_on_average() {
    // Across the suite RPO must beat RP on average (the paper's +17%);
    // individual apps may be near-neutral.
    let mut rp_cycles = 0u64;
    let mut rpo_cycles = 0u64;
    for w in workloads::all() {
        let trace = w.segment_trace(0, N);
        rp_cycles += simulate(&trace, &SimConfig::new(ConfigKind::Replay).without_verify()).cycles;
        rpo_cycles += simulate(
            &trace,
            &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
        )
        .cycles;
    }
    assert!(
        rpo_cycles < rp_cycles,
        "optimization reduces total cycles: RPO {rpo_cycles} vs RP {rp_cycles}"
    );
}

#[test]
fn removal_lands_in_paper_band() {
    // Average dynamic uop removal across the suite should be in the
    // neighbourhood of the paper's 21% (we accept a generous band; the
    // exact value is recorded in EXPERIMENTS.md).
    let mut removals = Vec::new();
    for w in workloads::all() {
        let trace = w.segment_trace(0, N);
        let r = simulate(
            &trace,
            &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
        );
        removals.push(r.uop_removal());
    }
    let avg = removals.iter().sum::<f64>() / removals.len() as f64;
    assert!(
        (0.10..0.40).contains(&avg),
        "average dynamic uop removal {avg:.3} out of band"
    );
}

#[test]
fn spec_coverage_exceeds_desktop_coverage() {
    use replay_trace::Suite;
    let mut spec = Vec::new();
    let mut desk = Vec::new();
    for w in workloads::all() {
        let trace = w.segment_trace(0, N);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::Replay).without_verify());
        match w.suite {
            Suite::SpecInt => spec.push(r.coverage),
            Suite::Desktop => desk.push(r.coverage),
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&spec) > avg(&desk),
        "SPEC coverage {:.2} should exceed desktop {:.2} (paper: 86% vs 72%)",
        avg(&spec),
        avg(&desk)
    );
}

#[test]
fn excel_store_forwarding_backfires() {
    // The Figure 10 inversion: with speculative memory optimization on a
    // heavily aliasing workload, disabling store forwarding must not lose
    // much — and aborts must be visible with it enabled.
    let w = workloads::by_name("excel").unwrap();
    let trace = w.segment_trace(0, 3 * N);
    let full = simulate(
        &trace,
        &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
    );
    assert!(full.assert_events > 0, "excel aborts frames");
    let no_sf = simulate(
        &trace,
        &SimConfig::new(ConfigKind::ReplayOpt)
            .with_opt(replay_core::OptConfig::without("SF"))
            .without_verify(),
    );
    assert!(
        no_sf.assert_events <= full.assert_events,
        "disabling SF cannot increase aborts"
    );
}

#[test]
fn trace_files_feed_the_simulator() {
    // Save a trace to the binary format, reload it, and get identical
    // simulation results — the harness can run from trace files exactly as
    // the paper's environment ran from AMD's.
    let trace = workloads::by_name("twolf").unwrap().segment_trace(0, N);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let reloaded = read_trace(&buf[..]).unwrap();
    let a = simulate(
        &trace,
        &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
    );
    let b = simulate(
        &reloaded,
        &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.x86_retired, b.x86_retired);
    assert_eq!(a.bins, b.bins);
}

#[test]
fn assert_cycles_are_bounded() {
    // §6.1: "The number of cycles lost due to assertions accounts for less
    // than 3% of execution cycles for the average benchmark."
    let mut fracs = Vec::new();
    for w in workloads::all() {
        let trace = w.segment_trace(0, N);
        let r = simulate(
            &trace,
            &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
        );
        fracs.push(r.bins.fraction(CycleBin::Assert));
    }
    let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
    assert!(
        avg < 0.08,
        "average assert-cycle fraction {avg:.3} too high (paper: <3%)"
    );
}

#[test]
fn simulation_is_deterministic() {
    let trace = workloads::by_name("eon").unwrap().segment_trace(0, N);
    let a = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
    let b = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.bins, b.bins);
    assert_eq!(a.dyn_uops_removed, b.dyn_uops_removed);
}
