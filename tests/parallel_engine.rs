//! The parallel experiment engine must be an exact drop-in for the serial
//! drivers: same rows, bit for bit, at every worker count — and the trace
//! store must synthesize each `(workload, segment, scale)` at most once
//! per process no matter how many drivers and threads ask.

use replay_sim::experiment::{self, run_specs, SimSpec};
use replay_sim::{parallel, ConfigKind, SimConfig, TraceStore};
use replay_trace::workloads;
use std::sync::Arc;

const SCALE: usize = 2_500;

/// Figure 6 rows are bit-identical between the legacy serial path and a
/// heavily threaded run.
#[test]
fn ipc_rows_identical_serial_vs_parallel() {
    let w = workloads::by_name("bzip2").unwrap();
    let serial = experiment::ipc_row_jobs(&w, SCALE, 1);
    let par = experiment::ipc_row_jobs(&w, SCALE, 8);
    assert_eq!(serial.name, par.name);
    for (a, b) in serial.ipc.iter().zip(&par.ipc) {
        assert_eq!(a.to_bits(), b.to_bits(), "IPC bit-identical");
    }
    assert_eq!(serial.rpo_gain_pct.to_bits(), par.rpo_gain_pct.to_bits());
    assert_eq!(serial.coverage.to_bits(), par.coverage.to_bits());
    assert_eq!(
        serial.assert_cycle_frac.to_bits(),
        par.assert_cycle_frac.to_bits()
    );
}

/// `run_specs` merges segments in the same order as the serial reference
/// fold, so multi-segment workloads aggregate identically too.
#[test]
fn multi_segment_merge_is_order_stable() {
    let w = workloads::by_name("excel").unwrap();
    assert!(w.segments > 1, "needs a multi-segment workload");
    let store = TraceStore::new();
    let traces = store.traces(&w, SCALE);
    let specs: Vec<SimSpec> = [ConfigKind::Replay, ConfigKind::ReplayOpt]
        .into_iter()
        .map(|kind| SimSpec {
            name: w.name.to_string(),
            traces: traces.clone(),
            cfg: SimConfig::new(kind).without_verify(),
        })
        .collect();
    let serial = run_specs(&specs, 1);
    let par = run_specs(&specs, 6);
    let flat = w.traces_scaled(SCALE);
    for (i, kind) in [ConfigKind::Replay, ConfigKind::ReplayOpt]
        .into_iter()
        .enumerate()
    {
        let reference =
            experiment::run_workload_config(&flat, &w.name, &SimConfig::new(kind).without_verify());
        for r in [&serial[i], &par[i]] {
            assert_eq!(r.cycles, reference.cycles, "{kind}");
            assert_eq!(r.x86_retired, reference.x86_retired, "{kind}");
            assert_eq!(r.ipc().to_bits(), reference.ipc().to_bits(), "{kind}");
            assert_eq!(
                r.coverage.to_bits(),
                reference.coverage.to_bits(),
                "{kind} coverage weighted identically"
            );
            assert_eq!(r.bins.total(), reference.bins.total(), "{kind}");
        }
    }
}

/// Traces are generated at most once per `(workload, scale)` per store,
/// across drivers, configurations, and worker threads.
#[test]
fn traces_synthesized_at_most_once() {
    let store = TraceStore::new();
    let ws: Vec<_> = workloads::all().into_iter().take(4).collect();
    let expected: u64 = ws.iter().map(|w| w.segments as u64).sum();

    // Simulate two "drivers" hitting the same store from many threads:
    // each request asks for every workload's full segment set.
    let requests: Vec<usize> = (0..12).collect();
    parallel::par_map(6, &requests, |_| {
        for w in &ws {
            let traces = store.traces(w, SCALE);
            assert_eq!(traces.len(), w.segments);
        }
    });
    assert_eq!(store.generations(), expected, "first wave synthesizes all");

    parallel::par_map(6, &requests, |_| {
        for w in &ws {
            store.traces(w, SCALE);
        }
    });
    assert_eq!(
        store.generations(),
        expected,
        "second wave is all cache hits"
    );
    assert_eq!(store.cached_segments(), expected as usize);
}

/// The global store memoizes across *different* entry points: a driver
/// batch and a direct segment request share the same Arc.
#[test]
fn global_store_shares_across_entry_points() {
    let w = workloads::by_name("gzip").unwrap();
    let a = TraceStore::global().segment(&w, 0, 1_234);
    let b = TraceStore::global().traces(&w, 1_234);
    assert!(Arc::ptr_eq(&a, &b[0]), "same trace object, not a copy");
}
