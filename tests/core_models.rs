//! Dual-core-model integration tests.
//!
//! The timing model offers two execution-core models (see
//! `replay-timing`'s `ports` module): the paper's class-banked generic
//! model and the port-accurate model with named issue ports and
//! uops.info-seeded latencies. Both must honor the repository's
//! determinism contract — byte-identical `replay-report/v3` artifacts at
//! any worker count and any cache temperature — and the generic model's
//! artifact must not move when the port model exists but is not selected.
//! The latter is pinned against a committed golden report
//! (`tests/golden/report_gzip_4000.json`, store section stripped), which
//! CI also byte-compares against a fresh CLI run.

use replay_sim::experiment::{run_specs, SimSpec};
use replay_sim::report::{run_report_model, strip_store_section};
use replay_sim::{ConfigKind, CoreModel, SimConfig};
use replay_trace::workloads;
use std::sync::Arc;

const SCALE: usize = 4_000;

/// Both core models keep the report artifact byte-identical across
/// `--jobs` and across consecutive (cold, then warm) in-process runs,
/// store section aside.
#[test]
fn reports_are_byte_identical_across_jobs_and_temperature_for_both_models() {
    let trace = Arc::new(workloads::by_name("gzip").unwrap().segment_trace(0, SCALE));
    for model in [CoreModel::Generic, CoreModel::PortAccurate] {
        let (_, cold) = run_report_model(&trace, 1, false, model);
        let (_, warm) = run_report_model(&trace, 1, false, model);
        let (_, par) = run_report_model(&trace, 8, false, model);
        let cold = strip_store_section(&cold);
        assert_eq!(
            cold,
            strip_store_section(&warm),
            "cold vs warm ({})",
            model.label()
        );
        assert_eq!(
            cold,
            strip_store_section(&par),
            "1 job vs 8 jobs ({})",
            model.label()
        );
    }
}

/// The generic model's store-stripped report for gzip at scale 4 000 is
/// byte-identical to the committed golden. This is the regression guard
/// that the port model's existence (and any future change) never moves a
/// generic-model number without an explicit golden update.
#[test]
fn generic_report_matches_committed_golden() {
    let golden = include_str!("golden/report_gzip_4000.json");
    let trace = Arc::new(workloads::by_name("gzip").unwrap().segment_trace(0, SCALE));
    let (_, json) = run_report_model(&trace, 1, false, CoreModel::Generic);
    assert_eq!(
        strip_store_section(&json),
        golden,
        "generic-model report drifted from tests/golden/report_gzip_4000.json; \
         if the change is intentional, regenerate the golden \
         (see the comment at the top of that file's generator in CI)"
    );
}

/// The port-accurate model simulates every workload in the suite, in all
/// four configurations, with bit-identical results at 1 worker vs 8.
#[test]
fn port_model_runs_every_workload_deterministically() {
    let specs: Vec<SimSpec> = workloads::all()
        .iter()
        .flat_map(|w| {
            let trace = Arc::new(w.segment_trace(0, 2_000));
            ConfigKind::ALL.into_iter().map(move |kind| SimSpec {
                name: trace.name.clone(),
                traces: vec![Arc::clone(&trace)],
                cfg: SimConfig::new(kind)
                    .without_verify()
                    .with_core_model(CoreModel::PortAccurate),
            })
        })
        .collect();
    assert_eq!(specs.len(), workloads::all().len() * ConfigKind::ALL.len());
    let serial = run_specs(&specs, 1);
    let par = run_specs(&specs, 8);
    for ((spec, s), p) in specs.iter().zip(&serial).zip(&par) {
        assert_eq!(s.cycles, p.cycles, "{}: cycles differ by jobs", spec.name);
        // Counters-only rendering, as the report artifact uses: wall-clock
        // duration metrics are the one intentionally non-deterministic part
        // of a raw profile.
        assert_eq!(
            s.profile.to_json(false),
            p.profile.to_json(false),
            "{}: profile differs by jobs",
            spec.name
        );
        assert!(s.cycles > 0, "{}: simulated nothing", spec.name);
    }
}

/// Port pressure counters appear for every port with a sane shape: the
/// memory bank sees every load/store, and total issues equal the issued
/// uop traffic recorded by the pipeline.
#[test]
fn port_counters_cover_the_issue_traffic() {
    let trace = Arc::new(workloads::by_name("bzip2").unwrap().segment_trace(0, SCALE));
    let spec = SimSpec {
        name: trace.name.clone(),
        traces: vec![Arc::clone(&trace)],
        cfg: SimConfig::new(ConfigKind::ICache)
            .without_verify()
            .with_core_model(CoreModel::PortAccurate),
    };
    let r = run_specs(std::slice::from_ref(&spec), 1).remove(0);
    let issued: u64 = ["p0", "p1", "p23", "p5"]
        .iter()
        .map(|p| r.profile.counter(&format!("timing.port.{p}.issued")))
        .sum();
    assert!(issued > 0, "no port issues recorded");
    assert!(
        r.profile.counter("timing.port.p23.issued") > 0,
        "memory traffic must land on the P23 bank"
    );
    assert!(
        r.profile.counter("timing.port.p5.issued") > 0,
        "branch traffic must land on P5"
    );
}
