//! Cross-crate acceptance tests for the property-checking harness: pass
//! permutations are sound, planted faults are caught, reports are
//! job-count-invariant, and the persisted corpus replays clean — the same
//! gates CI runs via `replay check`, at integration-test scale.

use replay_check::{
    probe_fault_sensitivity, replay_dir, run_check, CheckConfig, FaultKind, PassSelection,
};
use replay_core::PassId;
use replay_sim::experiment;
use replay_trace::workloads;
use std::path::Path;

/// The mixed rotation covers the canonical pipeline, every single pass,
/// and a healthy population of random permutations/prefixes — and every
/// one of them preserves frame semantics.
#[test]
fn single_passes_and_permutations_are_sound() {
    let cfg = CheckConfig {
        cases: 240,
        seed: 42,
        jobs: 4,
        ..CheckConfig::default()
    };
    let report = run_check(&cfg);
    assert!(report.ok(), "failures: {:?}", report.failures);
    for pass in PassId::ALL {
        assert!(
            report.sequences.contains(&vec![pass]),
            "single-pass sequence [{pass}] never ran"
        );
    }
    assert!(
        report.permutations >= 50,
        "only {} non-canonical sequences exercised",
        report.permutations
    );
    assert!(report.entries_completed > 0, "no entry ever completed");
    assert!(report.uops_removed > 0, "the passes never fired");
}

/// A fixed pass sequence (here: the pipeline run backwards) is also sound
/// when requested explicitly, as `replay check --passes DCE,...` would.
#[test]
fn explicit_sequence_selection_is_sound() {
    let mut rev = PassId::ALL.to_vec();
    rev.reverse();
    let cfg = CheckConfig {
        cases: 60,
        seed: 3,
        passes: PassSelection::Sequence(rev),
        jobs: 2,
        ..CheckConfig::default()
    };
    let report = run_check(&cfg);
    assert!(report.ok(), "failures: {:?}", report.failures);
    assert_eq!(report.sequences.len(), 1);
}

/// Every planted bug species is caught by the differential oracle — the
/// mutation-testing gate on the harness itself.
#[test]
fn all_fault_kinds_are_detected() {
    let probes = probe_fault_sensitivity(0xACE, 100);
    assert_eq!(probes.len(), FaultKind::ALL.len());
    for probe in probes {
        assert!(
            probe.injected > 0,
            "{}: no injection site found",
            probe.kind.name()
        );
        assert!(
            probe.detected > 0,
            "{}: oracle caught none of {} injections",
            probe.kind.name(),
            probe.injected
        );
    }
}

/// The fuzz batch is a pure function of the master seed: a `--jobs 8` run
/// produces a bit-identical report to `--jobs 1`.
#[test]
fn check_report_is_job_count_invariant() {
    let mut cfg = CheckConfig {
        cases: 100,
        seed: 42,
        jobs: 1,
        ..CheckConfig::default()
    };
    let serial = run_check(&cfg);
    cfg.jobs = 8;
    let parallel = run_check(&cfg);
    assert_eq!(serial, parallel);
    assert!(serial.ok(), "failures: {:?}", serial.failures);
}

/// The persisted corpus under `tests/corpus/` parses and replays clean —
/// the exact replay CI performs before every fuzz batch.
#[test]
fn seeded_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    match replay_dir(&dir) {
        Ok(n) => assert!(n >= 2, "expected the seeded cases, replayed {n}"),
        Err((path, e)) => panic!("corpus case {}: {e}", path.display()),
    }
}

/// The check harness and the simulation experiment engine share the same
/// `par_map` worker pool and trace store; running both concurrently on
/// many workers perturbs neither — simulation rows stay bit-identical to
/// the serial reference and the check report stays bit-identical to its
/// own serial run (`SimResult::merge` order and trace memoization are
/// unaffected by the extra load).
#[test]
fn check_workload_coexists_with_sim_engine() {
    const SCALE: usize = 2_000;
    let w = workloads::by_name("gzip").unwrap();
    let cfg = CheckConfig {
        cases: 80,
        seed: 11,
        jobs: 1,
        ..CheckConfig::default()
    };
    let serial_row = experiment::ipc_row_jobs(&w, SCALE, 1);
    let serial_report = run_check(&cfg);

    let mut par_cfg = cfg.clone();
    par_cfg.jobs = 8;
    let handle = std::thread::spawn(move || run_check(&par_cfg));
    let par_row = experiment::ipc_row_jobs(&w, SCALE, 8);
    let par_report = handle.join().unwrap();

    assert_eq!(serial_report, par_report);
    assert_eq!(serial_row.name, par_row.name);
    for (a, b) in serial_row.ipc.iter().zip(&par_row.ipc) {
        assert_eq!(a.to_bits(), b.to_bits(), "IPC bit-identical under load");
    }
    assert_eq!(serial_row.coverage.to_bits(), par_row.coverage.to_bits());
    assert_eq!(
        serial_row.rpo_gain_pct.to_bits(),
        par_row.rpo_gain_pct.to_bits()
    );
}
