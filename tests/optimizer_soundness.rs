//! Randomized tests: the optimizer never changes a frame's architectural
//! effect, regardless of the input uop sequence, the optimization scope, or
//! which passes are enabled — the invariant the paper's state verifier
//! enforces (§5.1.3).
//!
//! Each test replays a fixed-seed random stream of frames, so every run
//! checks the same (large) sample and failures reproduce deterministically.

use replay_core::{optimize, AliasProfile, OptConfig, OptFrame};
use replay_integration::{arb_frame, seeded_machine};
use replay_rng::SmallRng;
use replay_verify::verify_differential;

fn raw(frame: &replay_frame::Frame) -> OptFrame {
    let mut f = OptFrame::from_frame(frame);
    f.compact();
    f
}

const CASES: usize = 512;

/// Full optimization preserves semantics from arbitrary entry states.
#[test]
fn full_optimization_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0x5001);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let seed = rng.random_range(0u32..1000);
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let entry = seeded_machine(seed);
        if let Err(e) = verify_differential(&raw(&frame), &opt, &entry) {
            panic!("case {case}: {e}\nframe:\n{}", raw(&frame).listing());
        }
    }
}

/// Block-scope optimization preserves semantics too.
#[test]
fn block_scope_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0x5002);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let seed = rng.random_range(0u32..1000);
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::block_scope());
        let entry = seeded_machine(seed);
        if let Err(e) = verify_differential(&raw(&frame), &opt, &entry) {
            panic!("case {case}: {e}");
        }
    }
}

/// Inter-block (trace-cache) scope preserves semantics too.
#[test]
fn inter_block_scope_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0x5003);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let seed = rng.random_range(0u32..1000);
        let (opt, _) = optimize(
            &frame,
            &AliasProfile::empty(),
            &OptConfig::inter_block_scope(),
        );
        let entry = seeded_machine(seed);
        if let Err(e) = verify_differential(&raw(&frame), &opt, &entry) {
            panic!("case {case}: {e}");
        }
    }
}

/// Every leave-one-out configuration is sound (the Figure 10 trials must
/// not trade correctness for speed).
#[test]
fn ablations_are_sound() {
    let mut rng = SmallRng::seed_from_u64(0x5004);
    const LABELS: [&str; 6] = ["ASST", "CP", "CSE", "NOP", "RA", "SF"];
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let seed = rng.random_range(0u32..100);
        let which = *rng.choose(&LABELS);
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::without(which));
        let entry = seeded_machine(seed);
        if let Err(e) = verify_differential(&raw(&frame), &opt, &entry) {
            panic!("case {case}: no-{which}: {e}");
        }
    }
}

/// The rescheduling extension (position-field reordering) preserves
/// semantics too.
#[test]
fn rescheduling_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0x5005);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let seed = rng.random_range(0u32..1000);
        let cfg = OptConfig {
            reschedule: true,
            ..OptConfig::default()
        };
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &cfg);
        let entry = seeded_machine(seed);
        if let Err(e) = verify_differential(&raw(&frame), &opt, &entry) {
            panic!("case {case}: rescheduled: {e}");
        }
    }
}

/// Optimization never grows a frame, never adds loads, and never adds
/// memory operations (§4: the optimizer is prohibited from inserting loads
/// and stores).
#[test]
fn optimization_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x5006);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let before = raw(&frame);
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        assert!(opt.uop_count() <= before.uop_count(), "case {case}");
        assert!(opt.load_count() <= before.load_count(), "case {case}");
        let stores = |f: &OptFrame| f.iter_valid().filter(|(_, u)| u.is_store()).count();
        assert_eq!(
            stores(&opt),
            stores(&before),
            "case {case}: stores are never removed or added"
        );
        assert_eq!(stats.uops_after as usize, opt.uop_count(), "case {case}");
    }
}

/// Optimization is idempotent at the frame level: the pipeline iterates
/// internally to quiescence well before its bound.
#[test]
fn internal_fixpoint_reached() {
    let mut rng = SmallRng::seed_from_u64(0x5007);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let cfg = OptConfig {
            max_iterations: 16,
            ..OptConfig::default()
        };
        let (_opt, s) = optimize(&frame, &AliasProfile::empty(), &cfg);
        assert!(
            s.iterations < 16,
            "case {case}: pipeline quiesces well before the bound"
        );
    }
}

/// Structural invariants hold after optimization and rescheduling.
#[test]
fn structure_validates() {
    let mut rng = SmallRng::seed_from_u64(0x5008);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        for cfg in [
            OptConfig::default(),
            OptConfig::block_scope(),
            OptConfig::inter_block_scope(),
            OptConfig {
                reschedule: true,
                ..OptConfig::default()
            },
        ] {
            let (opt, _) = optimize(&frame, &AliasProfile::empty(), &cfg);
            if let Err(e) = opt.validate() {
                panic!("case {case}: {e}");
            }
        }
    }
}

/// Use counts stay exact through a full optimization run (the dataflow
/// bookkeeping the hardware Dependency List maintains).
#[test]
fn use_counts_stay_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x5009);
    for case in 0..CASES {
        let frame = arb_frame(&mut rng);
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        for (i, _) in opt.iter_valid() {
            let recount = opt.value_users(i).len() as u32;
            let live_out_refs = opt
                .live_out()
                .iter()
                .filter(|(_, src)| *src == replay_core::Src::Slot(i))
                .count() as u32;
            assert_eq!(
                opt.value_uses(i),
                recount + live_out_refs,
                "case {case}: slot {i} count drift"
            );
        }
    }
}
