//! Property tests: the optimizer never changes a frame's architectural
//! effect, regardless of the input uop sequence, the optimization scope, or
//! which passes are enabled — the invariant the paper's state verifier
//! enforces (§5.1.3).

use proptest::prelude::*;
use replay_core::{optimize, AliasProfile, OptConfig, OptFrame};
use replay_integration::{arb_frame, seeded_machine};
use replay_verify::verify_differential;

fn raw(frame: &replay_frame::Frame) -> OptFrame {
    let mut f = OptFrame::from_frame(frame);
    f.compact();
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Full optimization preserves semantics from arbitrary entry states.
    #[test]
    fn full_optimization_is_sound(frame in arb_frame(), seed in 0u32..1000) {
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let entry = seeded_machine(seed);
        verify_differential(&raw(&frame), &opt, &entry)
            .map_err(|e| TestCaseError::fail(format!("{e}\nframe:\n{}", raw(&frame).listing())))?;
    }

    /// Block-scope optimization preserves semantics too.
    #[test]
    fn block_scope_is_sound(frame in arb_frame(), seed in 0u32..1000) {
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::block_scope());
        let entry = seeded_machine(seed);
        verify_differential(&raw(&frame), &opt, &entry)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Inter-block (trace-cache) scope preserves semantics too.
    #[test]
    fn inter_block_scope_is_sound(frame in arb_frame(), seed in 0u32..1000) {
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::inter_block_scope());
        let entry = seeded_machine(seed);
        verify_differential(&raw(&frame), &opt, &entry)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Every leave-one-out configuration is sound (the Figure 10 trials
    /// must not trade correctness for speed).
    #[test]
    fn ablations_are_sound(frame in arb_frame(), seed in 0u32..100,
                           which in prop::sample::select(vec!["ASST", "CP", "CSE", "NOP", "RA", "SF"])) {
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::without(which));
        let entry = seeded_machine(seed);
        verify_differential(&raw(&frame), &opt, &entry)
            .map_err(|e| TestCaseError::fail(format!("no-{which}: {e}")))?;
    }

    /// The rescheduling extension (position-field reordering) preserves
    /// semantics too.
    #[test]
    fn rescheduling_is_sound(frame in arb_frame(), seed in 0u32..1000) {
        let cfg = OptConfig { reschedule: true, ..OptConfig::default() };
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &cfg);
        let entry = seeded_machine(seed);
        verify_differential(&raw(&frame), &opt, &entry)
            .map_err(|e| TestCaseError::fail(format!("rescheduled: {e}")))?;
    }

    /// Optimization never grows a frame, never adds loads, and never adds
    /// memory operations (§4: the optimizer is prohibited from inserting
    /// loads and stores).
    #[test]
    fn optimization_is_monotone(frame in arb_frame()) {
        let before = raw(&frame);
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        prop_assert!(opt.uop_count() <= before.uop_count());
        prop_assert!(opt.load_count() <= before.load_count());
        let stores = |f: &OptFrame| f.iter_valid().filter(|(_, u)| u.is_store()).count();
        prop_assert_eq!(stores(&opt), stores(&before), "stores are never removed or added");
        prop_assert_eq!(stats.uops_after as usize, opt.uop_count());
    }

    /// Optimization is idempotent at the frame level: re-running the
    /// pipeline on an already-optimized frame's architectural effect
    /// changes nothing (the pipeline iterates internally to quiescence).
    #[test]
    fn internal_fixpoint_reached(frame in arb_frame()) {
        let cfg = OptConfig { max_iterations: 16, ..OptConfig::default() };
        let (opt1, s1) = optimize(&frame, &AliasProfile::empty(), &cfg);
        prop_assert!(s1.iterations < 16, "pipeline quiesces well before the bound");
        let _ = opt1;
    }

    /// Structural invariants hold after optimization and rescheduling.
    #[test]
    fn structure_validates(frame in arb_frame()) {
        for cfg in [
            OptConfig::default(),
            OptConfig::block_scope(),
            OptConfig::inter_block_scope(),
            OptConfig { reschedule: true, ..OptConfig::default() },
        ] {
            let (opt, _) = optimize(&frame, &AliasProfile::empty(), &cfg);
            opt.validate().map_err(TestCaseError::fail)?;
        }
    }

    /// Use counts stay exact through a full optimization run (the
    /// dataflow bookkeeping the hardware Dependency List maintains).
    #[test]
    fn use_counts_stay_consistent(frame in arb_frame()) {
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        for (i, _) in opt.iter_valid() {
            let recount = opt.value_users(i).len() as u32;
            let live_out_refs = opt
                .live_out()
                .iter()
                .filter(|(_, src)| *src == replay_core::Src::Slot(i))
                .count() as u32;
            prop_assert_eq!(
                opt.value_uses(i),
                recount + live_out_refs,
                "slot {} count drift", i
            );
        }
    }
}
