//! Integration tests for workload cloning and adversarial stress sweeps.
//!
//! The clone subsystem's contract: a fit is a pure function of
//! `(target, config)` — the synthesized trace is byte-identical across
//! worker counts and across cold/warm artifact stores — and a sweep's
//! `replay-clone/v1` JSON is byte-identical across runs and job counts.
//! Non-convergence is a typed error, never a nearest-miss workload.

use replay_clone::{fit_with_store, run_sweep, FitConfig, FitError, SweepConfig, SCHEMA};
use replay_sim::TraceStore;
use replay_store::Store;
use replay_trace::{workloads, write_trace, StatProfile};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory for a private artifact store.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "replay-it-clone-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A disk-backed trace store over `dir`. The store handle is leaked
/// because [`TraceStore::with_disk`] wants a `'static` borrow; each test
/// leaks a few hundred bytes, which the process reclaims on exit.
fn disk_trace_store(dir: &std::path::Path) -> TraceStore {
    let store: &'static Store = Box::leak(Box::new(Store::open(dir.to_path_buf()).unwrap()));
    TraceStore::with_disk(store)
}

/// The serialized bytes of the trace a fit synthesizes.
fn clone_trace_bytes(fit: &replay_clone::FitResult, store: &TraceStore, scale: usize) -> Vec<u8> {
    let trace = store.segment(&fit.workload, 0, scale);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).unwrap();
    bytes
}

/// A small sweep configuration sized for CI: three corners, three steps,
/// short traces. Collapse behavior at this scale is not meaningful (the
/// pipeline is still warming up); these tests only assert determinism.
fn mini_sweep() -> SweepConfig {
    SweepConfig {
        steps: 3,
        scale: 1_500,
        jobs: 1,
        ..SweepConfig::default()
    }
}

/// Satellite: the pinned-seed mini-sweep emits byte-identical
/// collapse-point JSON across two runs in the same process and across
/// job counts.
#[test]
fn mini_sweep_json_is_byte_identical_across_runs_and_jobs() {
    let first = run_sweep(&mini_sweep()).to_json();
    let second = run_sweep(&mini_sweep()).to_json();
    assert_eq!(
        first, second,
        "same-config sweeps must emit identical bytes"
    );

    let parallel = run_sweep(&SweepConfig {
        jobs: 4,
        ..mini_sweep()
    })
    .to_json();
    assert_eq!(
        first, parallel,
        "sweep JSON must not depend on the worker count"
    );

    assert!(
        first.contains(&format!("\"schema\": \"{SCHEMA}\"")),
        "artifact must carry the {SCHEMA} schema tag"
    );
    assert_eq!(
        first.matches("\"corner\":").count(),
        3,
        "all three corners must appear"
    );
    // steps points per corner, each with a spec digest.
    assert_eq!(first.matches("\"spec_digest\":").count(), 9);
}

/// Satellite: same target + same seed ⇒ byte-identical synthesized
/// trace, across `jobs 1` vs `jobs 8` and across cold vs warm store.
#[test]
fn cloned_trace_is_byte_identical_across_jobs_and_cold_vs_warm_store() {
    let scale = 1_500;
    let cfg = FitConfig {
        fit_scale: scale,
        jobs: 1,
        ..FitConfig::default()
    };

    // Target drawn from the suite, measured at the fit scale.
    let gzip = workloads::by_name("gzip").unwrap();
    let probe = TraceStore::new();
    let target = StatProfile::measure(&probe.segment(&gzip, 0, scale));

    // Job-count invariance, memory-only stores.
    let serial_store = TraceStore::new();
    let serial = fit_with_store(&target, &cfg, &serial_store).unwrap();
    let par_store = TraceStore::new();
    let par = fit_with_store(&target, &FitConfig { jobs: 8, ..cfg }, &par_store).unwrap();
    assert_eq!(
        serial.workload.spec_digest(),
        par.workload.spec_digest(),
        "fit must select the same workload at any job count"
    );
    let serial_bytes = clone_trace_bytes(&serial, &serial_store, scale);
    let par_bytes = clone_trace_bytes(&par, &par_store, scale);
    assert_eq!(
        serial_bytes, par_bytes,
        "synthesized trace bytes must not depend on the worker count"
    );

    // Cold vs warm: a second store over the same directory serves the
    // fit's traces from disk and must reproduce the same bytes.
    let dir = scratch("coldwarm");
    let cold_store = disk_trace_store(&dir);
    let cold = fit_with_store(&target, &cfg, &cold_store).unwrap();
    let cold_bytes = clone_trace_bytes(&cold, &cold_store, scale);

    let warm_store = disk_trace_store(&dir);
    let warm = fit_with_store(&target, &cfg, &warm_store).unwrap();
    let warm_bytes = clone_trace_bytes(&warm, &warm_store, scale);

    assert!(
        warm_store.disk_hits() > 0,
        "warm store must serve at least one trace from disk"
    );
    assert_eq!(cold.workload.spec_digest(), warm.workload.spec_digest());
    assert_eq!(
        cold_bytes, warm_bytes,
        "cold and warm fits must synthesize identical trace bytes"
    );
    assert_eq!(
        serial_bytes, cold_bytes,
        "disk-backed fit must match memory-only fit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a fit that cannot reach tolerance is a typed error carrying
/// the best distance and iteration count — never a nearest-miss workload.
#[test]
fn non_convergence_is_a_typed_error_with_diagnostics() {
    // A zero tolerance is unreachable for a target measured at a scale
    // the fitter is not allowed to use.
    let excel = workloads::by_name("excel").unwrap();
    let probe = TraceStore::new();
    let target = StatProfile::measure(&probe.segment(&excel, 0, 3_000));
    let cfg = FitConfig {
        fit_scale: 1_000,
        tolerance: 0.0,
        max_iters: 2,
        candidates_per_iter: 2,
        ..FitConfig::default()
    };
    let err = fit_with_store(&target, &cfg, &TraceStore::new()).unwrap_err();
    match err {
        FitError::NotConverged {
            best_distance,
            tolerance,
            iterations,
            evaluations,
            worst_component,
        } => {
            assert!(best_distance > 0.0);
            assert_eq!(tolerance, 0.0);
            assert_eq!(iterations, 2);
            assert!(evaluations > 0);
            assert!(!worst_component.is_empty());
        }
    }
}
