//! The hot-path execution overhaul — specialized frame plans and chunked
//! trace streaming — is a host-side optimization only. Nothing about the
//! *simulated* machine may move: every counter a report pins must be
//! bit-identical at any specialization threshold, any chunk size, any
//! worker count, and any cache temperature.

use replay_sim::experiment::{run_specs, SimSpec};
use replay_sim::report::{run_report, strip_store_section};
use replay_sim::{ConfigKind, SimConfig, SimResult, TraceStore};
use replay_trace::workloads;
use std::sync::Arc;

const SCALE: usize = 3_000;

/// Asserts the simulated (deterministic) portion of two results matches
/// bit for bit. Host-side throughput counters are deterministic too
/// (plan compilation is a pure function of the trace), so the whole
/// profile must agree — checked separately by the report tests below.
fn assert_simulated_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.x86_retired, b.x86_retired, "{what}: x86_retired");
    assert_eq!(a.assert_events, b.assert_events, "{what}: assert_events");
    assert_eq!(a.dyn_uops_total, b.dyn_uops_total, "{what}: dyn_uops_total");
    assert_eq!(
        a.dyn_uops_removed, b.dyn_uops_removed,
        "{what}: dyn_uops_removed"
    );
    assert_eq!(
        a.coverage.to_bits(),
        b.coverage.to_bits(),
        "{what}: coverage"
    );
    assert_eq!(a.ipc().to_bits(), b.ipc().to_bits(), "{what}: ipc");
}

fn rpo_result(w: &str, cfg: SimConfig, jobs: usize) -> SimResult {
    let workload = workloads::by_name(w).unwrap();
    let specs = vec![SimSpec::for_workload(&workload, SCALE, cfg)];
    run_specs(&specs, jobs).remove(0)
}

/// The operative invariant of the overhaul: specialization threshold and
/// chunk size are invisible in every simulated number, for both rePLay
/// configurations, eager and disabled alike.
#[test]
fn hotpath_settings_never_change_simulated_numbers() {
    for kind in [ConfigKind::Replay, ConfigKind::ReplayOpt] {
        for w in ["gzip", "excel"] {
            let base = rpo_result(w, SimConfig::new(kind).without_verify(), 1);
            let variants = [
                SimConfig::new(kind)
                    .without_verify()
                    .without_specialization(),
                SimConfig::new(kind).without_verify().with_spec_threshold(1),
                SimConfig::new(kind).without_verify().with_chunk_records(0),
                SimConfig::new(kind).without_verify().with_chunk_records(3),
                SimConfig::new(kind)
                    .without_verify()
                    .with_spec_threshold(1)
                    .with_chunk_records(17),
            ];
            for (i, cfg) in variants.into_iter().enumerate() {
                let r = rpo_result(w, cfg, 1);
                assert_simulated_identical(&base, &r, &format!("{w}/{kind:?} variant {i}"));
            }
        }
    }
}

/// An eagerly specialized run on many workers still matches the serial
/// interpreted baseline — the fast path composes with the worker pool.
#[test]
fn eager_specialization_is_identical_across_jobs() {
    let interp = rpo_result(
        "bzip2",
        SimConfig::new(ConfigKind::ReplayOpt)
            .without_verify()
            .without_specialization(),
        1,
    );
    let eager = rpo_result(
        "bzip2",
        SimConfig::new(ConfigKind::ReplayOpt)
            .without_verify()
            .with_spec_threshold(1),
        8,
    );
    assert_simulated_identical(&interp, &eager, "interp/1 vs eager/8");
    assert!(
        eager.profile.counter("sim.exec.specialized_hits") > 0,
        "eager run must actually take the fast path"
    );
}

/// The full replay-report/v3 artifact — which carries the hot-path
/// counters — stays byte-identical across worker counts and across
/// consecutive (cold, then warm) runs, store section aside.
#[test]
fn report_is_byte_identical_across_jobs_and_temperature() {
    let trace = Arc::new(workloads::by_name("gzip").unwrap().segment_trace(0, SCALE));
    let (_, cold) = run_report(&trace, 1, false);
    let (_, warm) = run_report(&trace, 1, false);
    let (_, par) = run_report(&trace, 4, false);
    assert!(cold.contains("\"schema\": \"replay-report/v3\""));
    assert!(
        cold.contains("sim.exec.specialized_hits"),
        "the report must carry the hot-path counters"
    );
    let cold = strip_store_section(&cold);
    assert_eq!(cold, strip_store_section(&warm), "cold vs warm");
    assert_eq!(cold, strip_store_section(&par), "1 job vs 4 jobs");
}

/// The per-pass profit attribution split: uops removed on specialized
/// fetches must be a subset of the total per-pass removal, never an
/// addition to it.
#[test]
fn specialized_attribution_is_a_subset() {
    // Shared trace, eager threshold so the fast path engages at SCALE.
    let w = workloads::by_name("bzip2").unwrap();
    let specs = vec![SimSpec {
        name: w.name.to_string(),
        traces: TraceStore::global().traces(&w, SCALE),
        cfg: SimConfig::new(ConfigKind::ReplayOpt)
            .without_verify()
            .with_spec_threshold(1),
    }];
    let r = run_specs(&specs, 1).remove(0);
    let mut spec_sum = 0u64;
    let mut total_sum = 0u64;
    for (name, metric) in r.profile.iter() {
        if let replay_obs::Metric::Counter(v) = metric {
            if name.ends_with(".dyn_removed_uops_specialized") {
                spec_sum += v;
                let total_name = name.replace("_specialized", "");
                let total = r.profile.counter(&total_name);
                assert!(*v <= total, "{name}: specialized {v} exceeds total {total}");
            } else if name.starts_with("sim.pass.") && name.ends_with(".dyn_removed_uops") {
                total_sum += v;
            }
        }
    }
    assert!(spec_sum > 0, "no specialized attribution recorded");
    assert!(spec_sum <= total_sum);
}
