//! Randomized tests for the byte-level x86 codec and the trace file format:
//! everything the encoder emits must decode back to itself, and trace files
//! must round-trip exactly. Fixed-seed random streams replace the former
//! proptest strategies.

use replay_rng::SmallRng;
use replay_trace::{read_trace, write_trace, Trace, TraceRecord};
use replay_x86::{decode, encode, AluOp, CondX86, Gpr, Inst, MemOperand, ShiftOp};

fn arb_gpr(rng: &mut SmallRng) -> Gpr {
    *rng.choose(&Gpr::ALL)
}

fn arb_index(rng: &mut SmallRng) -> Gpr {
    // ESP cannot be an index register.
    loop {
        let g = arb_gpr(rng);
        if g != Gpr::Esp {
            return g;
        }
    }
}

fn arb_mem(rng: &mut SmallRng) -> MemOperand {
    match rng.random_range(0..3u32) {
        0 => MemOperand::base_disp(arb_gpr(rng), rng.random_range(-0x8000i32..0x8000)),
        1 => MemOperand::base_index(
            arb_gpr(rng),
            arb_index(rng),
            *rng.choose(&[1u8, 2, 4, 8]),
            rng.random_range(-0x8000i32..0x8000),
        ),
        _ => MemOperand::absolute(rng.random_range(0u32..0x7fff_0000)),
    }
}

fn arb_imm(rng: &mut SmallRng) -> i32 {
    // Mix full-width and small immediates so short encodings get exercised.
    match rng.random_range(0..3u32) {
        0 => rng.random_range(i32::MIN..i32::MAX),
        1 => rng.random_range(-128i32..128),
        _ => rng.random_range(-0x8000i32..0x8000),
    }
}

fn arb_inst(rng: &mut SmallRng) -> Inst {
    let alu = *rng.choose(&AluOp::ALL);
    let cc: CondX86 = *rng.choose(&CondX86::ALL);
    match rng.random_range(0..33u32) {
        0 => Inst::MovRR {
            dst: arb_gpr(rng),
            src: arb_gpr(rng),
        },
        1 => Inst::MovRI {
            dst: arb_gpr(rng),
            imm: arb_imm(rng),
        },
        2 => Inst::MovRM {
            dst: arb_gpr(rng),
            mem: arb_mem(rng),
        },
        3 => Inst::MovMR {
            mem: arb_mem(rng),
            src: arb_gpr(rng),
        },
        4 => Inst::MovMI {
            mem: arb_mem(rng),
            imm: arb_imm(rng),
        },
        5 => Inst::Lea {
            dst: arb_gpr(rng),
            mem: arb_mem(rng),
        },
        6 => Inst::PushR { src: arb_gpr(rng) },
        7 => Inst::PushI { imm: arb_imm(rng) },
        8 => Inst::PopR { dst: arb_gpr(rng) },
        9 => Inst::AluRR {
            op: alu,
            dst: arb_gpr(rng),
            src: arb_gpr(rng),
        },
        10 => Inst::AluRI {
            op: alu,
            dst: arb_gpr(rng),
            imm: arb_imm(rng),
        },
        11 => Inst::AluRM {
            op: alu,
            dst: arb_gpr(rng),
            mem: arb_mem(rng),
        },
        12 => Inst::AluMR {
            op: alu,
            mem: arb_mem(rng),
            src: arb_gpr(rng),
        },
        13 => Inst::CmpRR {
            a: arb_gpr(rng),
            b: arb_gpr(rng),
        },
        14 => Inst::CmpRI {
            a: arb_gpr(rng),
            imm: arb_imm(rng),
        },
        15 => Inst::CmpRM {
            a: arb_gpr(rng),
            mem: arb_mem(rng),
        },
        16 => Inst::TestRR {
            a: arb_gpr(rng),
            b: arb_gpr(rng),
        },
        17 => Inst::TestRI {
            a: arb_gpr(rng),
            imm: arb_imm(rng),
        },
        18 => Inst::IncR { r: arb_gpr(rng) },
        19 => Inst::DecR { r: arb_gpr(rng) },
        20 => Inst::NegR { r: arb_gpr(rng) },
        21 => Inst::NotR { r: arb_gpr(rng) },
        22 => Inst::ShiftRI {
            op: *rng.choose(&[ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar]),
            r: arb_gpr(rng),
            imm: rng.random_range(0u8..32),
        },
        23 => Inst::ImulRR {
            dst: arb_gpr(rng),
            src: arb_gpr(rng),
        },
        24 => Inst::ImulRRI {
            dst: arb_gpr(rng),
            src: arb_gpr(rng),
            imm: arb_imm(rng),
        },
        25 => Inst::DivR { src: arb_gpr(rng) },
        26 => Inst::Cdq,
        27 => Inst::Jmp {
            target: rng.random_range(0u32..0x7fff_0000),
        },
        28 => Inst::Jcc {
            cc,
            target: rng.random_range(0u32..0x7fff_0000),
        },
        29 => Inst::JmpInd { r: arb_gpr(rng) },
        30 => Inst::Call {
            target: rng.random_range(0u32..0x7fff_0000),
        },
        31 => Inst::Ret,
        _ => *rng.choose(&[Inst::Nop, Inst::LongFlow]),
    }
}

/// encode → decode is the identity on the whole instruction space.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xc0de_0001);
    for case in 0..2048 {
        let inst = arb_inst(&mut rng);
        let addr = rng.random_range(0u32..0x7000_0000);
        let bytes = encode(&inst, addr);
        assert!(bytes.len() <= 15, "case {case}: x86 length limit");
        let (decoded, len) =
            decode(&bytes, addr).unwrap_or_else(|e| panic!("case {case}: {inst}: {e}"));
        assert_eq!(len as usize, bytes.len(), "case {case}");
        assert_eq!(decoded, inst, "case {case}");
    }
}

/// Trace files round-trip exactly.
#[test]
fn trace_file_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xc0de_0002);
    for case in 0..256 {
        let n = rng.random_range(0usize..40);
        let insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng)).collect();
        let name: String = (0..rng.random_range(0usize..=12))
            .map(|_| rng.random_range(b'a'..=b'z') as char)
            .collect();
        let records: Vec<TraceRecord> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let addr = 0x1000 + (i as u32) * 16;
                let len = encode(inst, addr).len() as u8;
                TraceRecord {
                    addr,
                    len,
                    inst: *inst,
                    next_pc: addr + len as u32,
                    reg_writes: vec![(0, i as u32)],
                    mem_reads: vec![],
                    mem_writes: vec![(addr, 7)],
                    flags_after: (i % 32) as u8,
                }
            })
            .collect();
        let t = Trace::new(name.clone(), records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&buf[..]).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(&back.name, &name, "case {case}");
        assert_eq!(back.records(), t.records(), "case {case}");
    }
}

/// The decoder never panics on arbitrary bytes — it either produces an
/// instruction or a structured error.
#[test]
fn decoder_is_total() {
    let mut rng = SmallRng::seed_from_u64(0xc0de_0003);
    for _ in 0..4096 {
        let n = rng.random_range(0usize..16);
        let bytes: Vec<u8> = (0..n).map(|_| rng.random_range(0u8..=255)).collect();
        let addr = rng.next_u32();
        let _ = decode(&bytes, addr);
    }
}

/// Whatever the decoder accepts, re-encoding reproduces the accepted
/// prefix (decode is a partial inverse of encode).
#[test]
fn decode_encode_agree() {
    let mut rng = SmallRng::seed_from_u64(0xc0de_0004);
    for case in 0..4096 {
        let n = rng.random_range(1usize..16);
        let bytes: Vec<u8> = (0..n).map(|_| rng.random_range(0u8..=255)).collect();
        let addr = rng.next_u32();
        if let Ok((inst, _len)) = decode(&bytes, addr) {
            let re = encode(&inst, addr);
            let (inst2, len2) = decode(&re, addr).expect("re-encoded form decodes");
            assert_eq!(inst2, inst, "case {case}");
            assert_eq!(len2 as usize, re.len(), "case {case}");
        }
    }
}
