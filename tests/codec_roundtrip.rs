//! Property tests for the byte-level x86 codec and the trace file format:
//! everything the encoder emits must decode back to itself, and trace files
//! must round-trip exactly.

use proptest::prelude::*;
use replay_trace::{read_trace, write_trace, Trace, TraceRecord};
use replay_x86::{decode, encode, AluOp, CondX86, Gpr, Inst, MemOperand, ShiftOp};

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    prop::sample::select(&Gpr::ALL[..])
}

fn arb_index() -> impl Strategy<Value = Gpr> {
    // ESP cannot be an index register.
    prop::sample::select(
        Gpr::ALL
            .into_iter()
            .filter(|g| *g != Gpr::Esp)
            .collect::<Vec<_>>(),
    )
}

fn arb_mem() -> impl Strategy<Value = MemOperand> {
    prop_oneof![
        (arb_gpr(), any::<i16>()).prop_map(|(b, d)| MemOperand::base_disp(b, d as i32)),
        (
            arb_gpr(),
            arb_index(),
            prop::sample::select(vec![1u8, 2, 4, 8]),
            any::<i16>()
        )
            .prop_map(|(b, i, s, d)| MemOperand::base_index(b, i, s, d as i32)),
        (0u32..0x7fff_0000).prop_map(MemOperand::absolute),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(&AluOp::ALL[..])
}

fn arb_cond() -> impl Strategy<Value = CondX86> {
    prop::sample::select(&CondX86::ALL[..])
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_gpr(), arb_gpr()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (arb_gpr(), any::<i32>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_gpr(), arb_mem()).prop_map(|(dst, mem)| Inst::MovRM { dst, mem }),
        (arb_mem(), arb_gpr()).prop_map(|(mem, src)| Inst::MovMR { mem, src }),
        (arb_mem(), any::<i32>()).prop_map(|(mem, imm)| Inst::MovMI { mem, imm }),
        (arb_gpr(), arb_mem()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
        arb_gpr().prop_map(|src| Inst::PushR { src }),
        any::<i32>().prop_map(|imm| Inst::PushI { imm }),
        arb_gpr().prop_map(|dst| Inst::PopR { dst }),
        (arb_alu(), arb_gpr(), arb_gpr()).prop_map(|(op, dst, src)| Inst::AluRR { op, dst, src }),
        (arb_alu(), arb_gpr(), any::<i32>()).prop_map(|(op, dst, imm)| Inst::AluRI {
            op,
            dst,
            imm
        }),
        (arb_alu(), arb_gpr(), arb_mem()).prop_map(|(op, dst, mem)| Inst::AluRM { op, dst, mem }),
        (arb_alu(), arb_mem(), arb_gpr()).prop_map(|(op, mem, src)| Inst::AluMR { op, mem, src }),
        (arb_gpr(), arb_gpr()).prop_map(|(a, b)| Inst::CmpRR { a, b }),
        (arb_gpr(), any::<i32>()).prop_map(|(a, imm)| Inst::CmpRI { a, imm }),
        (arb_gpr(), arb_mem()).prop_map(|(a, mem)| Inst::CmpRM { a, mem }),
        (arb_gpr(), arb_gpr()).prop_map(|(a, b)| Inst::TestRR { a, b }),
        (arb_gpr(), any::<i32>()).prop_map(|(a, imm)| Inst::TestRI { a, imm }),
        arb_gpr().prop_map(|r| Inst::IncR { r }),
        arb_gpr().prop_map(|r| Inst::DecR { r }),
        arb_gpr().prop_map(|r| Inst::NegR { r }),
        arb_gpr().prop_map(|r| Inst::NotR { r }),
        (
            prop::sample::select(vec![ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar]),
            arb_gpr(),
            0u8..32
        )
            .prop_map(|(op, r, imm)| Inst::ShiftRI { op, r, imm }),
        (arb_gpr(), arb_gpr()).prop_map(|(dst, src)| Inst::ImulRR { dst, src }),
        (arb_gpr(), arb_gpr(), any::<i32>()).prop_map(|(dst, src, imm)| Inst::ImulRRI {
            dst,
            src,
            imm
        }),
        arb_gpr().prop_map(|src| Inst::DivR { src }),
        Just(Inst::Cdq),
        (0u32..0x7fff_0000).prop_map(|target| Inst::Jmp { target }),
        (arb_cond(), 0u32..0x7fff_0000).prop_map(|(cc, target)| Inst::Jcc { cc, target }),
        arb_gpr().prop_map(|r| Inst::JmpInd { r }),
        (0u32..0x7fff_0000).prop_map(|target| Inst::Call { target }),
        Just(Inst::Ret),
        Just(Inst::Nop),
        Just(Inst::LongFlow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// encode → decode is the identity on the whole instruction space.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst(), addr in 0u32..0x7000_0000) {
        let bytes = encode(&inst, addr);
        prop_assert!(bytes.len() <= 15, "x86 length limit");
        let (decoded, len) = decode(&bytes, addr)
            .map_err(|e| TestCaseError::fail(format!("{inst}: {e}")))?;
        prop_assert_eq!(len as usize, bytes.len());
        prop_assert_eq!(decoded, inst);
    }

    /// Trace files round-trip exactly.
    #[test]
    fn trace_file_roundtrip(
        insts in prop::collection::vec(arb_inst(), 0..40),
        name in "[a-z]{0,12}",
    ) {
        let records: Vec<TraceRecord> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let addr = 0x1000 + (i as u32) * 16;
                let len = encode(inst, addr).len() as u8;
                TraceRecord {
                    addr,
                    len,
                    inst: *inst,
                    next_pc: addr + len as u32,
                    reg_writes: vec![(0, i as u32)],
                    mem_reads: vec![],
                    mem_writes: vec![(addr, 7)],
                    flags_after: (i % 32) as u8,
                }
            })
            .collect();
        let t = Trace::new(name.clone(), records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&buf[..]).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&back.name, &name);
        prop_assert_eq!(back.records(), t.records());
    }

    /// The decoder never panics on arbitrary bytes — it either produces an
    /// instruction or a structured error.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..16), addr: u32) {
        let _ = decode(&bytes, addr);
    }

    /// Whatever the decoder accepts, re-encoding reproduces the accepted
    /// prefix (decode is a partial inverse of encode).
    #[test]
    fn decode_encode_agree(bytes in prop::collection::vec(any::<u8>(), 1..16), addr: u32) {
        if let Ok((inst, len)) = decode(&bytes, addr) {
            let re = encode(&inst, addr);
            let (inst2, len2) = decode(&re, addr).expect("re-encoded form decodes");
            prop_assert_eq!(inst2, inst);
            prop_assert_eq!(len2 as usize, re.len());
            let _ = len;
        }
    }
}
