//! Allocation regression guard for the chunked streaming hot loop.
//!
//! The simulator's per-record work — chunk refill aside — must not touch
//! the heap: decode flows are cached, the flow arena recycles its
//! capacity between chunks, and the execution scratches are reused. The
//! test measures whole-`simulate` allocation counts at two trace lengths
//! and bounds the *marginal* allocations per extra record well below one;
//! a record-at-a-time allocation creeping back in would push the
//! difference above 10,000 immediately.
//!
//! This file holds exactly one test: the counting `#[global_allocator]`
//! is binary-wide, and a lone test keeps the measurement free of
//! concurrent-test noise.

use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_trace::workloads;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

#[test]
fn chunked_hot_loop_does_not_allocate_per_record() {
    let w = workloads::by_name("gzip").unwrap();
    let (small_n, big_n) = (10_000usize, 20_000usize);
    // Build both traces *before* measuring: synthesis allocates linearly
    // in the record count by design and is not under test here.
    let small = w.segment_trace(0, small_n);
    let big = w.segment_trace(0, big_n);
    let cfg = SimConfig::new(ConfigKind::ICache).without_verify();

    // Warm-up pass so one-time lazy initialization is off the books.
    let _ = simulate(&small, &cfg);

    let (small_allocs, a) = allocs_during(|| simulate(&small, &cfg));
    let (big_allocs, b) = allocs_during(|| simulate(&big, &cfg));
    assert!(b.cycles > a.cycles, "the longer trace simulates more work");

    // The marginal cost of 10,000 extra records. Fixed-size structures
    // (caches, scratches, the arena after its first fill) were already
    // paid for in `small_allocs`; what remains is per-chunk bookkeeping
    // and late-appearing decode addresses — both far below one
    // allocation per record.
    let marginal = big_allocs.saturating_sub(small_allocs);
    let extra_records = (big_n - small_n) as u64;
    assert!(
        marginal < extra_records / 10,
        "{marginal} marginal allocations across {extra_records} extra records \
         (small run: {small_allocs}, big run: {big_allocs}) — the hot loop is \
         allocating per record again"
    );
}
