//! Frame-construction and frame-execution semantics against *real* traces:
//! frames built from workload executions must replay exactly (the paper's
//! record-based verifier, §5.1.3), and their assertions must fire exactly
//! when the original execution leaves the frame's path.

use replay_core::{exec_frame, optimize, AliasProfile, FrameOutcome, OptConfig, OptFrame};
use replay_frame::{ConstructorConfig, Frame, FrameCache, FrameConstructor, RetireEvent};
use replay_sim::Injector;
use replay_trace::workloads;
use replay_verify::verify_against_records;
use std::collections::HashMap;

/// Builds all frames a workload's constructor produces over `n` records,
/// keyed by entry address (last construction wins, as in the frame cache).
fn build_frames(name: &str, n: usize) -> (replay_trace::Trace, HashMap<u32, Frame>) {
    let trace = workloads::by_name(name).unwrap().segment_trace(0, n);
    let mut injector = Injector::new();
    injector.preseed(&trace);
    let mut constructor = FrameConstructor::new(ConstructorConfig::default());
    let mut frames = HashMap::new();
    for r in trace.records() {
        let flow = injector.flow(r);
        let ev = RetireEvent {
            addr: r.addr,
            uops: &flow,
            next_pc: r.next_pc,
            fallthrough: r.fallthrough(),
        };
        if let Some(f) = constructor.retire(&ev) {
            frames.insert(f.start_addr, f);
        }
        injector.apply(r);
    }
    (trace, frames)
}

#[test]
fn optimized_frames_replay_their_records_exactly() {
    // For every dynamic instance whose path matches, the optimized frame
    // must transform register and memory state exactly as the original
    // records do.
    let (trace, frames) = build_frames("vortex", 12_000);
    let records = trace.records();
    let mut injector = Injector::new();
    injector.preseed(&trace);
    let mut verified = 0u32;
    let mut i = 0usize;
    while i < records.len() {
        injector.flow(&records[i]);
        if let Some(frame) = frames.get(&records[i].addr) {
            let n = frame.x86_count();
            let path_ok =
                (0..n).all(|j| i + j < records.len() && records[i + j].addr == frame.x86_addrs[j]);
            if path_ok {
                let (opt, _) = optimize(frame, &AliasProfile::empty(), &OptConfig::default());
                let entry = injector.golden().clone();
                let outcome = exec_frame(&opt, &mut entry.clone());
                if matches!(outcome, FrameOutcome::Completed { .. }) {
                    verify_against_records(&opt, injector.golden(), &records[i..i + n])
                        .unwrap_or_else(|e| panic!("frame at {:#x}: {e}", frame.start_addr));
                    verified += 1;
                }
            }
        }
        injector.apply(&records[i]);
        i += 1;
    }
    assert!(verified > 50, "verified {verified} dynamic frame instances");
}

#[test]
fn assertions_fire_iff_the_path_diverges() {
    // Frame execution (assert evaluation over the entry state) must agree
    // with path matching against the trace: a frame completes exactly when
    // the original execution follows its embedded path. Unsafe-store
    // conflicts are the one legitimate exception (speculation cost).
    let (trace, frames) = build_frames("parser", 12_000);
    let records = trace.records();
    let mut injector = Injector::new();
    injector.preseed(&trace);
    let mut agreements = 0u32;
    let mut checked = 0u32;
    for (i, r) in records.iter().enumerate() {
        injector.flow(r);
        if let Some(frame) = frames.get(&r.addr) {
            let mut raw = OptFrame::from_frame(frame);
            raw.compact();
            let outcome = exec_frame(&raw, &mut injector.golden().clone());
            let n = frame.x86_count();
            let path_ok =
                (0..n).all(|j| i + j < records.len() && records[i + j].addr == frame.x86_addrs[j]);
            let completed = matches!(outcome, FrameOutcome::Completed { .. });
            checked += 1;
            // End-of-trace truncation breaks path_ok without an assert.
            if i + n <= records.len() {
                assert_eq!(
                    completed, path_ok,
                    "frame {:#x} at record {i}: exec and path disagree ({outcome:?})",
                    frame.start_addr
                );
                agreements += 1;
            }
        }
        injector.apply(r);
    }
    assert!(checked > 100, "checked {checked} instances");
    assert!(agreements > 100);
}

#[test]
fn frames_respect_constructor_limits() {
    let cfg = ConstructorConfig::default();
    for name in ["crafty", "excel"] {
        let (_, frames) = build_frames(name, 10_000);
        assert!(!frames.is_empty());
        for f in frames.values() {
            assert!(f.uop_count() >= cfg.min_uops, "{name}: min size");
            assert!(f.uop_count() <= cfg.max_uops, "{name}: max size");
            assert_eq!(f.block_starts[0], 0);
            // Every expectation points at an assert uop.
            for e in &f.expectations {
                assert!(
                    f.uops[e.uop_index].op.is_assert(),
                    "{name}: expectation targets an assert"
                );
            }
        }
    }
}

#[test]
fn frame_cache_capacity_behaves_like_the_paper() {
    // Optimized frames are smaller, so the same 16K-uop cache holds more
    // of them — "fewer slots are required to contain the same number of
    // original micro-operations" (§6.1).
    let (_, frames) = build_frames("power", 12_000);
    let mut raw_cache: FrameCache<Frame> = FrameCache::new(4 * 1024);
    let mut opt_sizes = 0usize;
    let mut raw_sizes = 0usize;
    for f in frames.values() {
        let (opt, _) = optimize(f, &AliasProfile::empty(), &OptConfig::default());
        opt_sizes += opt.uop_count();
        raw_sizes += f.uop_count();
        raw_cache.insert(f.clone());
    }
    assert!(
        opt_sizes < raw_sizes,
        "optimized frames occupy fewer slots ({opt_sizes} vs {raw_sizes})"
    );
}
