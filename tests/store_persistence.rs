//! Fault-injection and warm-start integration tests for the persistent
//! artifact store.
//!
//! The store's contract: a warm run is bit-identical to a cold run, a
//! damaged artifact is never trusted (evict, warn, regenerate — never
//! panic, never silently wrong), and concurrent writers leave exactly one
//! valid artifact with no torn reads.

use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_store::Store;
use replay_trace::workloads;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory for a private store.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "replay-it-store-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The single artifact file in a store directory.
fn sole_artifact(store: &Store) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(store.root())
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one artifact: {files:?}");
    files.pop().unwrap()
}

/// Truncation at every prefix length, a bit flip in every byte, and a
/// schema-version bump each make the reader evict the artifact and let the
/// caller regenerate it. No corruption is ever served, none panics.
#[test]
fn corrupt_artifacts_are_evicted_and_regenerate() {
    let store = Store::open(scratch("faults")).unwrap();
    let payload: Vec<u8> = (0..2048u32).map(|i| (i * 7) as u8).collect();
    assert!(store.save("trace", 0xfeed, &payload));
    let path = sole_artifact(&store);
    let pristine = std::fs::read(&path).unwrap();
    let mut expected_evictions = 0;

    let mut corruptions: Vec<Vec<u8>> = Vec::new();
    // Truncations, including an empty file and a header-only file.
    for cut in [0, 1, 17, 39, 40, pristine.len() - 1] {
        corruptions.push(pristine[..cut].to_vec());
    }
    // One flipped bit, everywhere from magic to final payload byte.
    for byte in 0..pristine.len() {
        let mut forged = pristine.clone();
        forged[byte] ^= 0x10;
        corruptions.push(forged);
    }
    // A forged future schema version (header bytes 4..8).
    let mut future = pristine.clone();
    future[4] = 0xff;
    corruptions.push(future);

    for (i, corrupt) in corruptions.iter().enumerate() {
        std::fs::write(&path, corrupt).unwrap();
        assert_eq!(
            store.load("trace", 0xfeed),
            None,
            "corruption #{i} must not be served"
        );
        expected_evictions += 1;
        assert_eq!(store.corrupt_evictions(), expected_evictions);
        assert!(!path.exists(), "corruption #{i} must be evicted from disk");

        // Regeneration restores byte-identical service.
        assert!(store.save("trace", 0xfeed, &payload));
        assert_eq!(store.load("trace", 0xfeed).as_deref(), Some(&payload[..]));
    }
}

/// A payload readable under the wrong class or key is a forgery; the
/// reader must reject and evict it.
#[test]
fn class_and_key_confusion_is_rejected() {
    let store = Store::open(scratch("confusion")).unwrap();
    assert!(store.save("trace", 1, b"trace payload"));
    let path = sole_artifact(&store);
    let bytes = std::fs::read(&path).unwrap();

    // The same bytes filed under a different key: key echo mismatch.
    std::fs::remove_file(&path).unwrap();
    let forged = store.root().join("trace-0000000000000002.rpa");
    std::fs::write(&forged, &bytes).unwrap();
    assert_eq!(store.load("trace", 2), None);
    assert!(!forged.exists());

    // The same bytes filed under a different class: class digest mismatch.
    let forged = store.root().join("frames-0000000000000001.rpa");
    std::fs::write(&forged, &bytes).unwrap();
    assert_eq!(store.load("frames", 1), None);
    assert_eq!(store.corrupt_evictions(), 2);
}

/// Racing writers on one key: readers see either nothing or one writer's
/// complete payload (the checksum catches torn writes), and exactly one
/// artifact file survives with no temp-file litter.
#[test]
fn concurrent_writers_leave_one_untorn_artifact() {
    let store = Store::open(scratch("race")).unwrap();
    const WRITERS: usize = 8;
    const ROUNDS: usize = 20;
    let payloads: Vec<Vec<u8>> = (0..WRITERS)
        .map(|w| vec![w as u8; 4096 + 991 * w])
        .collect();

    std::thread::scope(|s| {
        for p in &payloads {
            s.spawn(|| {
                for _ in 0..ROUNDS {
                    assert!(store.save("frames", 77, p));
                }
            });
        }
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..4 * ROUNDS {
                    if let Some(seen) = store.load("frames", 77) {
                        assert!(
                            payloads.contains(&seen),
                            "torn read: {} bytes of {:?}...",
                            seen.len(),
                            &seen[..8.min(seen.len())]
                        );
                    }
                }
            });
        }
    });

    assert_eq!(store.corrupt_evictions(), 0, "no artifact ever looked torn");
    let survivor = sole_artifact(&store);
    assert!(
        survivor.to_string_lossy().ends_with(".rpa"),
        "no temp litter"
    );
    let last = store
        .load("frames", 77)
        .expect("artifact survives the race");
    assert!(payloads.contains(&last));
}

/// The end-to-end warm-start contract through the process-global store:
/// a warm RPO simulation is bit-identical to the cold one (including under
/// concurrent warm replays), serves from disk, and survives corruption of
/// every cached artifact by regenerating — still bit-identically.
///
/// This is the only test allowed to touch [`Store::global`]; everything it
/// checks happens sequentially inside one test body so no other test can
/// race the shared directory.
#[test]
fn warm_start_is_bit_identical_and_corruption_tolerant() {
    let dir = scratch("global");
    assert!(
        Store::configure(Some(dir.clone())),
        "global store must be configured before first use"
    );
    let store = Store::global().expect("global store enabled");

    let trace = workloads::by_name("crafty")
        .unwrap()
        .segment_trace(0, 4_000);
    let cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();

    let cold = simulate(&trace, &cfg);
    assert!(store.writes() > 0, "cold run persists its frame bundle");
    let cold_json = cold.profile.to_json(false);

    let hits_before = store.hits();
    let warm = simulate(&trace, &cfg);
    assert!(store.hits() > hits_before, "warm run reads the bundle");
    assert_eq!(cold.cycles, warm.cycles);
    assert_eq!(cold.x86_retired, warm.x86_retired);
    assert_eq!(cold.coverage.to_bits(), warm.coverage.to_bits());
    assert_eq!(cold.dyn_uops_removed, warm.dyn_uops_removed);
    assert_eq!(cold_json, warm.profile.to_json(false), "profiles identical");

    // Concurrent warm replays (the `--jobs 8` shape): all bit-identical.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8).map(|_| s.spawn(|| simulate(&trace, &cfg))).collect();
        for h in handles {
            let r = h.join().unwrap();
            assert_eq!(r.cycles, cold.cycles);
            assert_eq!(cold_json, r.profile.to_json(false));
        }
    });

    // Corrupt every artifact in the cache; the next run must regenerate
    // gracefully and still match the cold run bit for bit.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0, "cold run left artifacts to corrupt");
    let evictions_before = store.corrupt_evictions();
    let recovered = simulate(&trace, &cfg);
    assert!(
        store.corrupt_evictions() > evictions_before,
        "damaged artifacts were evicted"
    );
    assert_eq!(cold.cycles, recovered.cycles);
    assert_eq!(cold_json, recovered.profile.to_json(false));
}
