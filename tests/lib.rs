//! Shared helpers for the cross-crate integration tests.
//!
//! The randomized tests draw from [`replay_rng::SmallRng`] with fixed
//! seeds, so every run explores the same (large) sample of the input
//! space: failures are reproducible by construction, with no external
//! property-testing dependency.

use replay_frame::{Frame, FrameId};
use replay_rng::SmallRng;
use replay_uop::{ArchReg, MachineState, Opcode, Uop};

/// Registers the generators draw from (GPRs plus two temporaries).
pub const TEST_REGS: [ArchReg; 10] = [
    ArchReg::Eax,
    ArchReg::Ecx,
    ArchReg::Edx,
    ArchReg::Ebx,
    ArchReg::Esp,
    ArchReg::Ebp,
    ArchReg::Esi,
    ArchReg::Edi,
    ArchReg::Et0,
    ArchReg::Et1,
];

/// A random architectural register.
pub fn arb_reg(rng: &mut SmallRng) -> ArchReg {
    *rng.choose(&TEST_REGS)
}

/// One random straight-line, side-effect-bounded uop: ALU ops, loads, and
/// stores over small displacements of `ESP`/`ESI` (so that memory addresses
/// collide often enough to exercise the memory optimizer).
pub fn arb_uop(rng: &mut SmallRng) -> Uop {
    const ALU_OPS: [Opcode; 7] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Mul,
    ];
    const MEM_BASES: [ArchReg; 2] = [ArchReg::Esp, ArchReg::Esi];
    match rng.random_range(0..8u32) {
        // Register-register ALU.
        0 => Uop::alu(
            *rng.choose(&ALU_OPS),
            arb_reg(rng),
            arb_reg(rng),
            arb_reg(rng),
        ),
        // Register-immediate ALU.
        1 => Uop::alu_imm(
            *rng.choose(&ALU_OPS),
            arb_reg(rng),
            arb_reg(rng),
            rng.random_range(-64i32..64),
        ),
        // Moves.
        2 => Uop::mov(arb_reg(rng), arb_reg(rng)),
        3 => Uop::mov_imm(arb_reg(rng), rng.random_range(-1000i32..1000)),
        // Address arithmetic (never writes flags).
        4 => Uop::lea(
            arb_reg(rng),
            arb_reg(rng),
            None,
            1,
            rng.random_range(-32i32..32),
        ),
        // Loads and stores on a small window of stack/heap slots.
        5 => Uop::load(
            arb_reg(rng),
            *rng.choose(&MEM_BASES),
            rng.random_range(-4i32..4) * 4,
        ),
        6 => Uop::store(
            *rng.choose(&MEM_BASES),
            rng.random_range(-4i32..4) * 4,
            arb_reg(rng),
        ),
        // Compares (flag producers).
        _ => Uop::cmp_imm(arb_reg(rng), rng.random_range(-16i32..16)),
    }
}

/// A random straight-line frame of 4–40 uops.
pub fn arb_frame(rng: &mut SmallRng) -> Frame {
    let n = rng.random_range(4usize..40);
    let mut uops: Vec<Uop> = (0..n).map(|_| arb_uop(rng)).collect();
    for (i, u) in uops.iter_mut().enumerate() {
        u.x86_addr = 0x1000 + i as u32;
    }
    Frame {
        id: FrameId(0),
        start_addr: 0x1000,
        x86_addrs: (0..n as u32).map(|i| 0x1000 + i).collect(),
        block_starts: vec![0],
        expectations: vec![],
        exit_next: 0x2000,
        orig_uop_count: n,
        uops,
    }
}

/// A machine state with distinctive register values and disjoint
/// stack/heap windows.
pub fn seeded_machine(seed: u32) -> MachineState {
    let mut m = MachineState::new();
    for (i, r) in ArchReg::GPRS.iter().enumerate() {
        m.set_reg(*r, seed.wrapping_mul(31).wrapping_add(i as u32 * 0x101));
    }
    m.set_reg(ArchReg::Esp, 0x0009_0000);
    m.set_reg(ArchReg::Esi, 0x000a_0000);
    for w in -8i32..8 {
        m.store32(
            0x0009_0000u32.wrapping_add((w * 4) as u32),
            seed ^ (w as u32),
        );
        m.store32(
            0x000a_0000u32.wrapping_add((w * 4) as u32),
            seed ^ 0x5555 ^ (w as u32),
        );
    }
    m
}
