//! Shared helpers for the cross-crate integration tests.

use proptest::prelude::*;
use replay_frame::{Frame, FrameId};
use replay_uop::{ArchReg, MachineState, Opcode, Uop};

/// Registers the generators draw from (GPRs plus two temporaries).
pub const TEST_REGS: [ArchReg; 10] = [
    ArchReg::Eax,
    ArchReg::Ecx,
    ArchReg::Edx,
    ArchReg::Ebx,
    ArchReg::Esp,
    ArchReg::Ebp,
    ArchReg::Esi,
    ArchReg::Edi,
    ArchReg::Et0,
    ArchReg::Et1,
];

/// A proptest strategy for a random architectural register.
pub fn arb_reg() -> impl Strategy<Value = ArchReg> {
    prop::sample::select(&TEST_REGS[..])
}

/// A proptest strategy for one straight-line, side-effect-bounded uop:
/// ALU ops, loads, and stores over small displacements of `ESP`/`ESI` (so
/// that memory addresses collide often enough to exercise the memory
/// optimizer).
pub fn arb_uop() -> impl Strategy<Value = Uop> {
    let alu_ops = prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Mul,
    ]);
    prop_oneof![
        // Register-register ALU.
        (alu_ops.clone(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, d, a, b)| Uop::alu(op, d, a, b)),
        // Register-immediate ALU.
        (alu_ops, arb_reg(), arb_reg(), -64i32..64)
            .prop_map(|(op, d, a, imm)| Uop::alu_imm(op, d, a, imm)),
        // Moves.
        (arb_reg(), arb_reg()).prop_map(|(d, s)| Uop::mov(d, s)),
        (arb_reg(), -1000i32..1000).prop_map(|(d, imm)| Uop::mov_imm(d, imm)),
        // Address arithmetic (never writes flags).
        (arb_reg(), arb_reg(), -32i32..32).prop_map(|(d, b, disp)| Uop::lea(d, b, None, 1, disp)),
        // Loads and stores on a small window of stack/heap slots.
        (
            arb_reg(),
            prop::sample::select(vec![ArchReg::Esp, ArchReg::Esi]),
            -4i32..4
        )
            .prop_map(|(d, b, w)| Uop::load(d, b, w * 4)),
        (
            prop::sample::select(vec![ArchReg::Esp, ArchReg::Esi]),
            -4i32..4,
            arb_reg()
        )
            .prop_map(|(b, w, s)| Uop::store(b, w * 4, s)),
        // Compares (flag producers).
        (arb_reg(), -16i32..16).prop_map(|(a, imm)| Uop::cmp_imm(a, imm)),
    ]
}

/// A random straight-line frame of 4–40 uops.
pub fn arb_frame() -> impl Strategy<Value = Frame> {
    prop::collection::vec(arb_uop(), 4..40).prop_map(|mut uops| {
        for (i, u) in uops.iter_mut().enumerate() {
            u.x86_addr = 0x1000 + i as u32;
        }
        let n = uops.len();
        Frame {
            id: FrameId(0),
            start_addr: 0x1000,
            x86_addrs: (0..n as u32).map(|i| 0x1000 + i).collect(),
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x2000,
            orig_uop_count: n,
            uops,
        }
    })
}

/// A machine state with distinctive register values and disjoint
/// stack/heap windows.
pub fn seeded_machine(seed: u32) -> MachineState {
    let mut m = MachineState::new();
    for (i, r) in ArchReg::GPRS.iter().enumerate() {
        m.set_reg(*r, seed.wrapping_mul(31).wrapping_add(i as u32 * 0x101));
    }
    m.set_reg(ArchReg::Esp, 0x0009_0000);
    m.set_reg(ArchReg::Esi, 0x000a_0000);
    for w in -8i32..8 {
        m.store32(
            0x0009_0000u32.wrapping_add((w * 4) as u32),
            seed ^ (w as u32),
        );
        m.store32(
            0x000a_0000u32.wrapping_add((w * 4) as u32),
            seed ^ 0x5555 ^ (w as u32),
        );
    }
    m
}
