//! The observability layer (`replay-obs`) must not perturb the engine it
//! watches: profiles are bit-identical at every worker count, the per-pass
//! dynamic-removal attribution sums exactly to the engine's own removal
//! counter, and the JSON rendering is stable and self-consistent.

use replay_obs::{Metric, Profile, Registry};
use replay_sim::experiment::{run_specs, SimSpec};
use replay_sim::{ConfigKind, SimConfig, SimResult, TraceStore};
use replay_trace::workloads;

const SCALE: usize = 2_500;

fn profiled_results(workload: &str, jobs: usize) -> Vec<SimResult> {
    let w = workloads::by_name(workload).unwrap();
    let traces = TraceStore::global().traces(&w, SCALE);
    let specs: Vec<SimSpec> = ConfigKind::ALL
        .into_iter()
        .map(|kind| SimSpec {
            name: w.name.to_string(),
            traces: traces.clone(),
            cfg: SimConfig::new(kind).without_verify(),
        })
        .collect();
    run_specs(&specs, jobs)
}

/// The deterministic profile rendering (timings excluded) is byte-identical
/// between a serial run and a heavily threaded one — the acceptance bar for
/// `replay compare --profile --jobs N`.
#[test]
fn profiles_byte_identical_across_worker_counts() {
    let serial = profiled_results("gzip", 1);
    let par = profiled_results("gzip", 8);
    assert_eq!(serial.len(), par.len());
    for (s, p) in serial.iter().zip(&par) {
        let st = s.profile.render_table(false);
        let pt = p.profile.render_table(false);
        assert!(!st.is_empty(), "profile populated");
        assert_eq!(st, pt, "config {}", s.config);
        assert_eq!(
            s.profile.to_json(false),
            p.profile.to_json(false),
            "JSON rendering equally stable"
        );
    }
}

/// Per-pass dynamic attribution telescopes exactly: the `sim.pass.*`
/// counters sum to `sim.dyn_uops_removed`, which equals the engine's own
/// `dyn_uops_removed` field.
#[test]
fn per_pass_attribution_sums_to_total_removal() {
    for r in profiled_results("twolf", 4) {
        let total = r.profile.counter("sim.dyn_uops_removed");
        assert_eq!(total, r.dyn_uops_removed, "profile mirrors the engine");
        let by_pass: u64 = r
            .profile
            .iter()
            .filter(|(k, _)| k.starts_with("sim.pass.") && k.ends_with(".dyn_removed_uops"))
            .map(|(_, m)| match m {
                Metric::Counter(v) => *v,
                other => panic!("pass attribution must be a counter, got {other:?}"),
            })
            .sum();
        assert_eq!(
            by_pass, total,
            "config {}: attribution telescopes",
            r.config
        );
        if r.config == ConfigKind::ReplayOpt {
            assert!(total > 0, "RPO removes uops at this scale");
        }
    }
}

/// The registry merges worker shards in submission order, so a combined
/// profile is independent of the (arbitrary) order shards finish in.
#[test]
fn registry_merge_is_submission_ordered() {
    let results = profiled_results("gzip", 2);
    let forward = {
        let reg = Registry::new();
        for (i, r) in results.iter().enumerate() {
            reg.submit(i, r.profile.clone());
        }
        reg.finish()
    };
    let scrambled = {
        let reg = Registry::new();
        for (i, r) in results.iter().enumerate().rev() {
            reg.submit(i, r.profile.clone());
        }
        reg.finish()
    };
    assert_eq!(forward.to_json(false), scrambled.to_json(false));
    // The merged total equals the sum of the per-config totals.
    let sum: u64 = results
        .iter()
        .map(|r| r.profile.counter("sim.dyn_uops_total"))
        .sum();
    assert_eq!(forward.counter("sim.dyn_uops_total"), sum);
}

/// Merging `SimResult`s merges their profiles metric-wise, keeping the
/// profile consistent with the merged engine counters.
#[test]
fn result_merge_keeps_profile_consistent() {
    let w = workloads::by_name("excel").unwrap();
    assert!(w.segments > 1, "needs a multi-segment workload");
    let traces = TraceStore::global().traces(&w, SCALE);
    let specs: Vec<SimSpec> = vec![SimSpec {
        name: w.name.to_string(),
        traces,
        cfg: SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
    }];
    let r = &run_specs(&specs, 4)[0];
    assert_eq!(r.profile.counter("sim.dyn_uops_total"), r.dyn_uops_total);
    assert_eq!(
        r.profile.counter("sim.dyn_uops_removed"),
        r.dyn_uops_removed
    );
    assert_eq!(r.profile.counter("cycles.total"), r.cycles);
    assert_eq!(
        r.profile.counter("pipeline.retired_x86"),
        r.pipeline.retired_x86
    );
}

/// The deterministic renderers never leak wall-clock timings; opting in
/// exposes the duration metrics alongside the counters.
#[test]
fn timings_hidden_unless_requested() {
    let r = &profiled_results("gzip", 2)[3];
    assert_eq!(r.config, ConfigKind::ReplayOpt);
    let deterministic = r.profile.render_table(false);
    assert!(
        !deterministic.contains("time_ns"),
        "no wall time in the deterministic view"
    );
    let with_timings = r.profile.render_table(true);
    assert!(
        with_timings.contains("opt.time_ns"),
        "timings visible when requested"
    );
    assert!(!r.profile.to_json(false).contains("duration_ns"));
}

/// An empty profile renders to an empty table and a well-formed JSON shell.
#[test]
fn empty_profile_renders_cleanly() {
    let p = Profile::new();
    assert_eq!(p.render_table(false), "");
    assert_eq!(
        p.to_json(false),
        "{\"schema\":\"replay-obs/v1\",\"metrics\":{}}"
    );
}
