//! Regenerates the paper-evaluation tables pinned in `EXPERIMENTS.md`
//! — Table 3 (uop/load removal), Figure 6 (IPC by configuration), and
//! the Figures 7/8 Frame-cycle reduction headline — using only the
//! workspace crates. The criterion harnesses under `crates/bench` print
//! the same numbers but need a network fetch to build; this example is
//! what an offline re-pin uses.
//!
//! ```text
//! cargo run --release -p replay-examples --bin paper_tables [SCALE] [--core-model MODEL]
//! cargo run --release -p replay-examples --bin paper_tables models [SCALE]
//! cargo run --release -p replay-examples --bin paper_tables sweeps
//! ```
//!
//! `SCALE` defaults to 30 000 x86 instructions per segment, the scale at
//! which `EXPERIMENTS.md` is pinned. `--core-model port` reruns every
//! table on the port-accurate core model; the `models` mode prints the
//! dual-model seven-pass profit ranking pinned in EXPERIMENTS.md.

use replay_core::DatapathConfig;
use replay_sim::experiment::{
    ablation_model, cycle_breakdown_model, ipc_comparison_model, pass_profit_jobs,
    removal_averages, removal_table_model, scope_comparison_model, ABLATION_APPS, ABLATION_LABELS,
    PROFIT_PASSES,
};
use replay_sim::{parallel, simulate, ConfigKind, CoreModel, SimConfig};
use replay_timing::CycleBin;
use replay_trace::{workloads, Suite};

/// The design-choice sweep data points quoted in EXPERIMENTS.md's
/// "Design-choice sweeps" section (the full grids are in
/// `crates/bench/benches/ablation_sweeps.rs`, which needs criterion).
fn sweeps(scale: usize) {
    let n = scale.min(20_000);
    let run = |cfg: &SimConfig| {
        let t = workloads::by_name("bzip2").unwrap().segment_trace(0, n);
        simulate(&t, cfg).ipc()
    };
    println!("Design-choice sweeps, bzip2 RPO (scale {n} x86/segment)");
    print!("optimizer latency (cycles/uop 1, 10, 40):");
    for cpu in [1u64, 10, 40] {
        let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
        cfg.datapath = DatapathConfig {
            cycles_per_uop: cpu,
            ..DatapathConfig::default()
        };
        print!(" {:.2}", run(&cfg));
    }
    println!();
    print!("max frame size (32 -> 256 uops):");
    for max in [32usize, 256] {
        let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
        cfg.constructor.max_uops = max;
        print!(" {:.2}", run(&cfg));
    }
    println!();
    print!("bias threshold (2, 8, 32 outcomes):");
    for thr in [2u32, 8, 32] {
        let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
        cfg.constructor.bias_threshold = thr;
        print!(" {:.2}", run(&cfg));
    }
    println!();
}

/// The dual-model seven-pass profit ranking (EXPERIMENTS.md "Pass profit
/// by core model"): every pass's contribution in percentage points of RP
/// IPC, under the generic and the port-accurate core, side by side.
fn models(scale: usize) {
    let jobs = parallel::job_count();
    println!(
        "Pass profit by core model (scale {scale} x86/segment, {} apps)",
        ABLATION_APPS.len()
    );
    println!("{:6} {:>10} {:>10}", "pass", "generic", "port");
    let generic = pass_profit_jobs(&ABLATION_APPS, scale, jobs, CoreModel::Generic);
    let port = pass_profit_jobs(&ABLATION_APPS, scale, jobs, CoreModel::PortAccurate);
    for (g, p) in generic.iter().zip(&port) {
        assert_eq!(g.pass, p.pass);
        println!(
            "{:6} {:>+10.2} {:>+10.2}",
            g.pass, g.profit_pct, p.profit_pct
        );
    }
    for (label, rows) in [("generic", &generic), ("port", &port)] {
        let mut ranked: Vec<&str> = PROFIT_PASSES.to_vec();
        ranked.sort_by(|a, b| {
            let pct = |pass: &str| rows.iter().find(|r| r.pass == pass).unwrap().profit_pct;
            pct(b).total_cmp(&pct(a))
        });
        println!("ranking ({label}): {}", ranked.join(" > "));
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("sweeps") {
        sweeps(30_000);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("models") {
        let scale = std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(30_000);
        models(scale);
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let model = match args.iter().position(|a| a == "--core-model") {
        None => CoreModel::Generic,
        Some(i) => {
            let label = args.get(i + 1).map(String::as_str).unwrap_or("");
            CoreModel::from_label(label)
                .unwrap_or_else(|| panic!("unknown core model {label:?} (generic, port)"))
        }
    };
    let jobs = parallel::job_count();

    println!(
        "Table 3 — micro-operations and loads removed (scale {scale} x86/segment, {} core)",
        model.label()
    );
    println!("{:10} {:>7} {:>7} {:>7}", "app", "uops%", "loads%", "IPC+%");
    let rows = removal_table_model(scale, jobs, model);
    for r in &rows {
        println!(
            "{:10} {:7.1} {:7.1} {:+7.1}",
            r.name,
            r.uops_removed * 100.0,
            r.loads_removed * 100.0,
            r.ipc_increase_pct
        );
    }
    let (u, l, i) = removal_averages(&rows);
    println!(
        "{:10} {:7.1} {:7.1} {:+7.1}",
        "Average",
        u * 100.0,
        l * 100.0,
        i
    );

    println!();
    println!("Figure 6 — IPC by configuration (scale {scale} x86/segment)");
    println!(
        "{:10} {:>5} {:>5} {:>5} {:>5} {:>7} {:>6} {:>8}",
        "app", "IC", "TC", "RP", "RPO", "gain%", "cov%", "assert%"
    );
    let mut spec_cov = Vec::new();
    let mut desk_cov = Vec::new();
    let mut assert_fracs = Vec::new();
    for r in ipc_comparison_model(scale, jobs, model) {
        println!(
            "{:10} {:5.2} {:5.2} {:5.2} {:5.2} {:+7.1} {:6.1} {:8.2}",
            r.name,
            r.ipc[0],
            r.ipc[1],
            r.ipc[2],
            r.ipc[3],
            r.rpo_gain_pct,
            r.coverage * 100.0,
            r.assert_cycle_frac * 100.0
        );
        match r.suite {
            Suite::SpecInt => spec_cov.push(r.coverage),
            Suite::Desktop => desk_cov.push(r.coverage),
        }
        assert_fracs.push(r.assert_cycle_frac);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "coverage SPEC {:.0}% desktop {:.0}% | assert cycles avg {:.1}% max {:.1}%",
        avg(&spec_cov) * 100.0,
        avg(&desk_cov) * 100.0,
        avg(&assert_fracs) * 100.0,
        assert_fracs.iter().cloned().fold(0.0, f64::max) * 100.0
    );

    println!();
    println!("Figures 7/8 — Frame-cycle reduction, RP → RPO (scale {scale})");
    for (suite, label) in [(Suite::SpecInt, "SPEC"), (Suite::Desktop, "desktop")] {
        let rows = cycle_breakdown_model(suite, scale, jobs, model);
        let rp: u64 = rows.iter().map(|r| r.rp.get(CycleBin::Frame)).sum();
        let rpo: u64 = rows.iter().map(|r| r.rpo.get(CycleBin::Frame)).sum();
        println!(
            "{label:8} Frame cycles {rp} -> {rpo} ({:+.1}%)",
            (rpo as f64 / rp as f64 - 1.0) * 100.0
        );
    }

    println!();
    println!("Figure 9 — block-scope vs frame-scope optimization (scale {scale})");
    println!("{:10} {:>8} {:>8}", "app", "block%", "frame%");
    let rows = scope_comparison_model(scale, jobs, model);
    for r in &rows {
        println!("{:10} {:+8.1} {:+8.1}", r.name, r.block_pct, r.frame_pct);
    }
    println!(
        "{:10} {:+8.1} {:+8.1}",
        "Average",
        avg(&rows.iter().map(|r| r.block_pct).collect::<Vec<_>>()),
        avg(&rows.iter().map(|r| r.frame_pct).collect::<Vec<_>>())
    );

    println!();
    println!("Figure 10 — leave-one-out ablation, 0=RP 1=RPO (scale {scale})");
    print!("{:10}", "app");
    for l in ABLATION_LABELS {
        print!(" {:>8}", format!("no {l}"));
    }
    println!();
    for r in ablation_model(&ABLATION_APPS, scale, jobs, model) {
        print!("{:10}", r.name);
        for v in r.relative {
            print!(" {v:8.2}");
        }
        println!();
    }
}
