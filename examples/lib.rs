//! Shared helpers for the examples (currently none; the examples are self-contained).
