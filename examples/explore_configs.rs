//! Explore the processor configuration space on one workload: the four
//! fetch organizations (IC / TC / RP / RPO), the optimization scopes, and
//! the leave-one-out optimizer ablations — a miniature of the paper's whole
//! evaluation on a single application.
//!
//! ```sh
//! cargo run --release -p replay-examples --bin explore_configs [workload]
//! ```

use replay_core::OptConfig;
use replay_sim::experiment::ABLATION_LABELS;
use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_trace::workloads;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "excel".into());
    let workload = workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });
    let trace = workload.segment_trace(0, 30_000);
    println!(
        "workload `{name}`: {} dynamic x86 instructions\n",
        trace.len()
    );

    println!("fetch organization comparison:");
    let mut rp_ipc = 0.0;
    let mut rpo_ipc = 0.0;
    for kind in ConfigKind::ALL {
        let r = simulate(&trace, &SimConfig::new(kind).without_verify());
        println!(
            "  {:4} ipc {:5.2}  cycles {:9}  coverage {:5.1}%",
            kind.label(),
            r.ipc(),
            r.cycles,
            r.coverage * 100.0
        );
        match kind {
            ConfigKind::Replay => rp_ipc = r.ipc(),
            ConfigKind::ReplayOpt => rpo_ipc = r.ipc(),
            _ => {}
        }
    }

    println!("\noptimization scope (Figure 9):");
    let block = simulate(
        &trace,
        &SimConfig::new(ConfigKind::ReplayOpt)
            .with_opt(OptConfig::block_scope())
            .without_verify(),
    );
    println!(
        "  block-scope ipc {:5.2} ({:+.1}% over RP)",
        block.ipc(),
        (block.ipc() / rp_ipc - 1.0) * 100.0
    );
    println!(
        "  frame-scope ipc {:5.2} ({:+.1}% over RP)",
        rpo_ipc,
        (rpo_ipc / rp_ipc - 1.0) * 100.0
    );

    println!("\nleave-one-out ablation (Figure 10; 0 = RP, 1 = RPO):");
    let span = (rpo_ipc - rp_ipc).abs().max(1e-9);
    for label in ABLATION_LABELS {
        let r = simulate(
            &trace,
            &SimConfig::new(ConfigKind::ReplayOpt)
                .with_opt(OptConfig::without(label))
                .without_verify(),
        );
        let rel = (r.ipc() - rp_ipc) / span;
        let bar: String = std::iter::repeat_n('#', (rel.clamp(0.0, 1.5) * 24.0) as usize).collect();
        println!("  no {label:4} {rel:5.2} {bar}");
    }
}
