//! A hot loop, end to end through the real front end: assemble genuine x86
//! machine code, interpret it to produce a trace, and watch the frame
//! constructor unroll the loop into frames whose redundant loads the
//! optimizer removes (the paper's §3.4: "Common subexpression elimination
//! serves primarily to remove redundant loads, which often appear when
//! x86 loops are unrolled within a frame").
//!
//! ```sh
//! cargo run --release -p replay-examples --bin hotloop
//! ```

use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_trace::{Trace, TraceRecord};
use replay_x86::{AluOp, Assembler, CondX86, Gpr, Inst, Interp, MemOperand};

fn main() {
    // while (--ecx) { eax += table[0]; ebx += table[0]; store eax }
    // The two loads of table[0] are redundant; once the loop is unrolled
    // into a frame, every iteration's loads collapse onto the first.
    let table = 0x2_0000u32;
    let out = 0x3_0000u32;
    let mut asm = Assembler::new(0x40_0000);
    asm.push(Inst::MovRI {
        dst: Gpr::Ecx,
        imm: 5_000,
    });
    let top = asm.new_label();
    let done = asm.new_label();
    asm.bind(top);
    asm.push(Inst::AluRM {
        op: AluOp::Add,
        dst: Gpr::Eax,
        mem: MemOperand::absolute(table),
    });
    asm.push(Inst::AluRM {
        op: AluOp::Add,
        dst: Gpr::Ebx,
        mem: MemOperand::absolute(table),
    });
    asm.push(Inst::MovMR {
        mem: MemOperand::absolute(out),
        src: Gpr::Eax,
    });
    asm.push(Inst::DecR { r: Gpr::Ecx });
    asm.jcc(CondX86::Nz, top);
    asm.bind(done);
    asm.push(Inst::Ret);

    let mut interp = Interp::new(asm.finish());
    interp.machine.store32(table, 7);
    let steps = interp.run(30_000).expect("loop runs");
    println!(
        "interpreted {} x86 instructions ({} uops, ratio {:.2}); eax = {}",
        steps.len(),
        interp.translator().uop_count(),
        interp.translator().ratio(),
        interp.machine.reg(replay_uop::ArchReg::Eax),
    );

    let trace = Trace::new(
        "hotloop",
        steps.iter().map(TraceRecord::from_step).collect(),
    );
    let rp = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
    let rpo = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));

    println!();
    println!("frame coverage:     {:.1}%", rpo.coverage * 100.0);
    println!(
        "loads removed:      {:.1}% of {} dynamic loads",
        rpo.load_removal() * 100.0,
        rpo.dyn_loads_total
    );
    println!("uops removed:       {:.1}%", rpo.uop_removal() * 100.0);
    println!(
        "IPC:                RP {:.2} -> RPO {:.2} ({:+.1}%)",
        rp.ipc(),
        rpo.ipc(),
        (rpo.ipc() / rp.ipc() - 1.0) * 100.0
    );
    println!(
        "verifier:           {} frames checked, {} failures",
        rpo.verify.checked, rpo.verify.failed
    );
    assert_eq!(rpo.verify.failed, 0);
}
