//! Quickstart: simulate one workload on the optimizing rePLay processor.
//!
//! ```sh
//! cargo run --release -p replay-examples --bin quickstart [workload] [x86-count]
//! ```
//!
//! Generates a synthetic trace, runs it through the RP (basic rePLay) and
//! RPO (rePLay + optimizer) configurations, and prints the headline
//! numbers: IPC, uop/load removal, frame coverage, and the cycle breakdown.

use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_timing::CycleBin;
use replay_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("crafty");
    let count: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30_000);

    let Some(workload) = workloads::by_name(name) else {
        eprintln!("unknown workload {name:?}; known:");
        for w in workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    };

    println!("generating {count} dynamic x86 instructions of `{name}`...");
    let trace = workload.segment_trace(0, count);
    println!(
        "trace: {} instructions, {:.1}% branches, {:.1}% memory",
        trace.len(),
        trace.branch_fraction() * 100.0,
        trace.memory_fraction() * 100.0
    );

    let rp = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
    let rpo = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));

    println!();
    println!("                      RP (no opt)    RPO (optimized)");
    println!(
        "x86 IPC               {:11.2}    {:15.2}",
        rp.ipc(),
        rpo.ipc()
    );
    println!(
        "cycles                {:11}    {:15}",
        rp.cycles, rpo.cycles
    );
    println!(
        "frame coverage        {:10.1}%    {:14.1}%",
        rp.coverage * 100.0,
        rpo.coverage * 100.0
    );
    println!();
    println!(
        "optimizer removed {:.1}% of dynamic uops and {:.1}% of loads",
        rpo.uop_removal() * 100.0,
        rpo.load_removal() * 100.0
    );
    println!(
        "IPC increase from optimization: {:+.1}%",
        (rpo.ipc() / rp.ipc() - 1.0) * 100.0
    );
    println!(
        "frames aborted (assertions / unsafe stores): {} ({:.2}% of cycles)",
        rpo.assert_events,
        rpo.bins.fraction(CycleBin::Assert) * 100.0
    );
    println!(
        "state verifier: {} frames checked, {} failed",
        rpo.verify.checked, rpo.verify.failed
    );
    println!();
    println!("cycle breakdown (RPO):");
    for bin in CycleBin::ALL {
        println!(
            "  {:8} {:9} ({:5.1}%)",
            bin.label(),
            rpo.bins.get(bin),
            rpo.bins.fraction(bin) * 100.0
        );
    }
}
