//! The paper's Figure 2, reproduced end to end: the two basic blocks of a
//! `crafty` procedure, decoded to micro-operations, built into an atomic
//! frame, and run through the optimizer at block scope and frame scope.
//!
//! ```sh
//! cargo run --release -p replay-examples --bin optimize_function
//! ```
//!
//! Compare the printed listings with the columns of Figure 2: at frame
//! level, seven of the seventeen micro-operations disappear, including two
//! of the five loads (the store-forwarded `EBX` and `EBP` reloads).

use replay_core::{optimize, AliasProfile, OptConfig};
use replay_frame::{ControlExpectation, Frame, FrameId};
use replay_uop::{ArchReg, Cond, Opcode, Uop};

/// The unoptimized micro-operations of Figure 2, column 2 (numbered 01–17
/// in the paper).
fn figure2_frame() -> Frame {
    use ArchReg::*;
    let uops = vec![
        /* 01 */ Uop::store(Esp, -4, Ebp).at(0x10), // PUSH EBP
        /* 02 */ Uop::lea(Esp, Esp, None, 1, -4).at(0x10),
        /* 03 */ Uop::store(Esp, -4, Ebx).at(0x11), // PUSH EBX
        /* 04 */ Uop::lea(Esp, Esp, None, 1, -4).at(0x11),
        /* 05 */ Uop::load(Ecx, Esp, 0xc).at(0x12), // MOV ECX,[ESP+0CH]
        /* 06 */ Uop::load(Ebx, Esp, 0x10).at(0x16), // MOV EBX,[ESP+10H]
        /* 07 */ Uop::alu(Opcode::Xor, Eax, Eax, Eax).at(0x1a), // XOR EAX,EAX
        /* 08 */ Uop::mov(Edx, Ecx).at(0x1c), // MOV EDX,ECX
        /* 09 */ Uop::alu(Opcode::Or, Edx, Edx, Ebx).at(0x1e), // OR EDX,EBX
        /* 10 */ Uop::assert_cc(Cond::Eq).at(0x20), // JZ (biased taken)
        /* 11 */ Uop::lea(Esp, Esp, None, 1, 4).at(0x30), // POP EBX
        /* 12 */ Uop::load(Ebx, Esp, -4).at(0x30),
        /* 13 */ Uop::lea(Esp, Esp, None, 1, 4).at(0x31), // POP EBP
        /* 14 */ Uop::load(Ebp, Esp, -4).at(0x31),
        /* 15 */ Uop::load(Et2, Esp, 0).at(0x32), // RET
        /* 16 */ Uop::lea(Esp, Esp, None, 1, 4).at(0x32),
        /* 17 */ Uop::jmp_ind(Et2).at(0x32),
    ];
    Frame {
        id: FrameId(2),
        start_addr: 0x10,
        x86_addrs: vec![
            0x10, 0x11, 0x12, 0x16, 0x1a, 0x1c, 0x1e, 0x20, 0x30, 0x31, 0x32,
        ],
        block_starts: vec![0, 10],
        expectations: vec![ControlExpectation {
            x86_addr: 0x20,
            expected_next: 0x30,
            uop_index: 9,
        }],
        exit_next: 0x5000,
        orig_uop_count: uops.len(),
        uops,
    }
}

fn main() {
    let frame = figure2_frame();
    println!("== unoptimized micro-operations (Figure 2, column 2) ==");
    println!("{}", frame.listing());

    let (block, bstats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::block_scope());
    println!(
        "== intra-block optimization (column 3): {} of {} uops removed ==",
        bstats.removed_uops(),
        bstats.uops_before
    );
    println!("{}", block.listing());

    let (inter, istats) = optimize(
        &frame,
        &AliasProfile::empty(),
        &OptConfig::inter_block_scope(),
    );
    println!(
        "== inter-block optimization (column 4): {} of {} uops removed ==",
        istats.removed_uops(),
        istats.uops_before
    );
    println!("{}", inter.listing());

    let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
    println!(
        "== frame-level optimization (column 5): {} of {} uops removed, {} of {} loads ==",
        stats.removed_uops(),
        stats.uops_before,
        stats.removed_loads(),
        stats.loads_before
    );
    println!("(paper: 7 of 17 uops, 2 of 5 loads)");
    println!("{}", opt.listing());
    println!(
        "pass counts: reassociations={} store-forwards={} fusions={} dce={}",
        stats.reassociations, stats.store_forwards, stats.assert_fusions, stats.dce_removed
    );
}
