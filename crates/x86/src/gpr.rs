//! The eight x86 general-purpose registers.

use replay_uop::ArchReg;
use std::fmt;

/// An x86 general-purpose register.
///
/// Distinct from [`ArchReg`] so that the x86 instruction model can never
/// name a uop-level temporary: the type system enforces the paper's
/// observation that temporaries "are not visible to the compiler".
/// Discriminants are the IA-32 register encoding codes used in ModRM/SIB
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Gpr {
    /// `EAX` (code 0).
    Eax = 0,
    /// `ECX` (code 1).
    Ecx = 1,
    /// `EDX` (code 2).
    Edx = 2,
    /// `EBX` (code 3).
    Ebx = 3,
    /// `ESP` (code 4).
    Esp = 4,
    /// `EBP` (code 5).
    Ebp = 5,
    /// `ESI` (code 6).
    Esi = 6,
    /// `EDI` (code 7).
    Edi = 7,
}

impl Gpr {
    /// All GPRs in encoding order.
    pub const ALL: [Gpr; 8] = [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Esp,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
    ];

    /// The IA-32 register code (0–7) used in ModRM/SIB encodings.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Reconstructs a register from its encoding code.
    ///
    /// Returns `None` if `code > 7`.
    pub fn from_code(code: u8) -> Option<Gpr> {
        Self::ALL.get(code as usize).copied()
    }

    /// The corresponding architectural register at the uop level.
    #[inline]
    pub fn to_arch(self) -> ArchReg {
        // Gpr codes and ArchReg GPR indices coincide by construction.
        ArchReg::from_index(self as usize).expect("GPR codes are < NUM_ARCH_REGS")
    }

    /// Register name, e.g. `"EAX"`.
    pub fn name(self) -> &'static str {
        self.to_arch().name()
    }
}

impl From<Gpr> for ArchReg {
    fn from(g: Gpr) -> ArchReg {
        g.to_arch()
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for g in Gpr::ALL {
            assert_eq!(Gpr::from_code(g.code()), Some(g));
        }
        assert_eq!(Gpr::from_code(8), None);
    }

    #[test]
    fn arch_mapping_is_gpr() {
        for g in Gpr::ALL {
            assert!(g.to_arch().is_gpr());
            assert_eq!(g.to_arch().index(), g.code() as usize);
        }
    }

    #[test]
    fn names_match_arch() {
        assert_eq!(Gpr::Esp.name(), "ESP");
        assert_eq!(Gpr::Eax.to_string(), "EAX");
    }
}
