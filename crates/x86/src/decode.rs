//! IA-32 byte-level decoder for the instruction subset.

use crate::{AluOp, CondX86, Gpr, Inst, MemOperand, ShiftOp};
use std::fmt;

/// Errors from instruction decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of an instruction.
    Truncated,
    /// The opcode byte(s) are not part of the supported subset.
    UnknownOpcode(u8),
    /// A two-byte `0F xx` opcode outside the subset.
    UnknownOpcode0f(u8),
    /// A ModRM extension (`/n`) combination outside the subset.
    UnknownExtension {
        /// The opcode byte.
        opcode: u8,
        /// The reg-field extension.
        ext: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::UnknownOpcode0f(b) => write!(f, "unknown opcode 0f {b:#04x}"),
            DecodeError::UnknownExtension { opcode, ext } => {
                write!(f, "unknown extension {opcode:#04x} /{ext}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    code: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.code.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut bytes = [0u8; 4];
        for b in &mut bytes {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(bytes))
    }
}

/// A decoded ModRM operand: either a register or a memory operand.
enum Rm {
    Reg(Gpr),
    Mem(MemOperand),
}

/// Parses a ModRM byte (plus SIB/displacement) and returns the reg field
/// and the r/m operand.
fn modrm(r: &mut Reader<'_>) -> Result<(u8, Rm), DecodeError> {
    let byte = r.u8()?;
    let modbits = byte >> 6;
    let reg = (byte >> 3) & 7;
    let rm = byte & 7;

    if modbits == 0b11 {
        let g = Gpr::from_code(rm).expect("3-bit code");
        return Ok((reg, Rm::Reg(g)));
    }

    let (base, index) = if rm == 0b100 {
        // SIB byte.
        let sib = r.u8()?;
        let scale = 1u8 << (sib >> 6);
        let idx = (sib >> 3) & 7;
        let base_code = sib & 7;
        let index = if idx == 0b100 {
            None
        } else {
            Some((Gpr::from_code(idx).expect("3-bit code"), scale))
        };
        let base = if base_code == 0b101 && modbits == 0b00 {
            None // disp32 with no base
        } else {
            Some(Gpr::from_code(base_code).expect("3-bit code"))
        };
        (base, index)
    } else if rm == 0b101 && modbits == 0b00 {
        (None, None) // disp32 absolute
    } else {
        (Some(Gpr::from_code(rm).expect("3-bit code")), None)
    };

    let disp = match modbits {
        0b00 => {
            if base.is_none() {
                r.i32()?
            } else {
                0
            }
        }
        0b01 => r.i8()? as i32,
        _ => r.i32()?,
    };

    Ok((reg, Rm::Mem(MemOperand { base, index, disp })))
}

/// Decodes one instruction.
///
/// `code` must start at the instruction's first byte; `addr` is the
/// instruction's absolute address (used to resolve rel32 branch targets).
/// Returns the instruction and its encoded length in bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated or are not a valid
/// encoding of the supported subset.
///
/// # Example
///
/// ```
/// use replay_x86::{decode, Gpr, Inst};
/// let (inst, len) = decode(&[0x55], 0x1000)?;
/// assert_eq!(inst, Inst::PushR { src: Gpr::Ebp });
/// assert_eq!(len, 1);
/// # Ok::<(), replay_x86::DecodeError>(())
/// ```
pub fn decode(code: &[u8], addr: u32) -> Result<(Inst, u8), DecodeError> {
    let mut r = Reader { code, pos: 0 };
    let op = r.u8()?;

    let inst = match op {
        0x50..=0x57 => Inst::PushR {
            src: Gpr::from_code(op - 0x50).expect("3-bit code"),
        },
        0x58..=0x5f => Inst::PopR {
            dst: Gpr::from_code(op - 0x58).expect("3-bit code"),
        },
        0x40..=0x47 => Inst::IncR {
            r: Gpr::from_code(op - 0x40).expect("3-bit code"),
        },
        0x48..=0x4f => Inst::DecR {
            r: Gpr::from_code(op - 0x48).expect("3-bit code"),
        },
        0xb8..=0xbf => Inst::MovRI {
            dst: Gpr::from_code(op - 0xb8).expect("3-bit code"),
            imm: r.i32()?,
        },
        0x68 => Inst::PushI { imm: r.i32()? },
        0x89 => match modrm(&mut r)? {
            (reg, Rm::Reg(dst)) => Inst::MovRR {
                dst,
                src: Gpr::from_code(reg).expect("3-bit code"),
            },
            (reg, Rm::Mem(mem)) => Inst::MovMR {
                mem,
                src: Gpr::from_code(reg).expect("3-bit code"),
            },
        },
        0x8b => match modrm(&mut r)? {
            (reg, Rm::Reg(src)) => Inst::MovRR {
                dst: Gpr::from_code(reg).expect("3-bit code"),
                src,
            },
            (reg, Rm::Mem(mem)) => Inst::MovRM {
                dst: Gpr::from_code(reg).expect("3-bit code"),
                mem,
            },
        },
        0xc7 => match modrm(&mut r)? {
            (0, Rm::Mem(mem)) => Inst::MovMI { mem, imm: r.i32()? },
            (0, Rm::Reg(dst)) => Inst::MovRI { dst, imm: r.i32()? },
            (ext, _) => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
        },
        0x8d => match modrm(&mut r)? {
            (reg, Rm::Mem(mem)) => Inst::Lea {
                dst: Gpr::from_code(reg).expect("3-bit code"),
                mem,
            },
            _ => return Err(DecodeError::UnknownOpcode(op)),
        },
        // ALU op r/m32, r32 forms.
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 => {
            let alu = alu_from_mr_opcode(op).expect("listed opcodes");
            match modrm(&mut r)? {
                (reg, Rm::Reg(dst)) => Inst::AluRR {
                    op: alu,
                    dst,
                    src: Gpr::from_code(reg).expect("3-bit code"),
                },
                (reg, Rm::Mem(mem)) => Inst::AluMR {
                    op: alu,
                    mem,
                    src: Gpr::from_code(reg).expect("3-bit code"),
                },
            }
        }
        // ALU op r32, r/m32 forms.
        0x03 | 0x0b | 0x23 | 0x2b | 0x33 => {
            let alu = alu_from_mr_opcode(op - 2).expect("listed opcodes");
            match modrm(&mut r)? {
                (reg, Rm::Reg(src)) => Inst::AluRR {
                    op: alu,
                    dst: Gpr::from_code(reg).expect("3-bit code"),
                    src,
                },
                (reg, Rm::Mem(mem)) => Inst::AluRM {
                    op: alu,
                    dst: Gpr::from_code(reg).expect("3-bit code"),
                    mem,
                },
            }
        }
        0x39 => match modrm(&mut r)? {
            (reg, Rm::Reg(a)) => Inst::CmpRR {
                a,
                b: Gpr::from_code(reg).expect("3-bit code"),
            },
            _ => return Err(DecodeError::UnknownOpcode(op)),
        },
        0x3b => match modrm(&mut r)? {
            (reg, Rm::Mem(mem)) => Inst::CmpRM {
                a: Gpr::from_code(reg).expect("3-bit code"),
                mem,
            },
            (reg, Rm::Reg(b)) => Inst::CmpRR {
                a: Gpr::from_code(reg).expect("3-bit code"),
                b,
            },
        },
        0x85 => match modrm(&mut r)? {
            (reg, Rm::Reg(a)) => Inst::TestRR {
                a,
                b: Gpr::from_code(reg).expect("3-bit code"),
            },
            _ => return Err(DecodeError::UnknownOpcode(op)),
        },
        0x81 => match modrm(&mut r)? {
            (7, Rm::Reg(a)) => Inst::CmpRI { a, imm: r.i32()? },
            (ext, Rm::Reg(dst)) => match AluOp::from_ext(ext) {
                Some(alu) => Inst::AluRI {
                    op: alu,
                    dst,
                    imm: r.i32()?,
                },
                None => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
            },
            (ext, Rm::Mem(_)) => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
        },
        0xf7 => match modrm(&mut r)? {
            (0, Rm::Reg(a)) => Inst::TestRI { a, imm: r.i32()? },
            (2, Rm::Reg(reg)) => Inst::NotR { r: reg },
            (3, Rm::Reg(reg)) => Inst::NegR { r: reg },
            (6, Rm::Reg(src)) => Inst::DivR { src },
            (ext, _) => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
        },
        0xc1 => match modrm(&mut r)? {
            (ext, Rm::Reg(reg)) => match ShiftOp::from_ext(ext) {
                Some(shift) => Inst::ShiftRI {
                    op: shift,
                    r: reg,
                    imm: r.u8()?,
                },
                None => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
            },
            (ext, _) => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
        },
        0x69 => match modrm(&mut r)? {
            (reg, Rm::Reg(src)) => Inst::ImulRRI {
                dst: Gpr::from_code(reg).expect("3-bit code"),
                src,
                imm: r.i32()?,
            },
            _ => return Err(DecodeError::UnknownOpcode(op)),
        },
        0x99 => Inst::Cdq,
        0xe9 => {
            let rel = r.i32()?;
            Inst::Jmp {
                target: addr.wrapping_add(5).wrapping_add(rel as u32),
            }
        }
        0xe8 => {
            let rel = r.i32()?;
            Inst::Call {
                target: addr.wrapping_add(5).wrapping_add(rel as u32),
            }
        }
        0xff => match modrm(&mut r)? {
            (4, Rm::Reg(reg)) => Inst::JmpInd { r: reg },
            (ext, _) => return Err(DecodeError::UnknownExtension { opcode: op, ext }),
        },
        0xc3 => Inst::Ret,
        0x90 => Inst::Nop,
        0x0f => {
            let op2 = r.u8()?;
            match op2 {
                0x80..=0x8f => {
                    let cc = CondX86::from_tttn(op2 - 0x80).expect("4-bit tttn");
                    let rel = r.i32()?;
                    Inst::Jcc {
                        cc,
                        target: addr.wrapping_add(6).wrapping_add(rel as u32),
                    }
                }
                0xaf => match modrm(&mut r)? {
                    (reg, Rm::Reg(src)) => Inst::ImulRR {
                        dst: Gpr::from_code(reg).expect("3-bit code"),
                        src,
                    },
                    _ => return Err(DecodeError::UnknownOpcode0f(op2)),
                },
                0x0b => Inst::LongFlow,
                other => return Err(DecodeError::UnknownOpcode0f(other)),
            }
        }
        other => return Err(DecodeError::UnknownOpcode(other)),
    };

    Ok((inst, r.pos as u8))
}

fn alu_from_mr_opcode(op: u8) -> Option<AluOp> {
    Some(match op {
        0x01 => AluOp::Add,
        0x09 => AluOp::Or,
        0x21 => AluOp::And,
        0x29 => AluOp::Sub,
        0x31 => AluOp::Xor,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    /// Every instruction in this list must round-trip through
    /// encode → decode at several addresses.
    fn samples() -> Vec<Inst> {
        use Gpr::*;
        vec![
            Inst::MovRR { dst: Eax, src: Ebx },
            Inst::MovRI { dst: Edi, imm: -7 },
            Inst::MovRM {
                dst: Ecx,
                mem: MemOperand::base_disp(Esp, 0xc),
            },
            Inst::MovRM {
                dst: Eax,
                mem: MemOperand::base_index(Ebx, Ecx, 4, 0x10),
            },
            Inst::MovRM {
                dst: Eax,
                mem: MemOperand::absolute(0x8000),
            },
            Inst::MovMR {
                mem: MemOperand::base_disp(Ebp, -8),
                src: Esi,
            },
            Inst::MovMI {
                mem: MemOperand::base_disp(Esp, 4),
                imm: 42,
            },
            Inst::Lea {
                dst: Eax,
                mem: MemOperand::base_index(Esi, Edi, 2, -3),
            },
            Inst::PushR { src: Ebp },
            Inst::PushI { imm: 0x1234 },
            Inst::PopR { dst: Ebx },
            Inst::AluRR {
                op: AluOp::Add,
                dst: Eax,
                src: Ecx,
            },
            Inst::AluRI {
                op: AluOp::Sub,
                dst: Esp,
                imm: 0x18,
            },
            Inst::AluRM {
                op: AluOp::Xor,
                dst: Edx,
                mem: MemOperand::base_disp(Ebx, 0x20),
            },
            Inst::AluMR {
                op: AluOp::Or,
                mem: MemOperand::base_disp(Esp, 0),
                src: Eax,
            },
            Inst::CmpRR { a: Eax, b: Ebx },
            Inst::CmpRI { a: Ecx, imm: 100 },
            Inst::CmpRM {
                a: Edx,
                mem: MemOperand::base_disp(Esi, 4),
            },
            Inst::TestRR { a: Eax, b: Eax },
            Inst::TestRI { a: Ebx, imm: 1 },
            Inst::IncR { r: Esi },
            Inst::DecR { r: Ecx },
            Inst::NegR { r: Eax },
            Inst::NotR { r: Edx },
            Inst::ShiftRI {
                op: ShiftOp::Shl,
                r: Eax,
                imm: 3,
            },
            Inst::ShiftRI {
                op: ShiftOp::Sar,
                r: Edx,
                imm: 31,
            },
            Inst::ImulRR { dst: Eax, src: Ebx },
            Inst::ImulRRI {
                dst: Ecx,
                src: Edx,
                imm: 10,
            },
            Inst::DivR { src: Ebx },
            Inst::Cdq,
            Inst::Jmp { target: 0x4000 },
            Inst::Jcc {
                cc: CondX86::Nz,
                target: 0x4100,
            },
            Inst::JmpInd { r: Eax },
            Inst::Call { target: 0x5000 },
            Inst::Ret,
            Inst::Nop,
            Inst::LongFlow,
        ]
    }

    #[test]
    fn roundtrip_all_samples() {
        for inst in samples() {
            for addr in [0u32, 0x40_0000, 0xffff_fff0] {
                let bytes = encode(&inst, addr);
                let (decoded, len) = decode(&bytes, addr).unwrap_or_else(|e| panic!("{inst}: {e}"));
                assert_eq!(decoded, inst, "at addr {addr:#x}");
                assert_eq!(len as usize, bytes.len(), "{inst}");
            }
        }
    }

    #[test]
    fn truncated_reported() {
        let bytes = encode(
            &Inst::MovRI {
                dst: Gpr::Eax,
                imm: 0x12345678,
            },
            0,
        );
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut], 0).unwrap_err(),
                DecodeError::Truncated
            );
        }
    }

    #[test]
    fn unknown_opcode_reported() {
        assert_eq!(
            decode(&[0xcc], 0).unwrap_err(),
            DecodeError::UnknownOpcode(0xcc)
        );
        assert_eq!(
            decode(&[0x0f, 0xa2], 0).unwrap_err(),
            DecodeError::UnknownOpcode0f(0xa2)
        );
    }

    #[test]
    fn decode_stream() {
        // A small prologue: PUSH EBP; PUSH EBX; MOV ECX,[ESP+0xC].
        let insts = [
            Inst::PushR { src: Gpr::Ebp },
            Inst::PushR { src: Gpr::Ebx },
            Inst::MovRM {
                dst: Gpr::Ecx,
                mem: MemOperand::base_disp(Gpr::Esp, 0xc),
            },
        ];
        let mut image = Vec::new();
        let base = 0x40_0000u32;
        for i in &insts {
            let addr = base + image.len() as u32;
            image.extend(encode(i, addr));
        }
        let mut pos = 0usize;
        for want in &insts {
            let (got, len) = decode(&image[pos..], base + pos as u32).unwrap();
            assert_eq!(&got, want);
            pos += len as usize;
        }
        assert_eq!(pos, image.len());
    }
}
