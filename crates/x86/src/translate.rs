//! x86 → micro-operation translation (the Injector's decode flows).
//!
//! Each x86 instruction is decoded *independently* into one or more uops,
//! exactly as a hardware decoder would. That independence is the source of
//! the redundancy the rePLay optimizer removes: consecutive `PUSH`es each
//! carry their own stack-pointer update, `CALL`/`RET` pairs materialize and
//! reload return addresses, and two-address ALU forms force extra moves.
//!
//! The flows here average ≈1.4 uops per x86 instruction on realistic
//! instruction mixes, matching the ratio the paper reports for its own
//! translator (§5.1.1).

use crate::{Gpr, Inst, MemOperand};
use replay_uop::{ArchReg, Opcode, Uop};

/// Translates the address expression of `mem` into load-uop operand fields:
/// `(base, index, scale, disp)`.
fn mem_parts(mem: &MemOperand) -> (Option<ArchReg>, Option<ArchReg>, u8, i32) {
    let base = mem.base.map(Gpr::to_arch);
    let (index, scale) = match mem.index {
        Some((i, s)) => (Some(i.to_arch()), s),
        None => (None, 1),
    };
    (base, index, scale, mem.disp)
}

/// Builds a `Load` uop from a memory operand.
fn load_from(dst: ArchReg, mem: &MemOperand) -> Uop {
    let (base, index, scale, disp) = mem_parts(mem);
    Uop {
        dst: Some(dst),
        src_a: base,
        src_b: index,
        scale,
        imm: disp,
        ..Uop::new(Opcode::Load)
    }
}

/// Emits uops that store `data` to `mem`, materializing the address in a
/// temporary when the operand has an index register (store uops are
/// index-free by construction; see [`replay_uop::Uop`]).
fn store_to(mem: &MemOperand, data: ArchReg, out: &mut Vec<Uop>) {
    match (mem.base, mem.index) {
        (base, Some(_)) => {
            let (b, i, s, d) = mem_parts(mem);
            let base_reg = b.unwrap_or(ArchReg::Et0);
            if b.is_none() {
                out.push(Uop::mov_imm(ArchReg::Et0, 0));
            }
            out.push(Uop::lea(ArchReg::Et0, base_reg, i, s, d));
            out.push(Uop::store(ArchReg::Et0, 0, data));
            let _ = base;
        }
        (Some(base), None) => out.push(Uop::store(base.to_arch(), mem.disp, data)),
        (None, None) => out.push(Uop::store_abs(mem.disp, data)),
    }
}

/// A test-with-immediate uop (`flags = a & imm`); not covered by the
/// [`Uop`] constructors because only the translator emits it.
fn test_imm(a: ArchReg, imm: i32) -> Uop {
    Uop {
        src_a: Some(a),
        imm,
        writes_flags: true,
        ..Uop::new(Opcode::Test)
    }
}

/// Translates one x86 instruction into its micro-operation flow.
///
/// `addr` is the instruction's address and `next_addr` the address of the
/// sequentially following instruction (needed by `CALL` to materialize the
/// return address). Every returned uop is tagged with `addr`, and the final
/// uop of the flow is marked as the x86 instruction boundary.
///
/// # Example
///
/// ```
/// use replay_x86::{translate, Gpr, Inst};
/// // PUSH EBP decodes to a store and a stack-pointer update.
/// let uops = translate(&Inst::PushR { src: Gpr::Ebp }, 0x1000, 0x1001);
/// assert_eq!(uops.len(), 2);
/// assert!(uops[0].is_store());
/// assert!(uops[1].last_of_x86);
/// ```
pub fn translate(inst: &Inst, addr: u32, next_addr: u32) -> Vec<Uop> {
    let mut out = Vec::with_capacity(4);
    emit(inst, next_addr, &mut out);
    let n = out.len();
    for (i, u) in out.iter_mut().enumerate() {
        u.x86_addr = addr;
        u.last_of_x86 = i + 1 == n;
    }
    out
}

fn emit(inst: &Inst, next_addr: u32, out: &mut Vec<Uop>) {
    use ArchReg::{Eax, Edx, Esp, Et0, Et1, Et2};
    match *inst {
        Inst::MovRR { dst, src } => out.push(Uop::mov(dst.to_arch(), src.to_arch())),
        Inst::MovRI { dst, imm } => out.push(Uop::mov_imm(dst.to_arch(), imm)),
        Inst::MovRM { dst, mem } => out.push(load_from(dst.to_arch(), &mem)),
        Inst::MovMR { mem, src } => store_to(&mem, src.to_arch(), out),
        Inst::MovMI { mem, imm } => {
            out.push(Uop::mov_imm(Et1, imm));
            store_to(&mem, Et1, out);
        }
        Inst::Lea { dst, mem } => {
            let (base, index, scale, disp) = mem_parts(&mem);
            match base {
                Some(b) => out.push(Uop::lea(dst.to_arch(), b, index, scale, disp)),
                None => match index {
                    Some(i) => {
                        out.push(Uop::mov_imm(Et0, disp));
                        out.push(Uop::lea(dst.to_arch(), Et0, Some(i), scale, 0));
                    }
                    None => out.push(Uop::mov_imm(dst.to_arch(), disp)),
                },
            }
        }
        Inst::PushR { src } => {
            // Matches the paper's flow: store below ESP, then update ESP.
            out.push(Uop::store(Esp, -4, src.to_arch()));
            out.push(Uop::lea(Esp, Esp, None, 1, -4));
        }
        Inst::PushI { imm } => {
            out.push(Uop::mov_imm(Et1, imm));
            out.push(Uop::store(Esp, -4, Et1));
            out.push(Uop::lea(Esp, Esp, None, 1, -4));
        }
        Inst::PopR { dst } => {
            if dst == Gpr::Esp {
                // POP ESP: the loaded value wins; no increment survives.
                out.push(Uop::load(Et0, Esp, 0));
                out.push(Uop::mov(Esp, Et0));
            } else {
                out.push(Uop::load(dst.to_arch(), Esp, 0));
                out.push(Uop::lea(Esp, Esp, None, 1, 4));
            }
        }
        Inst::AluRR { op, dst, src } => out.push(Uop::alu(
            op.to_uop(),
            dst.to_arch(),
            dst.to_arch(),
            src.to_arch(),
        )),
        Inst::AluRI { op, dst, imm } => {
            out.push(Uop::alu_imm(op.to_uop(), dst.to_arch(), dst.to_arch(), imm))
        }
        Inst::AluRM { op, dst, mem } => {
            out.push(load_from(Et0, &mem));
            out.push(Uop::alu(op.to_uop(), dst.to_arch(), dst.to_arch(), Et0));
        }
        Inst::AluMR { op, mem, src } => {
            // Read-modify-write; the load and store share the operand's
            // address expression.
            if mem.index.is_some() {
                let (b, i, s, d) = mem_parts(&mem);
                out.push(Uop::lea(Et1, b.unwrap_or(Et1), i, s, d));
                out.push(Uop::load(Et0, Et1, 0));
                out.push(Uop::alu(op.to_uop(), Et0, Et0, src.to_arch()));
                out.push(Uop::store(Et1, 0, Et0));
            } else {
                out.push(load_from(Et0, &mem));
                out.push(Uop::alu(op.to_uop(), Et0, Et0, src.to_arch()));
                match mem.base {
                    Some(base) => out.push(Uop::store(base.to_arch(), mem.disp, Et0)),
                    None => out.push(Uop::store_abs(mem.disp, Et0)),
                }
            }
        }
        Inst::CmpRR { a, b } => out.push(Uop::cmp(a.to_arch(), b.to_arch())),
        Inst::CmpRI { a, imm } => out.push(Uop::cmp_imm(a.to_arch(), imm)),
        Inst::CmpRM { a, mem } => {
            out.push(load_from(Et0, &mem));
            out.push(Uop::cmp(a.to_arch(), Et0));
        }
        Inst::TestRR { a, b } => out.push(Uop::test(a.to_arch(), b.to_arch())),
        Inst::TestRI { a, imm } => out.push(test_imm(a.to_arch(), imm)),
        Inst::IncR { r } => out.push(Uop::alu_imm(Opcode::Add, r.to_arch(), r.to_arch(), 1)),
        Inst::DecR { r } => out.push(Uop::alu_imm(Opcode::Sub, r.to_arch(), r.to_arch(), 1)),
        Inst::NegR { r } => out.push(Uop::alu_imm(Opcode::Neg, r.to_arch(), r.to_arch(), 0)),
        Inst::NotR { r } => {
            // x86 NOT does not modify flags.
            let mut u = Uop::alu_imm(Opcode::Not, r.to_arch(), r.to_arch(), 0);
            u.writes_flags = false;
            out.push(u);
        }
        Inst::ShiftRI { op, r, imm } => out.push(Uop::alu_imm(
            op.to_uop(),
            r.to_arch(),
            r.to_arch(),
            imm as i32,
        )),
        Inst::ImulRR { dst, src } => out.push(Uop::alu(
            Opcode::Mul,
            dst.to_arch(),
            dst.to_arch(),
            src.to_arch(),
        )),
        Inst::ImulRRI { dst, src, imm } => {
            out.push(Uop::alu_imm(Opcode::Mul, dst.to_arch(), src.to_arch(), imm))
        }
        Inst::DivR { src } => {
            // Quotient -> EAX, remainder -> EDX. Divisor is copied to a
            // temporary when it is EDX (clobbered by the remainder uop).
            let divisor = if src == Gpr::Edx {
                out.push(Uop::mov(Et0, Edx));
                Et0
            } else {
                src.to_arch()
            };
            let mut rem = Uop::alu(Opcode::Rem, Edx, Eax, divisor);
            rem.writes_flags = false; // x86 DIV leaves flags undefined
            out.push(rem);
            let mut div = Uop::alu(Opcode::Div, Eax, Eax, divisor);
            div.writes_flags = false;
            out.push(div);
        }
        Inst::Cdq => {
            let mut u = Uop::alu_imm(Opcode::Sar, Edx, Eax, 31);
            u.writes_flags = false; // CDQ does not modify flags
            out.push(u);
        }
        Inst::Jmp { target } => out.push(Uop::jmp(target)),
        Inst::Jcc { cc, target } => out.push(Uop::br(cc.to_cond(), target)),
        Inst::JmpInd { r } => out.push(Uop::jmp_ind(r.to_arch())),
        Inst::Call { target } => {
            out.push(Uop::mov_imm(Et1, next_addr as i32));
            out.push(Uop::store(Esp, -4, Et1));
            out.push(Uop::lea(Esp, Esp, None, 1, -4));
            out.push(Uop::jmp(target));
        }
        Inst::Ret => {
            // Matches the paper's flow 15-17: load return target, bump ESP,
            // indirect jump.
            out.push(Uop::load(Et2, Esp, 0));
            out.push(Uop::lea(Esp, Esp, None, 1, 4));
            out.push(Uop::jmp_ind(Et2));
        }
        Inst::Nop => out.push(Uop::nop()),
        Inst::LongFlow => out.push(Uop::fence()),
    }
}

/// A translator with running statistics, used by the Micro-Op Injector to
/// report the uop-to-x86 expansion ratio.
#[derive(Debug, Clone, Default)]
pub struct Translator {
    x86_count: u64,
    uop_count: u64,
}

impl Translator {
    /// Creates a translator with zeroed statistics.
    pub fn new() -> Translator {
        Translator::default()
    }

    /// Translates one instruction, accumulating statistics.
    pub fn translate(&mut self, inst: &Inst, addr: u32, next_addr: u32) -> Vec<Uop> {
        let uops = translate(inst, addr, next_addr);
        self.x86_count += 1;
        self.uop_count += uops.len() as u64;
        uops
    }

    /// Number of x86 instructions translated so far.
    pub fn x86_count(&self) -> u64 {
        self.x86_count
    }

    /// Number of uops emitted so far.
    pub fn uop_count(&self) -> u64 {
        self.uop_count
    }

    /// The running uop-to-x86 expansion ratio (≈1.4 on realistic mixes).
    pub fn ratio(&self) -> f64 {
        if self.x86_count == 0 {
            0.0
        } else {
            self.uop_count as f64 / self.x86_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_uop::{Cond, MachineState};

    #[test]
    fn push_flow_matches_paper() {
        // PUSH EBP => [ESP-4] <- EBP ; ESP <- ESP - 4 (flows 01-02).
        let uops = translate(&Inst::PushR { src: Gpr::Ebp }, 0, 1);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].to_string(), "[ESP - 04H] <- EBP");
        assert!(!uops[1].writes_flags, "PUSH must not write flags");
        assert!(uops[1].last_of_x86 && !uops[0].last_of_x86);
    }

    #[test]
    fn ret_flow_matches_paper() {
        // RET => ET2 <- [ESP] ; ESP <- ESP + 4 ; jump (ET2) (flows 15-17).
        let uops = translate(&Inst::Ret, 0, 1);
        assert_eq!(uops.len(), 3);
        assert!(uops[0].is_load());
        assert_eq!(uops[2].to_string(), "jump (ET2)");
    }

    #[test]
    fn call_materializes_return_address() {
        let uops = translate(&Inst::Call { target: 0x5000 }, 0x1000, 0x1005);
        assert_eq!(uops.len(), 4);
        assert_eq!(uops[0].op, Opcode::MovImm);
        assert_eq!(uops[0].imm, 0x1005);
        assert_eq!(uops[3].op, Opcode::Jmp);
        assert_eq!(uops[3].target, 0x5000);
    }

    #[test]
    fn single_uop_flows() {
        for (inst, opcode) in [
            (
                Inst::MovRR {
                    dst: Gpr::Eax,
                    src: Gpr::Ebx,
                },
                Opcode::Mov,
            ),
            (
                Inst::AluRR {
                    op: crate::AluOp::Or,
                    dst: Gpr::Edx,
                    src: Gpr::Ebx,
                },
                Opcode::Or,
            ),
            (
                Inst::CmpRI {
                    a: Gpr::Eax,
                    imm: 0,
                },
                Opcode::Cmp,
            ),
            (Inst::Nop, Opcode::Nop),
        ] {
            let uops = translate(&inst, 0, 1);
            assert_eq!(uops.len(), 1, "{inst}");
            assert_eq!(uops[0].op, opcode, "{inst}");
        }
    }

    #[test]
    fn jcc_maps_condition() {
        let uops = translate(
            &Inst::Jcc {
                cc: crate::CondX86::Z,
                target: 0x15,
            },
            0,
            6,
        );
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].cc, Some(Cond::Eq));
        assert_eq!(uops[0].target, 0x15);
    }

    #[test]
    fn rmw_flow_reads_modifies_writes() {
        let mem = MemOperand::base_disp(Gpr::Ebx, 8);
        let uops = translate(
            &Inst::AluMR {
                op: crate::AluOp::Add,
                mem,
                src: Gpr::Ecx,
            },
            0,
            1,
        );
        assert_eq!(uops.len(), 3);
        assert!(uops[0].is_load());
        assert!(uops[2].is_store());

        // Functional check: [EBX+8] += ECX.
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Ebx, 0x100);
        m.set_reg(ArchReg::Ecx, 5);
        m.store32(0x108, 37);
        for u in &uops {
            m.exec(u).unwrap();
        }
        assert_eq!(m.load32(0x108), 42);
    }

    #[test]
    fn div_produces_quotient_and_remainder() {
        let uops = translate(&Inst::DivR { src: Gpr::Ebx }, 0, 1);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 43);
        m.set_reg(ArchReg::Ebx, 5);
        for u in &uops {
            m.exec(u).unwrap();
        }
        assert_eq!(m.reg(ArchReg::Eax), 8);
        assert_eq!(m.reg(ArchReg::Edx), 3);
    }

    #[test]
    fn div_by_edx_uses_temporary() {
        let uops = translate(&Inst::DivR { src: Gpr::Edx }, 0, 1);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 20);
        m.set_reg(ArchReg::Edx, 6);
        for u in &uops {
            m.exec(u).unwrap();
        }
        assert_eq!(m.reg(ArchReg::Eax), 3);
        assert_eq!(m.reg(ArchReg::Edx), 2);
    }

    #[test]
    fn pop_esp_special_case() {
        let uops = translate(&Inst::PopR { dst: Gpr::Esp }, 0, 1);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x1000);
        m.store32(0x1000, 0x2000);
        for u in &uops {
            m.exec(u).unwrap();
        }
        assert_eq!(m.reg(ArchReg::Esp), 0x2000);
    }

    #[test]
    fn indexed_store_uses_lea() {
        let mem = MemOperand::base_index(Gpr::Ebx, Gpr::Ecx, 4, 0);
        let uops = translate(&Inst::MovMR { mem, src: Gpr::Eax }, 0, 1);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].op, Opcode::Lea);
        assert!(uops[1].is_store());
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Ebx, 0x400);
        m.set_reg(ArchReg::Ecx, 2);
        m.set_reg(ArchReg::Eax, 77);
        for u in &uops {
            m.exec(u).unwrap();
        }
        assert_eq!(m.load32(0x408), 77);
    }

    #[test]
    fn translator_ratio() {
        let mut t = Translator::new();
        t.translate(&Inst::PushR { src: Gpr::Ebp }, 0, 1); // 2 uops
        t.translate(
            &Inst::MovRR {
                dst: Gpr::Eax,
                src: Gpr::Ebx,
            },
            1,
            3,
        ); // 1 uop
        assert_eq!(t.x86_count(), 2);
        assert_eq!(t.uop_count(), 3);
        assert!((t.ratio() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn flags_preserved_by_moves_and_lea() {
        for inst in [
            Inst::MovRR {
                dst: Gpr::Eax,
                src: Gpr::Ebx,
            },
            Inst::MovRI {
                dst: Gpr::Eax,
                imm: 1,
            },
            Inst::Lea {
                dst: Gpr::Eax,
                mem: MemOperand::base_disp(Gpr::Ebx, 4),
            },
            Inst::PushR { src: Gpr::Eax },
            Inst::PopR { dst: Gpr::Ebx },
            Inst::NotR { r: Gpr::Eax },
            Inst::Cdq,
        ] {
            for u in translate(&inst, 0, 9) {
                assert!(!u.writes_flags, "{inst} wrote flags via {u}");
            }
        }
    }
}
