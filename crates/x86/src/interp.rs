//! Functional x86 interpreter.
//!
//! The interpreter executes a [`Program`] by decoding each instruction,
//! translating it to uops, and running the uops on a [`MachineState`]. Every
//! step yields a [`StepRecord`] carrying the instruction, its uops, and all
//! observed effects (register writes, memory transactions, branch outcome) —
//! the same per-instruction content the paper describes for its
//! hardware-generated trace records (§5.1.1).

use crate::{DecodeError, Inst, Program, Translator};
use replay_uop::{ControlEffect, ExecError, Flags, MachineState, Uop, UopEffect};
use std::collections::HashMap;

/// Address that terminates interpretation: the harness seeds the initial
/// stack with this return address, so the program's final `RET` lands here.
pub const HALT_ADDR: u32 = 0xdead_0000;

/// A uop together with the effects of its execution.
#[derive(Debug, Clone)]
pub struct UopExec {
    /// The executed micro-operation.
    pub uop: Uop,
    /// Its observed effects.
    pub effect: UopEffect,
}

/// The record of one executed x86 instruction.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Instruction address.
    pub addr: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: u8,
    /// Address of the next instruction actually executed.
    pub next_pc: u32,
    /// The executed uop flow with per-uop effects.
    pub uops: Vec<UopExec>,
    /// The architectural flags after the instruction.
    pub flags_after: Flags,
}

impl StepRecord {
    /// For conditional branches: whether the branch was taken.
    /// `None` for non-branch instructions.
    pub fn taken(&self) -> Option<bool> {
        match self.inst {
            Inst::Jcc { target, .. } => Some(self.next_pc == target),
            _ => None,
        }
    }

    /// The fall-through address (`addr + len`).
    pub fn fallthrough(&self) -> u32 {
        self.addr + self.len as u32
    }
}

/// Errors from interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Instruction decoding failed at an address.
    Decode {
        /// Faulting address.
        addr: u32,
        /// Underlying decoder error.
        err: DecodeError,
    },
    /// Uop execution failed at an address.
    Exec {
        /// Faulting instruction address.
        addr: u32,
        /// Underlying execution error.
        err: ExecError,
    },
    /// Control left the program image (and is not [`HALT_ADDR`]).
    OutOfProgram {
        /// The out-of-image program counter.
        pc: u32,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Decode { addr, err } => write!(f, "decode error at {addr:#x}: {err}"),
            InterpError::Exec { addr, err } => write!(f, "execution error at {addr:#x}: {err}"),
            InterpError::OutOfProgram { pc } => write!(f, "control left program at {pc:#x}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A functional interpreter over a program image.
///
/// # Example
///
/// ```
/// use replay_x86::{Assembler, Gpr, Inst, Interp};
/// use replay_uop::ArchReg;
///
/// let mut asm = Assembler::new(0x1000);
/// asm.push(Inst::MovRI { dst: Gpr::Eax, imm: 40 });
/// asm.push(Inst::AluRI { op: replay_x86::AluOp::Add, dst: Gpr::Eax, imm: 2 });
/// asm.push(Inst::Ret);
/// let mut interp = Interp::new(asm.finish());
/// let records = interp.run(100).expect("program runs");
/// assert_eq!(records.len(), 3);
/// assert_eq!(interp.machine.reg(ArchReg::Eax), 42);
/// ```
#[derive(Debug)]
pub struct Interp {
    /// The architectural machine state (registers, flags, memory).
    pub machine: MachineState,
    /// The current program counter.
    pub pc: u32,
    program: Program,
    decode_cache: HashMap<u32, (Inst, u8)>,
    translator: Translator,
}

impl Interp {
    /// Creates an interpreter at the program's entry point with a stack
    /// seeded so that the outermost `RET` halts: `ESP` points at a word
    /// containing [`HALT_ADDR`].
    pub fn new(program: Program) -> Interp {
        let mut machine = MachineState::new();
        let stack_top = 0x00f0_0000;
        machine.set_reg(replay_uop::ArchReg::Esp, stack_top);
        machine.store32(stack_top, HALT_ADDR);
        let pc = program.entry;
        Interp {
            machine,
            pc,
            program,
            decode_cache: HashMap::new(),
            translator: Translator::new(),
        }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The translator statistics accumulated so far.
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// True once control has reached [`HALT_ADDR`].
    pub fn halted(&self) -> bool {
        self.pc == HALT_ADDR
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Fails on decode errors, execution faults, or control leaving the
    /// program image.
    pub fn step(&mut self) -> Result<StepRecord, InterpError> {
        let addr = self.pc;
        if !self.program.contains(addr) {
            return Err(InterpError::OutOfProgram { pc: addr });
        }
        let (inst, len) = match self.decode_cache.get(&addr) {
            Some(&hit) => hit,
            None => {
                let decoded = self
                    .program
                    .decode_at(addr)
                    .map_err(|err| InterpError::Decode { addr, err })?;
                self.decode_cache.insert(addr, decoded);
                decoded
            }
        };
        let fallthrough = addr + len as u32;
        let uops = self.translator.translate(&inst, addr, fallthrough);

        let mut next_pc = fallthrough;
        let mut execs = Vec::with_capacity(uops.len());
        for uop in uops {
            let effect = self
                .machine
                .exec(&uop)
                .map_err(|err| InterpError::Exec { addr, err })?;
            match effect.control {
                ControlEffect::Taken(t) | ControlEffect::IndirectTo(t) => next_pc = t,
                ControlEffect::Next | ControlEffect::NotTaken => {}
                ControlEffect::AssertFired => {
                    unreachable!("translated x86 code contains no assertions")
                }
            }
            execs.push(UopExec { uop, effect });
        }

        self.pc = next_pc;
        Ok(StepRecord {
            addr,
            inst,
            len,
            next_pc,
            uops: execs,
            flags_after: self.machine.flags(),
        })
    }

    /// Runs until the program halts (outermost `RET`) or `max_steps`
    /// instructions have executed, collecting all step records.
    ///
    /// # Errors
    ///
    /// Propagates the first [`InterpError`].
    pub fn run(&mut self, max_steps: usize) -> Result<Vec<StepRecord>, InterpError> {
        let mut records = Vec::new();
        while !self.halted() && records.len() < max_steps {
            records.push(self.step()?);
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Assembler, CondX86, Gpr, MemOperand};
    use replay_uop::ArchReg;

    fn countdown_program() -> Program {
        // ECX = 5; loop { ECX-- } until zero; RET.
        let mut asm = Assembler::new(0x1000);
        let top = asm.new_label();
        asm.push(Inst::MovRI {
            dst: Gpr::Ecx,
            imm: 5,
        });
        asm.bind(top);
        asm.push(Inst::DecR { r: Gpr::Ecx });
        asm.jcc(CondX86::Nz, top);
        asm.push(Inst::Ret);
        asm.finish()
    }

    #[test]
    fn loop_executes_and_halts() {
        let mut interp = Interp::new(countdown_program());
        let records = interp.run(1000).unwrap();
        assert!(interp.halted());
        assert_eq!(interp.machine.reg(ArchReg::Ecx), 0);
        // 1 mov + 5 * (dec + jcc) + ret.
        assert_eq!(records.len(), 1 + 10 + 1);
        // Branch outcome: taken 4 times, not-taken once.
        let takens: Vec<bool> = records.iter().filter_map(|r| r.taken()).collect();
        assert_eq!(takens, vec![true, true, true, true, false]);
    }

    #[test]
    fn call_ret_roundtrip() {
        let mut asm = Assembler::new(0x2000);
        let f = asm.new_label();
        asm.call(f);
        asm.push(Inst::Ret); // back at top level: halts
        asm.bind(f);
        asm.push(Inst::MovRI {
            dst: Gpr::Eax,
            imm: 99,
        });
        asm.push(Inst::Ret);
        let mut interp = Interp::new(asm.finish());
        let esp0 = interp.machine.reg(ArchReg::Esp);
        interp.run(100).unwrap();
        assert!(interp.halted());
        assert_eq!(interp.machine.reg(ArchReg::Eax), 99);
        assert_eq!(
            interp.machine.reg(ArchReg::Esp),
            esp0 + 4,
            "outermost RET popped the sentinel"
        );
    }

    #[test]
    fn memory_effects_recorded() {
        let mut asm = Assembler::new(0x3000);
        asm.push(Inst::MovRI {
            dst: Gpr::Eax,
            imm: 7,
        });
        asm.push(Inst::MovMR {
            mem: MemOperand::absolute(0x9000),
            src: Gpr::Eax,
        });
        asm.push(Inst::MovRM {
            dst: Gpr::Ebx,
            mem: MemOperand::absolute(0x9000),
        });
        asm.push(Inst::Ret);
        let mut interp = Interp::new(asm.finish());
        let records = interp.run(100).unwrap();
        let store = records[1].uops.last().unwrap();
        assert_eq!(store.effect.mem_write, Some((0x9000, 7)));
        let load = &records[2].uops[0];
        assert_eq!(load.effect.mem_read, Some((0x9000, 7)));
    }

    #[test]
    fn out_of_program_detected() {
        let mut asm = Assembler::new(0x100);
        asm.push(Inst::Jmp { target: 0x9999 });
        let mut interp = Interp::new(asm.finish());
        interp.step().unwrap();
        assert_eq!(
            interp.step().unwrap_err(),
            InterpError::OutOfProgram { pc: 0x9999 }
        );
    }

    #[test]
    fn uop_ratio_accumulates() {
        let mut interp = Interp::new(countdown_program());
        interp.run(1000).unwrap();
        let t = interp.translator();
        assert_eq!(t.x86_count(), 12);
        // mov(1) + 5*dec(1) + 5*jcc(1) + ret(3) = 14 uops.
        assert_eq!(t.uop_count(), 14);
        assert!(t.ratio() > 1.0 && t.ratio() < 1.3);
    }

    #[test]
    fn alu_rm_reads_memory() {
        let mut asm = Assembler::new(0x100);
        asm.push(Inst::MovRI {
            dst: Gpr::Eax,
            imm: 40,
        });
        asm.push(Inst::MovMI {
            mem: MemOperand::absolute(0x8000),
            imm: 2,
        });
        asm.push(Inst::AluRM {
            op: AluOp::Add,
            dst: Gpr::Eax,
            mem: MemOperand::absolute(0x8000),
        });
        asm.push(Inst::Ret);
        let mut interp = Interp::new(asm.finish());
        interp.run(100).unwrap();
        assert_eq!(interp.machine.reg(ArchReg::Eax), 42);
    }
}
