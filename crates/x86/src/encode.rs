//! IA-32 byte-level encoder for the instruction subset.

use crate::{AluOp, Gpr, Inst, MemOperand};

/// Emits the ModRM (and SIB/displacement) bytes for a register-direct
/// operand.
fn modrm_reg(reg_field: u8, rm: Gpr, out: &mut Vec<u8>) {
    out.push(0b11_000_000 | (reg_field << 3) | rm.code());
}

/// Emits the ModRM, SIB, and displacement bytes for a memory operand.
///
/// Handles the IA-32 special cases: `ESP` as a base forces a SIB byte,
/// `EBP` as a base cannot use mod=00, and base-less operands use the
/// disp32-only forms.
fn modrm_mem(reg_field: u8, mem: &MemOperand, out: &mut Vec<u8>) {
    let reg = reg_field << 3;
    match (mem.base, mem.index) {
        (None, None) => {
            // mod=00, rm=101: disp32 absolute.
            out.push(reg | 0b101);
            out.extend_from_slice(&mem.disp.to_le_bytes());
        }
        (None, Some((index, scale))) => {
            // SIB with no base: mod=00, rm=100, SIB base=101 => disp32.
            out.push(reg | 0b100);
            out.push(scale_bits(scale) << 6 | index.code() << 3 | 0b101);
            out.extend_from_slice(&mem.disp.to_le_bytes());
        }
        (Some(base), index) => {
            let needs_sib = index.is_some() || base == Gpr::Esp;
            // EBP as base cannot be encoded with mod=00 (that slot means
            // disp32-absolute), so force at least a disp8.
            let (modbits, disp_len) = if mem.disp == 0 && base != Gpr::Ebp {
                (0b00, 0)
            } else if i8::try_from(mem.disp).is_ok() {
                (0b01, 1)
            } else {
                (0b10, 4)
            };
            if needs_sib {
                out.push(modbits << 6 | reg | 0b100);
                let (idx_code, scale) = match index {
                    Some((i, s)) => (i.code(), s),
                    // index=100 in SIB means "no index".
                    None => (0b100, 1),
                };
                out.push(scale_bits(scale) << 6 | idx_code << 3 | base.code());
            } else {
                out.push(modbits << 6 | reg | base.code());
            }
            match disp_len {
                0 => {}
                1 => out.push(mem.disp as i8 as u8),
                _ => out.extend_from_slice(&mem.disp.to_le_bytes()),
            }
        }
    }
}

fn scale_bits(scale: u8) -> u8 {
    match scale {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => panic!("invalid scale {scale}"),
    }
}

fn imm32(imm: i32, out: &mut Vec<u8>) {
    out.extend_from_slice(&imm.to_le_bytes());
}

/// Relative displacement for a rel32 branch: `target - (addr + inst_len)`.
fn rel32(target: u32, addr: u32, inst_len: u32, out: &mut Vec<u8>) {
    let rel = target.wrapping_sub(addr.wrapping_add(inst_len)) as i32;
    out.extend_from_slice(&rel.to_le_bytes());
}

/// The `ADD`-group opcode byte for the `op r/m32, r32` form; the
/// `op r32, r/m32` form is this plus 2.
fn alu_mr_opcode(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0x01,
        AluOp::Or => 0x09,
        AluOp::And => 0x21,
        AluOp::Sub => 0x29,
        AluOp::Xor => 0x31,
    }
}

/// Encodes one instruction into IA-32 machine code.
///
/// `addr` is the absolute address the instruction will occupy; it is needed
/// to convert the model's absolute branch targets to rel32 displacements.
///
/// # Example
///
/// ```
/// use replay_x86::{encode, Gpr, Inst};
/// // PUSH EBP is 0x55.
/// assert_eq!(encode(&Inst::PushR { src: Gpr::Ebp }, 0), vec![0x55]);
/// ```
pub fn encode(inst: &Inst, addr: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    match *inst {
        Inst::MovRR { dst, src } => {
            out.push(0x89);
            modrm_reg(src.code(), dst, &mut out);
        }
        Inst::MovRI { dst, imm } => {
            out.push(0xb8 + dst.code());
            imm32(imm, &mut out);
        }
        Inst::MovRM { dst, mem } => {
            out.push(0x8b);
            modrm_mem(dst.code(), &mem, &mut out);
        }
        Inst::MovMR { mem, src } => {
            out.push(0x89);
            modrm_mem(src.code(), &mem, &mut out);
        }
        Inst::MovMI { mem, imm } => {
            out.push(0xc7);
            modrm_mem(0, &mem, &mut out);
            imm32(imm, &mut out);
        }
        Inst::Lea { dst, mem } => {
            out.push(0x8d);
            modrm_mem(dst.code(), &mem, &mut out);
        }
        Inst::PushR { src } => out.push(0x50 + src.code()),
        Inst::PushI { imm } => {
            out.push(0x68);
            imm32(imm, &mut out);
        }
        Inst::PopR { dst } => out.push(0x58 + dst.code()),
        Inst::AluRR { op, dst, src } => {
            out.push(alu_mr_opcode(op));
            modrm_reg(src.code(), dst, &mut out);
        }
        Inst::AluRI { op, dst, imm } => {
            out.push(0x81);
            modrm_reg(op.ext(), dst, &mut out);
            imm32(imm, &mut out);
        }
        Inst::AluRM { op, dst, mem } => {
            out.push(alu_mr_opcode(op) + 2);
            modrm_mem(dst.code(), &mem, &mut out);
        }
        Inst::AluMR { op, mem, src } => {
            out.push(alu_mr_opcode(op));
            modrm_mem(src.code(), &mem, &mut out);
        }
        Inst::CmpRR { a, b } => {
            out.push(0x39);
            modrm_reg(b.code(), a, &mut out);
        }
        Inst::CmpRI { a, imm } => {
            out.push(0x81);
            modrm_reg(7, a, &mut out);
            imm32(imm, &mut out);
        }
        Inst::CmpRM { a, mem } => {
            out.push(0x3b);
            modrm_mem(a.code(), &mem, &mut out);
        }
        Inst::TestRR { a, b } => {
            out.push(0x85);
            modrm_reg(b.code(), a, &mut out);
        }
        Inst::TestRI { a, imm } => {
            out.push(0xf7);
            modrm_reg(0, a, &mut out);
            imm32(imm, &mut out);
        }
        Inst::IncR { r } => out.push(0x40 + r.code()),
        Inst::DecR { r } => out.push(0x48 + r.code()),
        Inst::NegR { r } => {
            out.push(0xf7);
            modrm_reg(3, r, &mut out);
        }
        Inst::NotR { r } => {
            out.push(0xf7);
            modrm_reg(2, r, &mut out);
        }
        Inst::ShiftRI { op, r, imm } => {
            out.push(0xc1);
            modrm_reg(op.ext(), r, &mut out);
            out.push(imm);
        }
        Inst::ImulRR { dst, src } => {
            out.push(0x0f);
            out.push(0xaf);
            modrm_reg(dst.code(), src, &mut out);
        }
        Inst::ImulRRI { dst, src, imm } => {
            out.push(0x69);
            modrm_reg(dst.code(), src, &mut out);
            imm32(imm, &mut out);
        }
        Inst::DivR { src } => {
            out.push(0xf7);
            modrm_reg(6, src, &mut out);
        }
        Inst::Cdq => out.push(0x99),
        Inst::Jmp { target } => {
            out.push(0xe9);
            rel32(target, addr, 5, &mut out);
        }
        Inst::Jcc { cc, target } => {
            out.push(0x0f);
            out.push(0x80 + cc.tttn());
            rel32(target, addr, 6, &mut out);
        }
        Inst::JmpInd { r } => {
            out.push(0xff);
            modrm_reg(4, r, &mut out);
        }
        Inst::Call { target } => {
            out.push(0xe8);
            rel32(target, addr, 5, &mut out);
        }
        Inst::Ret => out.push(0xc3),
        Inst::Nop => out.push(0x90),
        Inst::LongFlow => {
            out.push(0x0f);
            out.push(0x0b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CondX86;

    #[test]
    fn known_encodings() {
        // PUSH EBP = 55, PUSH EBX = 53, POP EBX = 5B, RET = C3, NOP = 90.
        assert_eq!(encode(&Inst::PushR { src: Gpr::Ebp }, 0), vec![0x55]);
        assert_eq!(encode(&Inst::PushR { src: Gpr::Ebx }, 0), vec![0x53]);
        assert_eq!(encode(&Inst::PopR { dst: Gpr::Ebx }, 0), vec![0x5b]);
        assert_eq!(encode(&Inst::Ret, 0), vec![0xc3]);
        assert_eq!(encode(&Inst::Nop, 0), vec![0x90]);
        // XOR EAX,EAX = 31 C0.
        assert_eq!(
            encode(
                &Inst::AluRR {
                    op: AluOp::Xor,
                    dst: Gpr::Eax,
                    src: Gpr::Eax
                },
                0
            ),
            vec![0x31, 0xc0]
        );
        // MOV EDX,ECX = 89 CA.
        assert_eq!(
            encode(
                &Inst::MovRR {
                    dst: Gpr::Edx,
                    src: Gpr::Ecx
                },
                0
            ),
            vec![0x89, 0xca]
        );
    }

    #[test]
    fn esp_base_uses_sib() {
        // MOV ECX,[ESP+0xC] = 8B 4C 24 0C.
        let m = MemOperand::base_disp(Gpr::Esp, 0xc);
        assert_eq!(
            encode(
                &Inst::MovRM {
                    dst: Gpr::Ecx,
                    mem: m
                },
                0
            ),
            vec![0x8b, 0x4c, 0x24, 0x0c]
        );
    }

    #[test]
    fn ebp_base_forces_disp8() {
        // MOV EAX,[EBP] must encode as 8B 45 00 (mod=01 disp8=0).
        let m = MemOperand::base_disp(Gpr::Ebp, 0);
        assert_eq!(
            encode(
                &Inst::MovRM {
                    dst: Gpr::Eax,
                    mem: m
                },
                0
            ),
            vec![0x8b, 0x45, 0x00]
        );
    }

    #[test]
    fn disp32_when_large() {
        let m = MemOperand::base_disp(Gpr::Ebx, 0x1234);
        let bytes = encode(
            &Inst::MovRM {
                dst: Gpr::Eax,
                mem: m,
            },
            0,
        );
        assert_eq!(bytes, vec![0x8b, 0x83, 0x34, 0x12, 0x00, 0x00]);
    }

    #[test]
    fn scaled_index_sib() {
        // MOV EAX,[EBX+ECX*4+8] = 8B 44 8B 08.
        let m = MemOperand::base_index(Gpr::Ebx, Gpr::Ecx, 4, 8);
        assert_eq!(
            encode(
                &Inst::MovRM {
                    dst: Gpr::Eax,
                    mem: m
                },
                0
            ),
            vec![0x8b, 0x44, 0x8b, 0x08]
        );
    }

    #[test]
    fn absolute_addressing() {
        // MOV EAX,[0x1000] = 8B 05 00 10 00 00 (alias of A1 form; both valid).
        let m = MemOperand::absolute(0x1000);
        assert_eq!(
            encode(
                &Inst::MovRM {
                    dst: Gpr::Eax,
                    mem: m
                },
                0
            ),
            vec![0x8b, 0x05, 0x00, 0x10, 0x00, 0x00]
        );
    }

    #[test]
    fn rel32_branches() {
        // JMP to self+5 => rel 0. E9 00 00 00 00.
        assert_eq!(
            encode(&Inst::Jmp { target: 105 }, 100),
            vec![0xe9, 0, 0, 0, 0]
        );
        // Backward jump.
        let b = encode(&Inst::Jmp { target: 0 }, 100);
        assert_eq!(b[0], 0xe9);
        assert_eq!(i32::from_le_bytes([b[1], b[2], b[3], b[4]]), -105);
        // JZ forward: 0F 84 rel32.
        let b = encode(
            &Inst::Jcc {
                cc: CondX86::Z,
                target: 0x20,
            },
            0x10,
        );
        assert_eq!(&b[..2], &[0x0f, 0x84]);
        assert_eq!(i32::from_le_bytes([b[2], b[3], b[4], b[5]]), 0x20 - 0x16);
    }

    #[test]
    fn imul_and_div() {
        // IMUL EAX,ECX = 0F AF C1.
        assert_eq!(
            encode(
                &Inst::ImulRR {
                    dst: Gpr::Eax,
                    src: Gpr::Ecx
                },
                0
            ),
            vec![0x0f, 0xaf, 0xc1]
        );
        // DIV EBX = F7 F3.
        assert_eq!(encode(&Inst::DivR { src: Gpr::Ebx }, 0), vec![0xf7, 0xf3]);
    }
}
