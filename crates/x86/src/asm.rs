//! A small label-based assembler producing executable byte images.

use crate::{decode, encode, CondX86, DecodeError, Inst};
use std::collections::HashMap;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembled program: a byte image at a base address.
#[derive(Debug, Clone)]
pub struct Program {
    /// Address of the first byte of `image`.
    pub base: u32,
    /// The machine-code bytes.
    pub image: Vec<u8>,
    /// Entry-point address.
    pub entry: u32,
}

impl Program {
    /// The address one past the last byte of the program.
    pub fn end(&self) -> u32 {
        self.base + self.image.len() as u32
    }

    /// True if `addr` lies inside the program image.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Decodes the instruction at an absolute address.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if `addr` is outside the image,
    /// or any decoder error for invalid bytes.
    pub fn decode_at(&self, addr: u32) -> Result<(Inst, u8), DecodeError> {
        if !self.contains(addr) {
            return Err(DecodeError::Truncated);
        }
        let off = (addr - self.base) as usize;
        decode(&self.image[off..], addr)
    }
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    /// `JMP rel32` / `CALL rel32`: patch 4 bytes at `pos + 1`.
    Rel32At1,
    /// `Jcc rel32`: patch 4 bytes at `pos + 2`.
    Rel32At2,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    pos: usize,
    label: Label,
    kind: FixupKind,
}

/// An assembler that emits the x86 subset with label-based branch targets.
///
/// Instructions with statically known (absolute) targets can be pushed
/// directly with [`Assembler::push`]; branches to not-yet-emitted code use
/// labels, which are patched when [`Assembler::finish`] resolves the image.
///
/// # Example
///
/// ```
/// use replay_x86::{Assembler, CondX86, Gpr, Inst};
///
/// let mut asm = Assembler::new(0x1000);
/// let done = asm.new_label();
/// asm.push(Inst::CmpRI { a: Gpr::Eax, imm: 0 });
/// asm.jcc(CondX86::Z, done);
/// asm.push(Inst::DecR { r: Gpr::Eax });
/// asm.bind(done);
/// asm.push(Inst::Ret);
/// let program = asm.finish();
/// assert!(program.image.len() > 0);
/// ```
#[derive(Debug)]
pub struct Assembler {
    base: u32,
    entry: u32,
    image: Vec<u8>,
    labels: HashMap<Label, u32>,
    fixups: Vec<Fixup>,
    next_label: usize,
}

impl Assembler {
    /// Creates an assembler that will place code starting at `base`; the
    /// entry point defaults to `base`.
    pub fn new(base: u32) -> Assembler {
        Assembler {
            base,
            entry: base,
            image: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            next_label: 0,
        }
    }

    /// The address the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + self.image.len() as u32
    }

    /// Sets the program entry point to the current position.
    pub fn mark_entry(&mut self) {
        self.entry = self.here();
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.labels.insert(label, self.here());
        assert!(prev.is_none(), "label bound twice");
    }

    /// Emits an instruction whose operands are fully known.
    pub fn push(&mut self, inst: Inst) {
        let addr = self.here();
        self.image.extend(encode(&inst, addr));
    }

    /// Emits `JMP` to a label.
    pub fn jmp(&mut self, label: Label) {
        self.fixups.push(Fixup {
            pos: self.image.len(),
            label,
            kind: FixupKind::Rel32At1,
        });
        self.push(Inst::Jmp { target: 0 });
    }

    /// Emits `Jcc` to a label.
    pub fn jcc(&mut self, cc: CondX86, label: Label) {
        self.fixups.push(Fixup {
            pos: self.image.len(),
            label,
            kind: FixupKind::Rel32At2,
        });
        self.push(Inst::Jcc { cc, target: 0 });
    }

    /// Emits `CALL` to a label.
    pub fn call(&mut self, label: Label) {
        self.fixups.push(Fixup {
            pos: self.image.len(),
            label,
            kind: FixupKind::Rel32At1,
        });
        self.push(Inst::Call { target: 0 });
    }

    /// Resolves all fixups and produces the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        for fix in &self.fixups {
            let target = *self
                .labels
                .get(&fix.label)
                .unwrap_or_else(|| panic!("unbound label {:?}", fix.label));
            let (rel_off, inst_len) = match fix.kind {
                FixupKind::Rel32At1 => (fix.pos + 1, 5u32),
                FixupKind::Rel32At2 => (fix.pos + 2, 6u32),
            };
            let inst_addr = self.base + fix.pos as u32;
            let rel = target.wrapping_sub(inst_addr.wrapping_add(inst_len)) as i32;
            self.image[rel_off..rel_off + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Program {
            base: self.base,
            image: self.image,
            entry: self.entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gpr;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new(0x1000);
        let top = asm.new_label();
        let out = asm.new_label();
        asm.bind(top);
        asm.push(Inst::DecR { r: Gpr::Ecx });
        asm.push(Inst::CmpRI {
            a: Gpr::Ecx,
            imm: 0,
        });
        asm.jcc(CondX86::Z, out); // forward
        asm.jmp(top); // backward
        asm.bind(out);
        asm.push(Inst::Ret);
        let p = asm.finish();

        // Decode the whole image and check the targets are absolute.
        let mut addr = p.base;
        let mut decoded = Vec::new();
        while addr < p.end() {
            let (inst, len) = p.decode_at(addr).unwrap();
            decoded.push(inst);
            addr += len as u32;
        }
        let jcc_target = decoded
            .iter()
            .find_map(|i| match i {
                Inst::Jcc { target, .. } => Some(*target),
                _ => None,
            })
            .unwrap();
        let jmp_target = decoded
            .iter()
            .find_map(|i| match i {
                Inst::Jmp { target } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert_eq!(jmp_target, 0x1000, "backward jump to top");
        // The Jcc target is the RET.
        let (ret, _) = p.decode_at(jcc_target).unwrap();
        assert_eq!(ret, Inst::Ret);
    }

    #[test]
    fn entry_defaults_to_base_and_can_move() {
        let mut asm = Assembler::new(0x2000);
        asm.push(Inst::Nop);
        assert_eq!(asm.here(), 0x2001);
        asm.mark_entry();
        asm.push(Inst::Ret);
        let p = asm.finish();
        assert_eq!(p.base, 0x2000);
        assert_eq!(p.entry, 0x2001);
        assert!(p.contains(0x2001));
        assert!(!p.contains(0x2002));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut asm = Assembler::new(0);
        let l = asm.new_label();
        asm.jmp(l);
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new(0);
        let l = asm.new_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn call_fixup() {
        let mut asm = Assembler::new(0x100);
        let f = asm.new_label();
        asm.call(f);
        asm.push(Inst::Ret);
        asm.bind(f);
        asm.push(Inst::Ret);
        let p = asm.finish();
        let (inst, _) = p.decode_at(0x100).unwrap();
        assert_eq!(inst, Inst::Call { target: 0x106 });
    }
}
