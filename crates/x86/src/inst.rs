//! The x86 subset instruction model.

use crate::Gpr;
use replay_uop::Cond;
use std::fmt;

/// An x86 memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOperand {
    /// Base register, if any.
    pub base: Option<Gpr>,
    /// Index register with its scale (1, 2, 4, or 8). The index may not be
    /// `ESP` (IA-32 encoding restriction).
    pub index: Option<(Gpr, u8)>,
    /// Displacement.
    pub disp: i32,
}

impl MemOperand {
    /// `[base + disp]`.
    pub fn base_disp(base: Gpr, disp: i32) -> MemOperand {
        MemOperand {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[base + index*scale + disp]`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is `ESP` (not encodable in IA-32) or `scale` is not
    /// 1, 2, 4, or 8.
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i32) -> MemOperand {
        assert!(index != Gpr::Esp, "ESP cannot be an index register");
        assert!(matches!(scale, 1 | 2 | 4 | 8), "scale must be 1/2/4/8");
        MemOperand {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// Absolute `[disp]`.
    pub fn absolute(addr: u32) -> MemOperand {
        MemOperand {
            base: None,
            index: None,
            disp: addr as i32,
        }
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, "+{:#x}", self.disp)?;
                } else {
                    write!(f, "-{:#x}", -(self.disp as i64))?;
                }
            } else {
                write!(f, "{:#x}", self.disp as u32)?;
            }
        }
        write!(f, "]")
    }
}

/// Two-address ALU operations (the x86 `ADD`-group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `ADD` — ModRM reg-field extension /0.
    Add,
    /// `OR` — /1.
    Or,
    /// `AND` — /4.
    And,
    /// `SUB` — /5.
    Sub,
    /// `XOR` — /6.
    Xor,
}

impl AluOp {
    /// All ALU group operations.
    pub const ALL: [AluOp; 5] = [AluOp::Add, AluOp::Or, AluOp::And, AluOp::Sub, AluOp::Xor];

    /// ModRM reg-field extension for the `81 /n` immediate forms.
    pub fn ext(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Or => 1,
            AluOp::And => 4,
            AluOp::Sub => 5,
            AluOp::Xor => 6,
        }
    }

    /// Reconstructs from a ModRM extension code.
    pub fn from_ext(ext: u8) -> Option<AluOp> {
        Some(match ext {
            0 => AluOp::Add,
            1 => AluOp::Or,
            4 => AluOp::And,
            5 => AluOp::Sub,
            6 => AluOp::Xor,
            _ => return None,
        })
    }

    /// The corresponding uop opcode.
    pub fn to_uop(self) -> replay_uop::Opcode {
        match self {
            AluOp::Add => replay_uop::Opcode::Add,
            AluOp::Or => replay_uop::Opcode::Or,
            AluOp::And => replay_uop::Opcode::And,
            AluOp::Sub => replay_uop::Opcode::Sub,
            AluOp::Xor => replay_uop::Opcode::Xor,
        }
    }

    /// Mnemonic, e.g. `"ADD"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Or => "OR",
            AluOp::And => "AND",
            AluOp::Sub => "SUB",
            AluOp::Xor => "XOR",
        }
    }
}

/// Shift operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// `SHL` — /4.
    Shl,
    /// `SHR` — /5.
    Shr,
    /// `SAR` — /7.
    Sar,
}

impl ShiftOp {
    /// ModRM reg-field extension for the `C1 /n` forms.
    pub fn ext(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Reconstructs from a ModRM extension code.
    pub fn from_ext(ext: u8) -> Option<ShiftOp> {
        Some(match ext {
            4 => ShiftOp::Shl,
            5 => ShiftOp::Shr,
            7 => ShiftOp::Sar,
            _ => return None,
        })
    }

    /// The corresponding uop opcode.
    pub fn to_uop(self) -> replay_uop::Opcode {
        match self {
            ShiftOp::Shl => replay_uop::Opcode::Shl,
            ShiftOp::Shr => replay_uop::Opcode::Shr,
            ShiftOp::Sar => replay_uop::Opcode::Sar,
        }
    }
}

/// x86 condition codes (`Jcc` tttn encodings).
///
/// The numeric values are the IA-32 `tttn` condition encodings used in the
/// `0F 8x` long-form `Jcc` opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CondX86 {
    /// `JO` (0x0).
    O = 0x0,
    /// `JNO` (0x1).
    No = 0x1,
    /// `JB` (0x2).
    B = 0x2,
    /// `JAE` (0x3).
    Ae = 0x3,
    /// `JZ`/`JE` (0x4).
    Z = 0x4,
    /// `JNZ`/`JNE` (0x5).
    Nz = 0x5,
    /// `JBE` (0x6).
    Be = 0x6,
    /// `JA` (0x7).
    A = 0x7,
    /// `JS` (0x8).
    S = 0x8,
    /// `JNS` (0x9).
    Ns = 0x9,
    /// `JP` (0xa).
    P = 0xa,
    /// `JNP` (0xb).
    Np = 0xb,
    /// `JL` (0xc).
    L = 0xc,
    /// `JGE` (0xd).
    Ge = 0xd,
    /// `JLE` (0xe).
    Le = 0xe,
    /// `JG` (0xf).
    G = 0xf,
}

impl CondX86 {
    /// All condition encodings.
    pub const ALL: [CondX86; 16] = [
        CondX86::O,
        CondX86::No,
        CondX86::B,
        CondX86::Ae,
        CondX86::Z,
        CondX86::Nz,
        CondX86::Be,
        CondX86::A,
        CondX86::S,
        CondX86::Ns,
        CondX86::P,
        CondX86::Np,
        CondX86::L,
        CondX86::Ge,
        CondX86::Le,
        CondX86::G,
    ];

    /// The IA-32 `tttn` encoding.
    pub fn tttn(self) -> u8 {
        self as u8
    }

    /// Reconstructs from a `tttn` encoding.
    pub fn from_tttn(t: u8) -> Option<CondX86> {
        Self::ALL.get(t as usize).copied().filter(|c| c.tttn() == t)
    }

    /// The corresponding uop condition code.
    pub fn to_cond(self) -> Cond {
        match self {
            CondX86::O => Cond::O,
            CondX86::No => Cond::No,
            CondX86::B => Cond::B,
            CondX86::Ae => Cond::Ae,
            CondX86::Z => Cond::Eq,
            CondX86::Nz => Cond::Ne,
            CondX86::Be => Cond::Be,
            CondX86::A => Cond::A,
            CondX86::S => Cond::S,
            CondX86::Ns => Cond::Ns,
            CondX86::P => Cond::P,
            CondX86::Np => Cond::Np,
            CondX86::L => Cond::Lt,
            CondX86::Ge => Cond::Ge,
            CondX86::Le => Cond::Le,
            CondX86::G => Cond::Gt,
        }
    }
}

/// An instruction in the x86 subset.
///
/// Branch/call targets are absolute x86 addresses in the instruction model;
/// the encoder converts them to rel32 form and the decoder converts back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `MOV r32, r32`.
    MovRR {
        /// Destination register.
        dst: Gpr,
        /// Source register.
        src: Gpr,
    },
    /// `MOV r32, imm32`.
    MovRI {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: i32,
    },
    /// `MOV r32, [mem]` — load.
    MovRM {
        /// Destination register.
        dst: Gpr,
        /// Source memory operand.
        mem: MemOperand,
    },
    /// `MOV [mem], r32` — store.
    MovMR {
        /// Destination memory operand.
        mem: MemOperand,
        /// Source register.
        src: Gpr,
    },
    /// `MOV [mem], imm32` — store immediate.
    MovMI {
        /// Destination memory operand.
        mem: MemOperand,
        /// Immediate value.
        imm: i32,
    },
    /// `LEA r32, [mem]`.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address expression.
        mem: MemOperand,
    },
    /// `PUSH r32`.
    PushR {
        /// Register pushed.
        src: Gpr,
    },
    /// `PUSH imm32`.
    PushI {
        /// Immediate pushed.
        imm: i32,
    },
    /// `POP r32`.
    PopR {
        /// Register popped into.
        dst: Gpr,
    },
    /// ALU `op r32, r32`.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination (and first source).
        dst: Gpr,
        /// Second source.
        src: Gpr,
    },
    /// ALU `op r32, imm32`.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination (and first source).
        dst: Gpr,
        /// Immediate second operand.
        imm: i32,
    },
    /// ALU `op r32, [mem]` — load-operate.
    AluRM {
        /// Operation.
        op: AluOp,
        /// Destination (and first source).
        dst: Gpr,
        /// Memory second operand.
        mem: MemOperand,
    },
    /// ALU `op [mem], r32` — read-modify-write.
    AluMR {
        /// Operation.
        op: AluOp,
        /// Memory destination (and first source).
        mem: MemOperand,
        /// Register second operand.
        src: Gpr,
    },
    /// `CMP r32, r32`.
    CmpRR {
        /// First operand.
        a: Gpr,
        /// Second operand.
        b: Gpr,
    },
    /// `CMP r32, imm32`.
    CmpRI {
        /// First operand.
        a: Gpr,
        /// Immediate second operand.
        imm: i32,
    },
    /// `CMP r32, [mem]`.
    CmpRM {
        /// First operand.
        a: Gpr,
        /// Memory second operand.
        mem: MemOperand,
    },
    /// `TEST r32, r32`.
    TestRR {
        /// First operand.
        a: Gpr,
        /// Second operand.
        b: Gpr,
    },
    /// `TEST r32, imm32`.
    TestRI {
        /// First operand.
        a: Gpr,
        /// Immediate mask.
        imm: i32,
    },
    /// `INC r32`.
    IncR {
        /// Register incremented.
        r: Gpr,
    },
    /// `DEC r32`.
    DecR {
        /// Register decremented.
        r: Gpr,
    },
    /// `NEG r32`.
    NegR {
        /// Register negated.
        r: Gpr,
    },
    /// `NOT r32`.
    NotR {
        /// Register complemented.
        r: Gpr,
    },
    /// Shift `op r32, imm8`.
    ShiftRI {
        /// Shift kind.
        op: ShiftOp,
        /// Register shifted.
        r: Gpr,
        /// Shift count (0–31).
        imm: u8,
    },
    /// `IMUL r32, r32` (two-operand form).
    ImulRR {
        /// Destination (and first source).
        dst: Gpr,
        /// Second source.
        src: Gpr,
    },
    /// `IMUL r32, r32, imm32` (three-operand form).
    ImulRRI {
        /// Destination.
        dst: Gpr,
        /// Source.
        src: Gpr,
        /// Immediate multiplier.
        imm: i32,
    },
    /// `DIV r32`: unsigned divide of `EAX` by `r`; quotient → `EAX`,
    /// remainder → `EDX`.
    ///
    /// Simplification vs. real x86: the dividend is `EAX` alone rather than
    /// the 64-bit `EDX:EAX` pair. Generated programs always `XOR EDX,EDX` or
    /// `CDQ` first, so the semantics coincide on all traced executions.
    DivR {
        /// Divisor register.
        src: Gpr,
    },
    /// `CDQ`: sign-extend `EAX` into `EDX`.
    Cdq,
    /// `JMP rel32` — unconditional direct jump (absolute target here).
    Jmp {
        /// Target address.
        target: u32,
    },
    /// `Jcc rel32` — conditional jump.
    Jcc {
        /// Condition.
        cc: CondX86,
        /// Target address.
        target: u32,
    },
    /// `JMP r32` — indirect jump through a register.
    JmpInd {
        /// Register holding the target address.
        r: Gpr,
    },
    /// `CALL rel32`.
    Call {
        /// Target address.
        target: u32,
    },
    /// `RET`.
    Ret,
    /// `NOP`.
    Nop,
    /// A serializing "long-flow" instruction (stand-in for segment loads,
    /// call gates, etc. — the <0.05% of the stream the paper flushes on).
    /// Encoded as `0F 0B` (UD2, repurposed as a marker).
    LongFlow,
}

impl Inst {
    /// True for control-transfer instructions.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::JmpInd { .. }
                | Inst::Call { .. }
                | Inst::Ret
        )
    }

    /// True for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Jcc { .. })
    }

    /// The static branch target, if the instruction has one.
    pub fn target(&self) -> Option<u32> {
        match self {
            Inst::Jmp { target } | Inst::Jcc { target, .. } | Inst::Call { target } => {
                Some(*target)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::MovRR { dst, src } => write!(f, "MOV {dst},{src}"),
            Inst::MovRI { dst, imm } => write!(f, "MOV {dst},{imm:#x}"),
            Inst::MovRM { dst, mem } => write!(f, "MOV {dst},{mem}"),
            Inst::MovMR { mem, src } => write!(f, "MOV {mem},{src}"),
            Inst::MovMI { mem, imm } => write!(f, "MOV {mem},{imm:#x}"),
            Inst::Lea { dst, mem } => write!(f, "LEA {dst},{mem}"),
            Inst::PushR { src } => write!(f, "PUSH {src}"),
            Inst::PushI { imm } => write!(f, "PUSH {imm:#x}"),
            Inst::PopR { dst } => write!(f, "POP {dst}"),
            Inst::AluRR { op, dst, src } => write!(f, "{} {dst},{src}", op.mnemonic()),
            Inst::AluRI { op, dst, imm } => write!(f, "{} {dst},{imm:#x}", op.mnemonic()),
            Inst::AluRM { op, dst, mem } => write!(f, "{} {dst},{mem}", op.mnemonic()),
            Inst::AluMR { op, mem, src } => write!(f, "{} {mem},{src}", op.mnemonic()),
            Inst::CmpRR { a, b } => write!(f, "CMP {a},{b}"),
            Inst::CmpRI { a, imm } => write!(f, "CMP {a},{imm:#x}"),
            Inst::CmpRM { a, mem } => write!(f, "CMP {a},{mem}"),
            Inst::TestRR { a, b } => write!(f, "TEST {a},{b}"),
            Inst::TestRI { a, imm } => write!(f, "TEST {a},{imm:#x}"),
            Inst::IncR { r } => write!(f, "INC {r}"),
            Inst::DecR { r } => write!(f, "DEC {r}"),
            Inst::NegR { r } => write!(f, "NEG {r}"),
            Inst::NotR { r } => write!(f, "NOT {r}"),
            Inst::ShiftRI { op, r, imm } => {
                let m = match op {
                    ShiftOp::Shl => "SHL",
                    ShiftOp::Shr => "SHR",
                    ShiftOp::Sar => "SAR",
                };
                write!(f, "{m} {r},{imm}")
            }
            Inst::ImulRR { dst, src } => write!(f, "IMUL {dst},{src}"),
            Inst::ImulRRI { dst, src, imm } => write!(f, "IMUL {dst},{src},{imm:#x}"),
            Inst::DivR { src } => write!(f, "DIV {src}"),
            Inst::Cdq => write!(f, "CDQ"),
            Inst::Jmp { target } => write!(f, "JMP {target:#x}"),
            Inst::Jcc { cc, target } => write!(f, "J{:?} {target:#x}", cc),
            Inst::JmpInd { r } => write!(f, "JMP {r}"),
            Inst::Call { target } => write!(f, "CALL {target:#x}"),
            Inst::Ret => write!(f, "RET"),
            Inst::Nop => write!(f, "NOP"),
            Inst::LongFlow => write!(f, "LONGFLOW"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ext_roundtrip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_ext(op.ext()), Some(op));
        }
        assert_eq!(AluOp::from_ext(7), None, "7 is CMP, handled separately");
    }

    #[test]
    fn cond_tttn_roundtrip() {
        for c in CondX86::ALL {
            assert_eq!(CondX86::from_tttn(c.tttn()), Some(c));
        }
        assert_eq!(CondX86::from_tttn(16), None);
    }

    #[test]
    fn cond_maps_to_uop_cond() {
        use replay_uop::Flags;
        // JZ taken exactly when ZF set.
        let mut f = Flags::CLEAR;
        f.zf = true;
        assert!(CondX86::Z.to_cond().holds(f));
        assert!(!CondX86::Nz.to_cond().holds(f));
    }

    #[test]
    #[should_panic(expected = "ESP cannot be an index")]
    fn esp_index_rejected() {
        MemOperand::base_index(Gpr::Eax, Gpr::Esp, 4, 0);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::Jmp { target: 0 }.is_control());
        assert!(!Inst::Nop.is_control());
        assert!(Inst::Jcc {
            cc: CondX86::Z,
            target: 4
        }
        .is_cond_branch());
        assert_eq!(Inst::Call { target: 7 }.target(), Some(7));
        assert_eq!(Inst::Ret.target(), None);
    }

    #[test]
    fn display_renders() {
        let m = MemOperand::base_index(Gpr::Ebx, Gpr::Ecx, 4, 16);
        let i = Inst::MovRM {
            dst: Gpr::Eax,
            mem: m,
        };
        assert_eq!(i.to_string(), "MOV EAX,[EBX+ECX*4+0x10]");
        assert_eq!(
            Inst::MovMR {
                mem: MemOperand::base_disp(Gpr::Esp, -4),
                src: Gpr::Ebp
            }
            .to_string(),
            "MOV [ESP-0x4],EBP"
        );
    }
}
