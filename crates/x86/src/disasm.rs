//! Linear-sweep disassembly of program images.

use crate::{DecodeError, Inst, Program};

/// One disassembled instruction with its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u32,
    /// Encoded length.
    pub len: u8,
    /// The instruction.
    pub inst: Inst,
}

/// An iterator performing a linear sweep over a program image.
///
/// Stops at the end of the image or at the first undecodable byte (the
/// error is reported once, then iteration ends).
#[derive(Debug)]
pub struct Disasm<'a> {
    program: &'a Program,
    addr: u32,
    failed: bool,
}

impl<'a> Disasm<'a> {
    /// Starts a sweep at the image base.
    pub fn new(program: &'a Program) -> Disasm<'a> {
        Disasm {
            program,
            addr: program.base,
            failed: false,
        }
    }

    /// Starts a sweep at a specific address.
    pub fn from(program: &'a Program, addr: u32) -> Disasm<'a> {
        Disasm {
            program,
            addr,
            failed: false,
        }
    }
}

impl Iterator for Disasm<'_> {
    type Item = Result<DisasmLine, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || !self.program.contains(self.addr) {
            return None;
        }
        match self.program.decode_at(self.addr) {
            Ok((inst, len)) => {
                let line = DisasmLine {
                    addr: self.addr,
                    len,
                    inst,
                };
                self.addr += len as u32;
                Some(Ok(line))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

impl Program {
    /// Disassembles the whole image with a linear sweep.
    ///
    /// # Example
    ///
    /// ```
    /// use replay_x86::{Assembler, Gpr, Inst};
    /// let mut asm = Assembler::new(0x1000);
    /// asm.push(Inst::PushR { src: Gpr::Ebp });
    /// asm.push(Inst::Ret);
    /// let p = asm.finish();
    /// let lines: Vec<_> = p.disasm().collect::<Result<_, _>>().unwrap();
    /// assert_eq!(lines.len(), 2);
    /// assert_eq!(lines[1].inst, Inst::Ret);
    /// ```
    pub fn disasm(&self) -> Disasm<'_> {
        Disasm::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Gpr};

    #[test]
    fn sweeps_whole_image() {
        let mut asm = Assembler::new(0x40_0000);
        asm.push(Inst::MovRI {
            dst: Gpr::Eax,
            imm: 7,
        });
        asm.push(Inst::IncR { r: Gpr::Eax });
        asm.push(Inst::Ret);
        let p = asm.finish();
        let lines: Vec<_> = p.disasm().collect::<Result<_, _>>().unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].addr, 0x40_0000);
        assert_eq!(lines[1].addr, 0x40_0005);
        assert_eq!(
            lines[2].addr, 0x40_0006,
            "addresses advance by encoded length"
        );
    }

    #[test]
    fn reports_garbage_once_then_stops() {
        let p = Program {
            base: 0,
            image: vec![0x90, 0xcc, 0x90],
            entry: 0,
        };
        let mut it = p.disasm();
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iteration ends after an error");
    }

    #[test]
    fn from_offset() {
        let mut asm = Assembler::new(0x100);
        asm.push(Inst::Nop);
        asm.push(Inst::Ret);
        let p = asm.finish();
        let lines: Vec<_> = Disasm::from(&p, 0x101).collect::<Result<_, _>>().unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].inst, Inst::Ret);
    }

    #[test]
    fn workload_programs_disassemble_cleanly() {
        // The generated workloads must be fully decodable by linear sweep
        // (straight-line images with no embedded data).
        use replay_uop::ArchReg;
        let _ = ArchReg::Eax; // silence unused-import lint paranoia
        let mut asm = Assembler::new(0x1000);
        for i in 0..50 {
            asm.push(Inst::MovRI {
                dst: Gpr::Ecx,
                imm: i,
            });
            asm.push(Inst::AluRI {
                op: crate::AluOp::Add,
                dst: Gpr::Eax,
                imm: i,
            });
        }
        asm.push(Inst::Ret);
        let p = asm.finish();
        assert_eq!(p.disasm().count(), 101);
        assert!(p.disasm().all(|r| r.is_ok()));
    }
}
