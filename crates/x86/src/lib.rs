//! # replay-x86
//!
//! A from-scratch x86 (IA-32) subset: instruction model, byte-level encoder
//! and decoder, a label-based assembler, a functional interpreter, and the
//! x86 → micro-operation translator used by the rePLay Micro-Op Injector.
//!
//! Real x86 micro-op decode flows are proprietary, so — exactly as the paper
//! does (§5.1.1) — this crate translates x86 instructions into a generic
//! RISC-like uop ISA ([`replay_uop`]) with efficient flows. Across the
//! synthetic workloads the resulting uop-to-x86 ratio is ≈1.4, matching the
//! paper's reported average.
//!
//! The instruction subset covers the general-purpose integer ISA that
//! compiled 32-bit code actually exercises: `MOV` in all directions, the
//! two-address ALU group (including read-modify-write memory forms), `LEA`,
//! stack ops (`PUSH`/`POP`/`CALL`/`RET`), shifts, `IMUL`/`DIV`/`CDQ`,
//! `INC`/`DEC`/`NEG`/`NOT`, `CMP`/`TEST`, conditional branches, and direct /
//! indirect jumps. Encodings are genuine IA-32 machine code (ModRM/SIB,
//! disp8/disp32 selection, rel32 branches).
//!
//! # Example: assemble, decode, translate
//!
//! ```
//! use replay_x86::{Assembler, Gpr, Inst, MemOperand};
//!
//! let mut asm = Assembler::new(0x40_0000);
//! asm.push(Inst::PushR { src: Gpr::Ebp });
//! asm.push(Inst::MovRM {
//!     dst: Gpr::Ecx,
//!     mem: MemOperand::base_disp(Gpr::Esp, 0xc),
//! });
//! let program = asm.finish();
//!
//! // Bytes round-trip through the decoder.
//! let (inst, len) = replay_x86::decode(&program.image, 0).expect("valid encoding");
//! assert_eq!(inst, Inst::PushR { src: Gpr::Ebp });
//! assert_eq!(len, 1); // PUSH r32 is a single byte
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod decode;
mod disasm;
mod encode;
mod gpr;
mod inst;
mod interp;
mod translate;

pub use asm::{Assembler, Label, Program};
pub use decode::{decode, DecodeError};
pub use disasm::{Disasm, DisasmLine};
pub use encode::encode;
pub use gpr::Gpr;
pub use inst::{AluOp, CondX86, Inst, MemOperand, ShiftOp};
pub use interp::{Interp, InterpError, StepRecord, UopExec, HALT_ADDR};
pub use translate::{translate, Translator};
