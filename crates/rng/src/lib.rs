//! # replay-rng
//!
//! A small, dependency-free deterministic pseudo-random number generator.
//!
//! The synthetic workload generator ([`replay_trace`]) and the randomized
//! integration tests need reproducible random streams, but the build must
//! work without network access to a crates registry. This crate provides a
//! [`SmallRng`] with the subset of the `rand` API the repository uses:
//! [`SmallRng::seed_from_u64`], [`SmallRng::random_range`], and
//! [`SmallRng::random_bool`].
//!
//! The core generator is **xoshiro256++** (Blackman & Vigna), seeded from a
//! 64-bit value through **SplitMix64** — the same construction `rand`'s
//! `SmallRng` documents. Streams are stable across platforms and releases:
//! workload generation depends on that, because every figure driver keys its
//! memoized traces on `(workload, scale)` alone.
//!
//! [`replay_trace`]: https://docs.rs/replay-trace
//!
//! # Example
//!
//! ```
//! use replay_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let a = rng.random_range(0..100);
//! assert!((0..100).contains(&a));
//! let mut rng2 = SmallRng::seed_from_u64(42);
//! assert_eq!(a, rng2.random_range(0..100), "streams are reproducible");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64: expands one 64-bit seed into a well-mixed stream, used only
/// to initialize the xoshiro state (never as the main generator).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographically secure — statistical quality only, which is all
/// the workload generator and the tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Derives the `index`-th independent child stream of a master seed.
    ///
    /// Used by the parallel fuzzing harness: each case gets
    /// `split_stream(master, case_index)` so its draws are a pure function
    /// of `(master, case_index)` — independent of how cases are batched
    /// across worker threads, which makes `--jobs 1` and `--jobs 8` runs
    /// bit-identical. The pair is folded through SplitMix64 so adjacent
    /// indices land on unrelated xoshiro states.
    pub fn split_stream(master_seed: u64, index: u64) -> SmallRng {
        let mut sm = master_seed;
        // One round decorrelates the master from seed_from_u64(master);
        // folding in the index with an odd multiplier separates streams.
        let _ = splitmix64(&mut sm);
        sm ^= index.wrapping_mul(0xd1b5_4a32_d192_ed03);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Splits off a child generator seeded from this one's stream.
    ///
    /// The child's draws are decorrelated from the parent's subsequent
    /// draws; the parent advances by one step.
    pub fn split(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_u64())
    }

    /// The next 64 random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` using Lemire's widening-multiply
    /// rejection method (unbiased).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening multiply: map a 64-bit draw onto [0, bound) and reject
        // the draws that would bias the low residue classes.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in the given range.
    ///
    /// Accepts `a..b` and `a..=b` over the integer types the workload
    /// generator uses.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.random_range(0..slice.len())]
    }
}

/// A range [`SmallRng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

/// An integer type [`SmallRng::random_range`] can produce. The generic
/// [`SampleRange`] impls are keyed on this trait so that integer literals in
/// `rng.random_range(1..4)` infer their type from the use site.
pub trait SampleUniform: Copy {
    /// Widens to a common signed domain for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back from the common domain (the value is in range by
    /// construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample(self, rng: &mut SmallRng) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        T::from_i128(lo + rng.bounded(span) as i128)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample(self, rng: &mut SmallRng) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo + 1) as u64;
        // Span 0 would mean the full u64 domain; unreachable for the
        // 32-bit-and-smaller types used here, but handle u64/i64 anyway.
        if span == 0 {
            return T::from_i128(lo + rng.next_u64() as i128);
        }
        T::from_i128(lo + rng.bounded(span) as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_is_stable() {
        // Guards the stream against accidental algorithm changes: workload
        // traces (and the memoized TraceStore keys) depend on it.
        let mut r = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.random_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = r.random_range(0usize..=3);
            assert!(w <= 3);
            let x = r.random_range(1u32..1000);
            assert!((1..1000).contains(&x));
        }
    }

    #[test]
    fn single_value_ranges() {
        let mut r = SmallRng::seed_from_u64(4);
        assert_eq!(r.random_range(5i32..6), 5);
        assert_eq!(r.random_range(9usize..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).random_range(3i32..3);
    }

    #[test]
    fn bool_probabilities() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
        assert!((0..100).all(|_| r.random_bool(1.0)));
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Pearson chi-squared statistic for `counts` against a uniform
    /// expectation over the buckets.
    fn chi_squared(counts: &[u64], samples: u64) -> f64 {
        let expected = samples as f64 / counts.len() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    #[test]
    fn bounded_sampling_is_uniform_chi_squared() {
        // 64 buckets, 65536 draws, df = 63. The 0.1% critical value for
        // chi2(63) is 103.4; the 99.9% lower quantile is 32.0. A fixed
        // seed makes this deterministic, so both bounds are safe: above
        // means biased sampling, below means a suspiciously regular
        // (broken) generator.
        let mut r = SmallRng::seed_from_u64(0xC0FFEE);
        let mut counts = [0u64; 64];
        let n = 65_536u64;
        for _ in 0..n {
            counts[r.random_range(0usize..64)] += 1;
        }
        let chi2 = chi_squared(&counts, n);
        assert!((32.0..103.4).contains(&chi2), "chi2 = {chi2}");
    }

    #[test]
    fn raw_bits_are_uniform_chi_squared() {
        // Same test over the top 6 bits of next_u64 — exercises the raw
        // generator rather than the Lemire bounding path.
        let mut r = SmallRng::seed_from_u64(0xBEEF);
        let mut counts = [0u64; 64];
        let n = 65_536u64;
        for _ in 0..n {
            counts[(r.next_u64() >> 58) as usize] += 1;
        }
        let chi2 = chi_squared(&counts, n);
        assert!((32.0..103.4).contains(&chi2), "chi2 = {chi2}");
    }

    #[test]
    fn split_stream_is_deterministic_and_independent() {
        // Same (master, index) → same stream, regardless of when or where
        // it is derived. This is what makes the check harness's parallel
        // fan-out bit-identical at any job count.
        let a: Vec<u64> = (0..16)
            .map({
                let mut r = SmallRng::split_stream(42, 7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut r = SmallRng::split_stream(42, 7);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);

        // Different indices and different masters give unrelated streams.
        let mut c = SmallRng::split_stream(42, 8);
        let mut d = SmallRng::split_stream(43, 7);
        assert_ne!(a[0], c.next_u64());
        assert_ne!(a[0], d.next_u64());

        // A child stream is not the master's own stream.
        let mut master = SmallRng::seed_from_u64(42);
        assert_ne!(a[0], master.next_u64());
    }

    #[test]
    fn split_stream_children_look_uniform() {
        // First draws across consecutive indices of one master must
        // themselves be well distributed — the harness uses exactly this
        // shape (one child per case index).
        let mut counts = [0u64; 64];
        let n = 65_536u64;
        for i in 0..n {
            let mut child = SmallRng::split_stream(1234, i);
            counts[(child.next_u64() >> 58) as usize] += 1;
        }
        let chi2 = chi_squared(&counts, n);
        assert!((32.0..103.4).contains(&chi2), "chi2 = {chi2}");
    }

    #[test]
    fn split_derives_decorrelated_child() {
        let mut parent = SmallRng::seed_from_u64(99);
        let mut child = parent.split();
        // The child matches re-deriving from the same parent position...
        let mut parent2 = SmallRng::seed_from_u64(99);
        let mut child2 = parent2.split();
        assert_eq!(child.next_u64(), child2.next_u64());
        // ...and differs from the parent's continuing stream.
        assert_ne!(child.next_u64(), parent.next_u64());
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "permutation");
        assert!(v != (0..32).collect::<Vec<_>>(), "almost surely moved");
        let pick = *r.choose(&v);
        assert!(v.contains(&pick));
    }
}
