//! The frame constructor.
//!
//! Watches the retired micro-operation stream, converts dynamically biased
//! branches into assertions, and merges the constituent basic blocks into
//! atomic frames of 8–256 uops (the paper's configuration, §5.3).

use crate::{BiasTable, BranchOutcome, ControlExpectation, Direction, Frame, FrameId};
use replay_uop::{Cond, Opcode, Uop};
use std::collections::HashMap;

/// Configuration of the frame constructor.
#[derive(Debug, Clone)]
pub struct ConstructorConfig {
    /// Frames smaller than this many uops are discarded (paper: 8).
    pub min_uops: usize,
    /// Frames never grow beyond this many uops (paper: 256).
    pub max_uops: usize,
    /// Consecutive same-direction outcomes before a branch is biased.
    pub bias_threshold: u32,
    /// Times a start address must be seen before a frame is built there.
    pub hot_threshold: u32,
    /// Only begin frames at control-flow targets (the instruction after a
    /// taken branch, call, return, or serializing event). This keeps frame
    /// entry points stable across loop iterations — without it, frames
    /// that end at the size limit seed successors at drifting mid-block
    /// addresses and the frame cache fills with near-duplicates.
    pub align_to_control: bool,
}

impl Default for ConstructorConfig {
    fn default() -> ConstructorConfig {
        ConstructorConfig {
            min_uops: 8,
            max_uops: 256,
            bias_threshold: 8,
            hot_threshold: 2,
            align_to_control: true,
        }
    }
}

/// One retired x86 instruction, as seen by the frame constructor: its
/// address, its decode flow, and where control actually went next.
#[derive(Debug, Clone)]
pub struct RetireEvent<'a> {
    /// Instruction address.
    pub addr: u32,
    /// The instruction's uop flow (in program order).
    pub uops: &'a [Uop],
    /// Address of the next instruction actually executed.
    pub next_pc: u32,
    /// The fall-through address (`addr + length`).
    pub fallthrough: u32,
}

/// Counters describing constructor activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstructorStats {
    /// Frames successfully completed.
    pub completed: u64,
    /// Frames discarded for being under the minimum size.
    pub discarded: u64,
    /// Conditional branches converted to assertions.
    pub branches_converted: u64,
    /// Indirect jumps converted to target assertions.
    pub indirects_converted: u64,
    /// Frames ended by an unbiased conditional branch.
    pub ended_by_branch: u64,
    /// Frames ended by an unbiased indirect jump.
    pub ended_by_indirect: u64,
    /// Frames ended by reaching the uop-count limit.
    pub ended_by_size: u64,
    /// Frames ended by a serializing instruction.
    pub ended_by_fence: u64,
}

impl ConstructorStats {
    /// Records every counter under `<prefix>.<counter>` into an
    /// [`replay_obs::Obs`].
    pub fn observe_into(&self, prefix: &str, obs: &mut replay_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.counter(&format!("{prefix}.completed"), self.completed);
        obs.counter(&format!("{prefix}.discarded"), self.discarded);
        obs.counter(
            &format!("{prefix}.branches_converted"),
            self.branches_converted,
        );
        obs.counter(
            &format!("{prefix}.indirects_converted"),
            self.indirects_converted,
        );
        obs.counter(&format!("{prefix}.ended_by_branch"), self.ended_by_branch);
        obs.counter(
            &format!("{prefix}.ended_by_indirect"),
            self.ended_by_indirect,
        );
        obs.counter(&format!("{prefix}.ended_by_size"), self.ended_by_size);
        obs.counter(&format!("{prefix}.ended_by_fence"), self.ended_by_fence);
    }
}

#[derive(Debug)]
struct Pending {
    start_addr: u32,
    uops: Vec<Uop>,
    x86_addrs: Vec<u32>,
    block_starts: Vec<usize>,
    expectations: Vec<ControlExpectation>,
}

impl Pending {
    fn new(start_addr: u32) -> Pending {
        Pending {
            start_addr,
            uops: Vec::new(),
            x86_addrs: Vec::new(),
            block_starts: vec![0],
            expectations: Vec::new(),
        }
    }
}

/// Constructs atomic frames from the retired instruction stream.
///
/// Feed every retired instruction to [`FrameConstructor::retire`]; completed
/// frames are returned as they finish. In this reproduction the constructor
/// observes the *injected* (original-path) stream, which is equivalent to
/// watching retirement in a trace-driven simulator with no wrong-path
/// execution.
#[derive(Debug)]
pub struct FrameConstructor {
    cfg: ConstructorConfig,
    bias: BiasTable,
    pending: Option<Pending>,
    start_counts: HashMap<u32, u32>,
    next_id: u64,
    stats: ConstructorStats,
    /// True when the next retired instruction is a control-flow target
    /// (valid frame entry under `align_to_control`).
    aligned: bool,
}

impl FrameConstructor {
    /// Creates a constructor with the given configuration.
    pub fn new(cfg: ConstructorConfig) -> FrameConstructor {
        let bias = BiasTable::new(cfg.bias_threshold);
        FrameConstructor {
            cfg,
            bias,
            pending: None,
            start_counts: HashMap::new(),
            next_id: 0,
            stats: ConstructorStats::default(),
            aligned: true,
        }
    }

    /// Constructor activity counters.
    pub fn stats(&self) -> ConstructorStats {
        self.stats
    }

    /// Observes one retired instruction; returns a frame if one completed.
    pub fn retire(&mut self, ev: &RetireEvent<'_>) -> Option<Frame> {
        let was_aligned = self.aligned;
        self.aligned = ev.next_pc != ev.fallthrough;

        // Serializing instructions never enter frames and flush any pending
        // construction; the next instruction is a fresh boundary.
        if ev.uops.iter().any(|u| u.op == Opcode::Fence) {
            self.aligned = true;
            let done = self.finish(ev.addr, true);
            if done.is_some() {
                self.stats.ended_by_fence += 1;
            }
            return done;
        }

        if self.pending.is_none() {
            if self.cfg.align_to_control && !was_aligned {
                // Mid-block: wait for the next control-flow target so that
                // frame entry points stay stable across iterations.
                self.observe_bias(ev);
                return None;
            }
            let count = self.start_counts.entry(ev.addr).or_insert(0);
            *count = count.saturating_add(1);
            if *count < self.cfg.hot_threshold {
                // Still warming up; keep feeding the bias table so branches
                // become biased before construction begins.
                self.observe_bias(ev);
                return None;
            }
            self.pending = Some(Pending::new(ev.addr));
        }

        // Would this instruction overflow the frame? Finish first; under
        // aligned construction the next frame waits for a control target,
        // otherwise the current instruction seeds it immediately.
        let flow_len = ev.uops.len();
        let cur_len = self.pending.as_ref().map_or(0, |p| p.uops.len());
        if cur_len + flow_len > self.cfg.max_uops && cur_len > 0 {
            let done = self.finish(ev.addr, false);
            if done.is_some() {
                self.stats.ended_by_size += 1;
            }
            if self.cfg.align_to_control {
                self.observe_bias(ev);
            } else {
                self.pending = Some(Pending::new(ev.addr));
                let _ = self.append(ev);
            }
            return done;
        }

        if self.append(ev) {
            // The instruction ended the frame (unbiased control transfer).
            return self.finish(ev.next_pc, false);
        }
        None
    }

    /// Flushes any pending frame (e.g. at end of trace).
    pub fn flush(&mut self) -> Option<Frame> {
        // The exit address of a flushed frame is unknown; use the address
        // after the last covered instruction.
        self.finish(0, false)
    }

    /// Updates the bias table for an event without constructing.
    fn observe_bias(&mut self, ev: &RetireEvent<'_>) {
        for u in ev.uops {
            match u.op {
                Opcode::Br => {
                    let taken = ev.next_pc == u.target;
                    self.bias
                        .record(ev.addr, BranchOutcome::Conditional { taken });
                }
                Opcode::JmpInd => {
                    self.bias
                        .record(ev.addr, BranchOutcome::Indirect { target: ev.next_pc });
                }
                _ => {}
            }
        }
    }

    /// Appends an instruction's flow to the pending frame, transforming
    /// control uops. Returns `true` if the frame must end after this
    /// instruction.
    fn append(&mut self, ev: &RetireEvent<'_>) -> bool {
        let mut ends = false;
        // Collect transformed uops first to avoid holding a mutable borrow
        // of `pending` across bias-table updates.
        let mut transformed: Vec<(
            Uop,
            bool, /*block boundary after*/
            bool, /*expectation*/
        )> = Vec::with_capacity(ev.uops.len());
        for u in ev.uops {
            match u.op {
                Opcode::Br => {
                    let cc = u.cc.expect("Br carries a condition");
                    let taken = ev.next_pc == u.target;
                    let biased = self
                        .bias
                        .record(ev.addr, BranchOutcome::Conditional { taken });
                    if biased {
                        // Paper §3.3: the branch becomes an assertion on the
                        // condition that keeps execution on the frame path.
                        let cond = if taken { cc } else { cc.negate() };
                        let mut a = Uop::assert_cc(cond);
                        a.x86_addr = u.x86_addr;
                        a.last_of_x86 = u.last_of_x86;
                        transformed.push((a, true, true));
                        self.stats.branches_converted += 1;
                    } else {
                        transformed.push((u.clone(), false, false));
                        self.stats.ended_by_branch += 1;
                        ends = true;
                    }
                }
                Opcode::JmpInd => {
                    let target = ev.next_pc;
                    // Indirect targets must be *very* stable before they
                    // are asserted: a mispredicted target assertion costs a
                    // whole-frame rollback, so require twice the
                    // conditional-branch run length.
                    let run = self
                        .bias
                        .record_run(ev.addr, BranchOutcome::Indirect { target });
                    let matches_bias = run >= self.cfg.bias_threshold * 2
                        && self.bias.bias(ev.addr) == Some(Direction::Indirect { target });
                    if matches_bias {
                        let reg = u.src_a.expect("JmpInd reads a register");
                        let mut a = Uop::assert_cmp(Cond::Eq, reg, None, target as i32);
                        a.x86_addr = u.x86_addr;
                        a.last_of_x86 = u.last_of_x86;
                        transformed.push((a, true, true));
                        self.stats.indirects_converted += 1;
                    } else {
                        transformed.push((u.clone(), false, false));
                        self.stats.ended_by_indirect += 1;
                        ends = true;
                    }
                }
                Opcode::Jmp => {
                    // Unconditional direct jumps stay in the frame (NOP
                    // removal deletes them later); a new block begins at the
                    // target.
                    transformed.push((u.clone(), true, false));
                }
                _ => transformed.push((u.clone(), false, false)),
            }
        }

        let pending = self
            .pending
            .as_mut()
            .expect("append requires a pending frame");
        pending.x86_addrs.push(ev.addr);
        for (uop, boundary_after, expectation) in transformed {
            let idx = pending.uops.len();
            if expectation {
                pending.expectations.push(ControlExpectation {
                    x86_addr: ev.addr,
                    expected_next: ev.next_pc,
                    uop_index: idx,
                });
            }
            pending.uops.push(uop);
            if boundary_after {
                pending.block_starts.push(idx + 1);
            }
        }
        ends
    }

    /// Completes the pending frame, discarding it if below the minimum
    /// size.
    fn finish(&mut self, exit_next: u32, _fence: bool) -> Option<Frame> {
        let pending = self.pending.take()?;
        if pending.uops.len() < self.cfg.min_uops {
            self.stats.discarded += 1;
            return None;
        }
        // Drop a trailing empty block (boundary emitted after the last uop).
        let mut block_starts = pending.block_starts;
        if block_starts.last() == Some(&pending.uops.len()) {
            block_starts.pop();
        }
        let id = FrameId(self.next_id);
        self.next_id += 1;
        self.stats.completed += 1;
        let orig = pending.uops.len();
        Some(Frame {
            id,
            start_addr: pending.start_addr,
            uops: pending.uops,
            x86_addrs: pending.x86_addrs,
            block_starts,
            expectations: pending.expectations,
            exit_next,
            orig_uop_count: orig,
        })
    }
}

impl Default for FrameConstructor {
    fn default() -> FrameConstructor {
        FrameConstructor::new(ConstructorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_uop::ArchReg;

    /// Builds a retire event for a single-uop ALU instruction.
    fn alu_ev(addr: u32, uops: &[Uop]) -> RetireEvent<'_> {
        RetireEvent {
            addr,
            uops,
            next_pc: addr + 1,
            fallthrough: addr + 1,
        }
    }

    fn cfg(min: usize, max: usize, bias: u32, hot: u32) -> ConstructorConfig {
        ConstructorConfig {
            min_uops: min,
            max_uops: max,
            bias_threshold: bias,
            hot_threshold: hot,
            align_to_control: false,
        }
    }

    #[test]
    fn biased_branch_becomes_assert() {
        let mut c = FrameConstructor::new(cfg(1, 64, 2, 1));
        let add = [Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1).ending_x86()];
        let br = [Uop::br(Cond::Eq, 0x100).ending_x86()];
        // Warm the bias table: two taken outcomes at PC 0x10.
        for round in 0..3 {
            c.retire(&alu_ev(0x0, &add));
            let ev = RetireEvent {
                addr: 0x10,
                uops: &br,
                next_pc: 0x100,
                fallthrough: 0x16,
            };
            let frame = c.retire(&ev);
            if round < 1 {
                // Not yet biased: branch ends the frame, branch uop kept.
                let f = frame.expect("frame completes at unbiased branch");
                assert_eq!(f.uops.last().unwrap().op, Opcode::Br);
                assert!(f.expectations.is_empty());
            } else {
                // Biased now: the frame continues; nothing returned yet.
                assert!(frame.is_none(), "round {round}");
            }
            // Jump back to 0x0 happens implicitly in this synthetic stream.
        }
        // End the pending frame and inspect the assert.
        let f = c.flush().expect("pending frame with asserts");
        let asserts: Vec<_> = f
            .uops
            .iter()
            .enumerate()
            .filter(|(_, u)| u.op.is_assert())
            .collect();
        assert!(!asserts.is_empty());
        assert_eq!(asserts[0].1.cc, Some(Cond::Eq), "taken-biased keeps cc");
        assert_eq!(f.expectations.len(), asserts.len());
        assert_eq!(f.expectations[0].expected_next, 0x100);
    }

    #[test]
    fn not_taken_bias_negates_condition() {
        let mut c = FrameConstructor::new(cfg(1, 64, 1, 1));
        let br = [Uop::br(Cond::Eq, 0x100).ending_x86()];
        let ev = RetireEvent {
            addr: 0x10,
            uops: &br,
            next_pc: 0x16, // fall through => not taken
            fallthrough: 0x16,
        };
        assert!(c.retire(&ev).is_none(), "biased immediately at threshold 1");
        let f = c.flush().unwrap();
        assert_eq!(f.uops[0].op, Opcode::Assert);
        assert_eq!(f.uops[0].cc, Some(Cond::Ne), "NOT-taken bias asserts !cc");
    }

    #[test]
    fn biased_indirect_becomes_assert_cmp() {
        let mut c = FrameConstructor::new(cfg(1, 64, 2, 1));
        let jmp = [Uop::jmp_ind(ArchReg::Et2).ending_x86()];
        let ev = RetireEvent {
            addr: 0x20,
            uops: &jmp,
            next_pc: 0x400,
            fallthrough: 0x21,
        };
        // Indirect conversion needs 2x the conditional threshold (4 runs).
        // The first observations end frames with the jump as exit uop.
        let f = c.retire(&ev).expect("unbiased indirect ends the frame");
        assert_eq!(f.uops[0].op, Opcode::JmpInd);
        for _ in 0..2 {
            let f = c.retire(&ev).expect("still below the indirect threshold");
            assert_eq!(f.uops[0].op, Opcode::JmpInd);
        }
        // Fourth observation: run reaches 4 = 2x threshold; converted.
        assert!(c.retire(&ev).is_none());
        let f = c.flush().unwrap();
        assert_eq!(f.uops[0].op, Opcode::AssertCmp);
        assert_eq!(f.uops[0].imm, 0x400);
        assert_eq!(f.uops[0].src_a, Some(ArchReg::Et2));
        assert_eq!(c.stats().indirects_converted, 1);
    }

    #[test]
    fn size_limit_splits_frames() {
        let mut c = FrameConstructor::new(cfg(1, 4, 8, 1));
        let add = [
            Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1),
            Uop::alu_imm(Opcode::Add, ArchReg::Ebx, ArchReg::Ebx, 1).ending_x86(),
        ];
        assert!(c.retire(&alu_ev(0, &add)).is_none());
        assert!(c.retire(&alu_ev(1, &add)).is_none()); // frame now full (4)
        let f = c
            .retire(&alu_ev(2, &add))
            .expect("overflow completes frame");
        assert_eq!(f.uop_count(), 4);
        assert_eq!(f.x86_count(), 2);
        assert_eq!(f.exit_next, 2, "exits to the instruction that overflowed");
        // The overflowing instruction seeded the next frame.
        let f2 = c.flush().unwrap();
        assert_eq!(f2.start_addr, 2);
        assert_eq!(c.stats().ended_by_size, 1);
    }

    #[test]
    fn fence_flushes_and_is_excluded() {
        let mut c = FrameConstructor::new(cfg(1, 64, 8, 1));
        let add = [Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1).ending_x86()];
        let fence = [Uop::fence().ending_x86()];
        c.retire(&alu_ev(0, &add));
        let f = c.retire(&alu_ev(1, &fence)).expect("fence completes frame");
        assert_eq!(f.uop_count(), 1);
        assert!(f.uops.iter().all(|u| u.op != Opcode::Fence));
        assert_eq!(c.stats().ended_by_fence, 1);
    }

    #[test]
    fn small_frames_discarded() {
        let mut c = FrameConstructor::new(cfg(8, 64, 8, 1));
        let add = [Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1).ending_x86()];
        c.retire(&alu_ev(0, &add));
        assert!(c.flush().is_none());
        assert_eq!(c.stats().discarded, 1);
    }

    #[test]
    fn hot_threshold_delays_construction() {
        let mut c = FrameConstructor::new(cfg(1, 64, 8, 3));
        let add = [Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1).ending_x86()];
        // Address 0 must be seen 3 times before a frame starts there.
        c.retire(&alu_ev(0, &add));
        assert!(c.flush().is_none(), "no pending after first sight");
        c.retire(&alu_ev(0, &add));
        assert!(c.flush().is_none());
        c.retire(&alu_ev(0, &add));
        let f = c.flush();
        assert!(f.is_some(), "third sight constructs");
    }

    #[test]
    fn block_boundaries_after_converted_branches() {
        let mut c = FrameConstructor::new(cfg(1, 64, 1, 1));
        let add = [Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1).ending_x86()];
        let br = [Uop::br(Cond::Ne, 0x50).ending_x86()];
        c.retire(&alu_ev(0, &add));
        c.retire(&RetireEvent {
            addr: 1,
            uops: &br,
            next_pc: 0x50,
            fallthrough: 2,
        });
        c.retire(&alu_ev(0x50, &add));
        let f = c.flush().unwrap();
        assert_eq!(f.block_starts, vec![0, 2]);
        assert_eq!(f.block_count(), 2);
        assert_eq!(f.block_of(1), 0);
        assert_eq!(f.block_of(2), 1);
    }
}
