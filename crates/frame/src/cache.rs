//! The frame cache.

use crate::Frame;
use replay_obs::Obs;
use std::collections::HashMap;

/// Hit/miss counters for the frame cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a frame.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Frames inserted.
    pub inserts: u64,
    /// Inserts that replaced a resident frame with the same entry address
    /// (not counted as evictions — no capacity pressure was involved).
    pub replacements: u64,
    /// Frames removed by explicit invalidation (the engine invalidates a
    /// frame's cache entry when one of its assertions aborts).
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups have occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Records every counter under `<prefix>.<counter>` into an [`Obs`].
    pub fn observe_into(&self, prefix: &str, obs: &mut Obs) {
        if !obs.enabled() {
            return;
        }
        obs.counter(&format!("{prefix}.hits"), self.hits);
        obs.counter(&format!("{prefix}.misses"), self.misses);
        obs.counter(&format!("{prefix}.evictions"), self.evictions);
        obs.counter(&format!("{prefix}.inserts"), self.inserts);
        obs.counter(&format!("{prefix}.replacements"), self.replacements);
        obs.counter(&format!("{prefix}.invalidations"), self.invalidations);
    }
}

/// Something the [`FrameCache`] can store: any frame-like object with an
/// entry address and a size in uop slots.
///
/// Implemented by [`Frame`]; the simulator also implements it for optimized
/// frames, whose smaller `slot_cost` is what increases effective cache
/// capacity under optimization (§6.1).
pub trait CacheEntry {
    /// The x86 entry address the frame is indexed by.
    fn entry_addr(&self) -> u32;
    /// The number of uop slots the frame occupies in the cache.
    fn slot_cost(&self) -> usize;
}

impl CacheEntry for Frame {
    fn entry_addr(&self) -> u32 {
        self.start_addr
    }
    fn slot_cost(&self) -> usize {
        self.uop_count()
    }
}

/// Shared frames are cacheable too: the simulator stores `Arc`-wrapped
/// entries so a cache hit is a reference-count bump rather than a deep
/// clone of the frame's uop vectors.
impl<T: CacheEntry + ?Sized> CacheEntry for std::sync::Arc<T> {
    fn entry_addr(&self) -> u32 {
        (**self).entry_addr()
    }
    fn slot_cost(&self) -> usize {
        (**self).slot_cost()
    }
}

#[derive(Debug)]
struct Slot<T> {
    frame: T,
    last_use: u64,
}

/// An on-chip cache of constructed frames, indexed by entry address.
///
/// Capacity is measured in **uop slots**, matching the paper's "16K
/// micro-operations (approximately 64 kB)" configuration: an optimized frame
/// occupies fewer slots than its unoptimized form, so optimization increases
/// the cache's effective capacity (§6.1). Replacement is LRU; inserting a
/// frame whose entry address is already present replaces the old frame.
#[derive(Debug)]
pub struct FrameCache<T = Frame> {
    capacity_uops: usize,
    used_uops: usize,
    slots: HashMap<u32, Slot<T>>,
    clock: u64,
    stats: CacheStats,
}

impl<T: CacheEntry> FrameCache<T> {
    /// Creates a cache holding at most `capacity_uops` uop slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_uops` is zero.
    pub fn new(capacity_uops: usize) -> FrameCache<T> {
        assert!(capacity_uops > 0, "capacity must be positive");
        FrameCache {
            capacity_uops,
            used_uops: 0,
            slots: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured capacity in uop slots.
    pub fn capacity_uops(&self) -> usize {
        self.capacity_uops
    }

    /// Uop slots currently occupied.
    pub fn used_uops(&self) -> usize {
        self.used_uops
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no frames are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lookup statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Inserts a frame, evicting least-recently-used frames as needed.
    ///
    /// Frames larger than the whole cache are rejected (returns `false`).
    pub fn insert(&mut self, frame: T) -> bool {
        let size = frame.slot_cost();
        if size > self.capacity_uops {
            return false;
        }
        if let Some(old) = self.slots.remove(&frame.entry_addr()) {
            self.used_uops -= old.frame.slot_cost();
            self.stats.replacements += 1;
        }
        while self.used_uops + size > self.capacity_uops {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(addr, _)| *addr)
                .expect("cache non-empty while over capacity");
            let old = self.slots.remove(&victim).expect("victim present");
            self.used_uops -= old.frame.slot_cost();
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.slots.insert(
            frame.entry_addr(),
            Slot {
                frame,
                last_use: self.clock,
            },
        );
        self.used_uops += size;
        self.stats.inserts += 1;
        true
    }

    /// Looks up a frame by entry address, refreshing its LRU position.
    pub fn lookup(&mut self, addr: u32) -> Option<&T> {
        self.clock += 1;
        match self.slots.get_mut(&addr) {
            Some(slot) => {
                slot.last_use = self.clock;
                self.stats.hits += 1;
                Some(&slot.frame)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks residency without touching LRU state or statistics.
    pub fn peek(&self, addr: u32) -> Option<&T> {
        self.slots.get(&addr).map(|s| &s.frame)
    }

    /// Removes a frame by entry address.
    pub fn invalidate(&mut self, addr: u32) -> Option<T> {
        let slot = self.slots.remove(&addr)?;
        self.used_uops -= slot.frame.slot_cost();
        self.stats.invalidations += 1;
        Some(slot.frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameId;
    use replay_uop::{ArchReg, Opcode, Uop};

    fn frame(addr: u32, n_uops: usize) -> Frame {
        Frame {
            id: FrameId(addr as u64),
            start_addr: addr,
            uops: vec![Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1); n_uops],
            x86_addrs: vec![addr],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: addr + 1,
            orig_uop_count: n_uops,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = FrameCache::new(100);
        assert!(c.insert(frame(0x10, 20)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_uops(), 20);
        assert!(c.lookup(0x10).is_some());
        assert!(c.lookup(0x20).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_by_uop_capacity() {
        let mut c = FrameCache::new(50);
        c.insert(frame(1, 20));
        c.insert(frame(2, 20));
        // Touch frame 1 so frame 2 is LRU.
        c.lookup(1);
        // 20 + 20 + 20 > 50: one eviction needed; victim must be frame 2.
        c.insert(frame(3, 20));
        assert!(c.peek(1).is_some());
        assert!(c.peek(2).is_none());
        assert!(c.peek(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.used_uops(), 40);
    }

    #[test]
    fn same_address_replaces() {
        let mut c = FrameCache::new(100);
        c.insert(frame(5, 30));
        // A smaller (optimized) frame replaces the old one and frees slots.
        c.insert(frame(5, 10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_uops(), 10);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().replacements, 1);
        assert_eq!(c.stats().inserts, 2);
    }

    #[test]
    fn repeated_reinsertion_does_not_leak_slots() {
        // Re-inserting the same entry address many times must keep
        // used_uops exact: the old cost is refunded every time.
        let mut c = FrameCache::new(100);
        for round in 0..50 {
            // Alternate sizes so a stale-cost bug cannot cancel out.
            let size = if round % 2 == 0 { 30 } else { 7 };
            assert!(c.insert(frame(5, size)));
            assert_eq!(c.len(), 1);
            assert_eq!(c.used_uops(), size);
        }
        assert_eq!(c.stats().inserts, 50);
        assert_eq!(c.stats().replacements, 49);
        // No capacity pressure ever arose, so no evictions were charged.
        assert_eq!(c.stats().evictions, 0);
        // The cache still has its full capacity available for others.
        assert!(c.insert(frame(6, 93)));
        assert_eq!(c.used_uops(), 100);
    }

    #[test]
    fn reinsertion_grow_evicts_exactly_as_needed() {
        // Growing a resident entry refunds the old cost first, then evicts
        // strictly by LRU until the new size fits — and each eviction is
        // counted exactly once.
        let mut c = FrameCache::new(60);
        c.insert(frame(1, 20));
        c.insert(frame(2, 20));
        c.insert(frame(3, 20));
        // Refresh 1 and 3; frame 2 is now LRU.
        c.lookup(1);
        c.lookup(3);
        // Growing frame 1 from 20 to 40 uops: refund 20, need 40 into the
        // 20 free -> evict exactly one frame (the LRU, #2).
        assert!(c.insert(frame(1, 40)));
        assert_eq!(c.stats().replacements, 1);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.peek(2).is_none(), "LRU frame 2 evicted");
        assert!(c.peek(3).is_some(), "frame 3 survives");
        assert_eq!(c.used_uops(), 60);
        // Accounting stays exact after the churn: drop everything.
        c.invalidate(1);
        c.invalidate(3);
        assert_eq!(c.used_uops(), 0);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut c = FrameCache::new(10);
        assert!(!c.insert(frame(1, 11)));
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_frees_space() {
        let mut c = FrameCache::new(10);
        c.insert(frame(1, 10));
        assert_eq!(c.invalidate(1).map(|f| f.start_addr), Some(1));
        assert_eq!(c.used_uops(), 0);
        assert!(c.invalidate(1).is_none());
    }

    #[test]
    fn hit_rate() {
        let mut c = FrameCache::new(100);
        c.insert(frame(1, 1));
        c.lookup(1);
        c.lookup(2);
        c.lookup(1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(FrameCache::<Frame>::new(1).stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FrameCache::<Frame>::new(0);
    }
}
