//! The atomic frame.

use replay_uop::Uop;
use std::fmt;

/// Identifier of a constructed frame, unique within one constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// A control point embedded in a frame, used by the trace-driven simulator
/// to decide whether a dynamic execution of the frame matches the path the
/// frame embodies.
///
/// When the frame was constructed, the instruction at `x86_addr` transferred
/// control to `expected_next`. On a later fetch of the frame, if the traced
/// execution resolves this control point differently, the assertion at
/// `uop_index` fires and the frame rolls back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlExpectation {
    /// Address of the original control-transfer x86 instruction.
    pub x86_addr: u32,
    /// The next-PC the frame's path assumes.
    pub expected_next: u32,
    /// Index of the corresponding assertion uop in [`Frame::uops`].
    pub uop_index: usize,
}

/// An atomic, single-entry, single-exit region of micro-operations.
///
/// All control dependencies inside the frame have been removed: biased
/// conditional branches have become `Assert` uops, biased indirect jumps
/// have become `AssertCmp` uops against their dominant target, and the frame
/// commits atomically (all or nothing). The final uop may be an ordinary
/// branch — that branch is the frame's unique exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame identity.
    pub id: FrameId,
    /// x86 address of the frame's entry (first covered instruction).
    pub start_addr: u32,
    /// The frame body. For an unoptimized frame this is the concatenation
    /// of the covered instructions' decode flows with branches converted to
    /// assertions.
    pub uops: Vec<Uop>,
    /// Addresses of the x86 instructions the frame covers, in path order.
    pub x86_addrs: Vec<u32>,
    /// Uop indices at which a new basic block begins (always starts
    /// with 0). Used for block-scope optimization experiments.
    pub block_starts: Vec<usize>,
    /// Embedded control points (one per assertion).
    pub expectations: Vec<ControlExpectation>,
    /// The address execution continues at when the frame completes without
    /// firing an assertion (the frame-construction-time observation).
    pub exit_next: u32,
    /// Number of uops before any optimization (for removal statistics).
    pub orig_uop_count: usize,
}

impl Frame {
    /// Number of x86 instructions the frame covers.
    pub fn x86_count(&self) -> usize {
        self.x86_addrs.len()
    }

    /// Number of uops currently in the frame.
    pub fn uop_count(&self) -> usize {
        self.uops.len()
    }

    /// Number of basic blocks merged into the frame.
    pub fn block_count(&self) -> usize {
        self.block_starts.len()
    }

    /// Number of load uops currently in the frame.
    pub fn load_count(&self) -> usize {
        self.uops.iter().filter(|u| u.is_load()).count()
    }

    /// The basic-block index of the uop at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn block_of(&self, idx: usize) -> usize {
        assert!(idx < self.uops.len(), "uop index out of range");
        match self.block_starts.binary_search(&idx) {
            Ok(b) => b,
            Err(b) => b - 1,
        }
    }

    /// Renders the frame as one uop per line, in the paper's notation.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, u) in self.uops.iter().enumerate() {
            let _ = writeln!(s, "{i:02} {u}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_uop::{ArchReg, Cond};

    fn sample() -> Frame {
        Frame {
            id: FrameId(1),
            start_addr: 0x1000,
            uops: vec![
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
                Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
                Uop::assert_cc(Cond::Eq),
                Uop::load(ArchReg::Ebx, ArchReg::Esp, 0),
            ],
            x86_addrs: vec![0x1000, 0x1001, 0x1007],
            block_starts: vec![0, 3],
            expectations: vec![ControlExpectation {
                x86_addr: 0x1001,
                expected_next: 0x1007,
                uop_index: 2,
            }],
            exit_next: 0x1010,
            orig_uop_count: 4,
        }
    }

    #[test]
    fn counts() {
        let f = sample();
        assert_eq!(f.x86_count(), 3);
        assert_eq!(f.uop_count(), 4);
        assert_eq!(f.block_count(), 2);
        assert_eq!(f.load_count(), 1);
    }

    #[test]
    fn block_of_maps_uops_to_blocks() {
        let f = sample();
        assert_eq!(f.block_of(0), 0);
        assert_eq!(f.block_of(2), 0);
        assert_eq!(f.block_of(3), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_of_out_of_range() {
        sample().block_of(4);
    }

    #[test]
    fn listing_is_numbered() {
        let l = sample().listing();
        assert!(l.starts_with("00 [ESP - 04H] <- EBP"));
        assert!(l.contains("02 assert Z"));
    }
}
