//! Branch bias tracking.
//!
//! The frame constructor only converts a branch into an assertion when the
//! branch is *dynamically biased*: it has recently resolved in the same
//! direction many times in a row. The bias table tracks, per branch PC, the
//! current dominant direction and a saturating run length; indirect jumps
//! track their dominant target address the same way.

use std::collections::HashMap;

/// The resolved outcome of one dynamic branch instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOutcome {
    /// A conditional branch resolved taken or not-taken.
    Conditional {
        /// True if the branch was taken.
        taken: bool,
    },
    /// An indirect jump resolved to a target address.
    Indirect {
        /// The resolved target.
        target: u32,
    },
}

/// A branch's dominant direction, once established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Conditional branch biased taken or not-taken.
    Conditional {
        /// The dominant direction.
        taken: bool,
    },
    /// Indirect jump biased toward one target.
    Indirect {
        /// The dominant target.
        target: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    direction: Direction,
    run: u32,
}

/// Tracks per-PC branch bias with saturating run counters.
///
/// An entry becomes *biased* once its current direction has repeated
/// `threshold` times consecutively; any disagreement resets the run to 1 in
/// the new direction.
#[derive(Debug, Clone)]
pub struct BiasTable {
    entries: HashMap<u32, Entry>,
    threshold: u32,
    max_run: u32,
}

impl BiasTable {
    /// Creates a table where a branch is biased after `threshold`
    /// consecutive same-direction outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32) -> BiasTable {
        assert!(threshold > 0, "threshold must be positive");
        BiasTable {
            entries: HashMap::new(),
            threshold,
            max_run: threshold.saturating_mul(4),
        }
    }

    /// Records an outcome for the branch at `pc` and reports whether the
    /// branch is biased *in the direction of this outcome* — i.e. whether
    /// the frame constructor may convert this instance into an assertion.
    pub fn record(&mut self, pc: u32, outcome: BranchOutcome) -> bool {
        self.record_run(pc, outcome) >= self.threshold
    }

    /// Like [`BiasTable::record`], but returns the current same-direction
    /// run length, letting callers apply stricter thresholds (e.g. for
    /// indirect-target conversion).
    pub fn record_run(&mut self, pc: u32, outcome: BranchOutcome) -> u32 {
        let dir = match outcome {
            BranchOutcome::Conditional { taken } => Direction::Conditional { taken },
            BranchOutcome::Indirect { target } => Direction::Indirect { target },
        };
        let entry = self.entries.entry(pc).or_insert(Entry {
            direction: dir,
            run: 0,
        });
        if entry.direction == dir {
            entry.run = (entry.run + 1).min(self.max_run);
        } else {
            entry.direction = dir;
            entry.run = 1;
        }
        entry.run
    }

    /// The configured bias threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The currently established bias of the branch at `pc`, if it has
    /// reached the threshold.
    pub fn bias(&self, pc: u32) -> Option<Direction> {
        self.entries
            .get(&pc)
            .filter(|e| e.run >= self.threshold)
            .map(|e| e.direction)
    }

    /// Number of tracked branch PCs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no branches are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for BiasTable {
    /// A table with the threshold used throughout the evaluation (8).
    fn default() -> BiasTable {
        BiasTable::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn becomes_biased_after_threshold() {
        let mut t = BiasTable::new(3);
        assert!(!t.record(0x10, BranchOutcome::Conditional { taken: true }));
        assert!(!t.record(0x10, BranchOutcome::Conditional { taken: true }));
        assert!(t.record(0x10, BranchOutcome::Conditional { taken: true }));
        assert_eq!(t.bias(0x10), Some(Direction::Conditional { taken: true }));
    }

    #[test]
    fn disagreement_resets() {
        let mut t = BiasTable::new(2);
        t.record(0x10, BranchOutcome::Conditional { taken: true });
        assert!(t.record(0x10, BranchOutcome::Conditional { taken: true }));
        // Flip direction: run restarts.
        assert!(!t.record(0x10, BranchOutcome::Conditional { taken: false }));
        assert_eq!(t.bias(0x10), None);
        assert!(t.record(0x10, BranchOutcome::Conditional { taken: false }));
        assert_eq!(t.bias(0x10), Some(Direction::Conditional { taken: false }));
    }

    #[test]
    fn indirect_targets_tracked() {
        let mut t = BiasTable::new(2);
        t.record(0x20, BranchOutcome::Indirect { target: 0x100 });
        assert!(t.record(0x20, BranchOutcome::Indirect { target: 0x100 }));
        // A different target is a different direction.
        assert!(!t.record(0x20, BranchOutcome::Indirect { target: 0x200 }));
    }

    #[test]
    fn pcs_are_independent() {
        let mut t = BiasTable::new(1);
        assert!(t.record(0x1, BranchOutcome::Conditional { taken: true }));
        assert_eq!(t.bias(0x2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn conditional_and_indirect_do_not_mix() {
        let mut t = BiasTable::new(2);
        t.record(0x5, BranchOutcome::Conditional { taken: true });
        t.record(0x5, BranchOutcome::Conditional { taken: true });
        assert!(t.bias(0x5).is_some());
        // Same PC observed as indirect (cannot happen in practice, but must
        // not panic): treated as a direction change.
        assert!(!t.record(0x5, BranchOutcome::Indirect { target: 9 }));
        assert_eq!(t.bias(0x5), None);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        BiasTable::new(0);
    }
}
