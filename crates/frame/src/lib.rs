//! # replay-frame
//!
//! The rePLay *frame* substrate (§2 of the paper): construction of atomic
//! optimization regions from the retired instruction stream, and the frame
//! cache that serves them to the fetch engine.
//!
//! A **frame** is an atomic, single-entry, single-exit region of
//! micro-operations. The [`FrameConstructor`] watches retired instructions,
//! tracks branch bias in a [`BiasTable`], and converts *dynamically biased*
//! branches into **assertions**: a taken-biased branch `if (Z) jump T`
//! becomes `assert Z`, and the blocks at `T` are merged into the frame.
//! Either every uop in the frame commits, or (when an assertion fires) none
//! do — the hardware rolls back to the frame entry and refetches the
//! original instructions.
//!
//! Biased *indirect* jumps (notably `RET`) are converted into fused
//! compare-assertions against their dominant target, which is what allows
//! frames to span procedure boundaries and exposes the return-address loads
//! of `CALL`/`RET` pairs to the optimizer.
//!
//! The [`FrameCache`] stores constructed (and, in the optimizing
//! configurations, optimized) frames on chip, indexed by entry address, with
//! LRU replacement measured in uop slots — the paper's configuration holds
//! 16K uops (≈64 kB).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bias;
mod cache;
mod constructor;
mod frame;

pub use bias::{BiasTable, BranchOutcome, Direction};
pub use cache::{CacheEntry, CacheStats, FrameCache};
pub use constructor::{ConstructorConfig, ConstructorStats, FrameConstructor, RetireEvent};
pub use frame::{ControlExpectation, Frame, FrameId};
