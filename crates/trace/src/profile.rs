//! Statistical workload profiles — the fitting target of `replay-clone`.
//!
//! A [`StatProfile`] condenses a trace into a small fixed vector of
//! behavioral dimensions: the nine-class instruction mix, branch bias,
//! load redundancy, store aliasing, and call depth. Two traces with close
//! profiles exercise the rePLay pipeline similarly — the same
//! assertion-conversion rate, the same CSE opportunity, the same
//! speculative-store risk — which is what makes the profile a usable
//! *fitting target*: the cloning subsystem searches generator-parameter
//! space until the synthesized trace's profile lands within tolerance of
//! the target's (MicroGrad-style workload cloning).
//!
//! Every dimension is normalized to roughly `[0, 1]` so the unweighted
//! Euclidean [`StatProfile::distance`] treats them comparably.

use crate::stats::{InstClass, TraceStats};
use crate::Trace;
use replay_x86::Inst;
use std::collections::{HashMap, VecDeque};

/// How many recent memory transactions the load-redundancy window spans.
///
/// A load counts as *redundant* when its address appeared among the last
/// `REDUNDANCY_WINDOW` transactions — an architecture-independent proxy
/// for the forwarding/CSE opportunity the optimizer can actually harvest
/// within a frame-sized region.
pub const REDUNDANCY_WINDOW: usize = 256;

/// Normalization divisor for mean call depth: synthetic workloads nest at
/// most a few calls deep, so depth/4 keeps the dimension in `[0, 1]`.
const CALL_DEPTH_SCALE: f64 = 4.0;

/// Number of scalar dimensions in a profile (9 mix classes + 4 behavioral
/// rates).
pub const PROFILE_DIMS: usize = 13;

/// A workload's statistical profile: the target vector `replay-clone`
/// fits against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatProfile {
    /// Instruction-mix fractions, in [`InstClass::ALL`] order.
    pub mix: [f64; 9],
    /// Execution-weighted fraction of conditional-branch executions that
    /// follow their static branch's dominant direction (1.0 = perfectly
    /// biased, 0.5 = coin flips).
    pub branch_bias: f64,
    /// Fraction of load transactions whose address occurred within the
    /// last [`REDUNDANCY_WINDOW`] memory transactions.
    pub load_redundancy: f64,
    /// Fraction of store transactions landing on an address written by
    /// more than one static instruction — the aliasing that defeats
    /// speculative store forwarding.
    pub alias_rate: f64,
    /// Mean call-nesting depth, divided by 4 to normalize.
    pub call_depth: f64,
}

impl StatProfile {
    /// Measures the profile of a trace. Safe on an empty trace (all
    /// dimensions zero).
    pub fn measure(trace: &Trace) -> StatProfile {
        let stats = TraceStats::of(trace);
        let mut mix = [0.0f64; 9];
        for (slot, class) in mix.iter_mut().zip(InstClass::ALL) {
            *slot = stats.mix_fraction(class);
        }

        // Branch bias: dominant-direction executions over all executions.
        let mut per_branch: HashMap<u32, (usize, usize)> = HashMap::new();
        for r in trace.records() {
            if let Some(taken) = r.taken() {
                let e = per_branch.entry(r.addr).or_insert((0, 0));
                if taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let mut dominant = 0usize;
        let mut execs = 0usize;
        for (t, n) in per_branch.values() {
            dominant += t.max(n);
            execs += t + n;
        }
        let branch_bias = if execs == 0 {
            0.0
        } else {
            dominant as f64 / execs as f64
        };

        // Load redundancy: sliding window of recent transaction addresses.
        let mut window: VecDeque<u32> = VecDeque::with_capacity(REDUNDANCY_WINDOW + 1);
        let mut in_window: HashMap<u32, usize> = HashMap::new();
        let push = |window: &mut VecDeque<u32>, in_window: &mut HashMap<u32, usize>, a: u32| {
            window.push_back(a);
            *in_window.entry(a).or_insert(0) += 1;
            if window.len() > REDUNDANCY_WINDOW {
                let old = window.pop_front().expect("window non-empty");
                if let Some(c) = in_window.get_mut(&old) {
                    *c -= 1;
                    if *c == 0 {
                        in_window.remove(&old);
                    }
                }
            }
        };
        let mut loads = 0usize;
        let mut redundant = 0usize;
        for r in trace.records() {
            for (a, _) in &r.mem_reads {
                if in_window.contains_key(a) {
                    redundant += 1;
                }
                loads += 1;
                push(&mut window, &mut in_window, *a);
            }
            for (a, _) in &r.mem_writes {
                push(&mut window, &mut in_window, *a);
            }
        }
        let load_redundancy = if loads == 0 {
            0.0
        } else {
            redundant as f64 / loads as f64
        };

        // Alias rate: stores to addresses written by >1 static PC.
        let mut writer: HashMap<u32, (u32, bool)> = HashMap::new();
        for r in trace.records() {
            for (a, _) in &r.mem_writes {
                let e = writer.entry(*a).or_insert((r.addr, false));
                if e.0 != r.addr {
                    e.1 = true;
                }
            }
        }
        let mut stores = 0usize;
        let mut aliased = 0usize;
        for r in trace.records() {
            for (a, _) in &r.mem_writes {
                stores += 1;
                if writer.get(a).is_some_and(|(_, multi)| *multi) {
                    aliased += 1;
                }
            }
        }
        let alias_rate = if stores == 0 {
            0.0
        } else {
            aliased as f64 / stores as f64
        };

        // Mean call depth across the dynamic stream.
        let mut depth = 0u64;
        let mut depth_sum = 0u64;
        for r in trace.records() {
            depth_sum += depth;
            match r.inst {
                Inst::Call { .. } => depth += 1,
                Inst::Ret => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        let call_depth = if trace.is_empty() {
            0.0
        } else {
            (depth_sum as f64 / trace.len() as f64) / CALL_DEPTH_SCALE
        };

        StatProfile {
            mix,
            branch_bias,
            load_redundancy,
            alias_rate,
            call_depth,
        }
    }

    /// The profile as `(dimension name, value)` pairs, in a fixed order.
    pub fn components(&self) -> [(&'static str, f64); PROFILE_DIMS] {
        [
            ("mix.alu", self.mix[0]),
            ("mix.load", self.mix[1]),
            ("mix.store", self.mix[2]),
            ("mix.rmw", self.mix[3]),
            ("mix.br_cond", self.mix[4]),
            ("mix.br_dir", self.mix[5]),
            ("mix.br_ind", self.mix[6]),
            ("mix.muldiv", self.mix[7]),
            ("mix.other", self.mix[8]),
            ("branch_bias", self.branch_bias),
            ("load_redundancy", self.load_redundancy),
            ("alias_rate", self.alias_rate),
            ("call_depth", self.call_depth),
        ]
    }

    /// Euclidean distance between two profiles over all
    /// [`PROFILE_DIMS`] dimensions. Dimensions are pre-normalized to
    /// `[0, 1]`, so no per-dimension weighting is applied.
    pub fn distance(&self, other: &StatProfile) -> f64 {
        self.components()
            .iter()
            .zip(other.components().iter())
            .map(|((_, a), (_, b))| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// The dimension with the largest absolute difference from `other` —
    /// the axis a fitter should push on next, and the most useful thing
    /// to print when a fit fails.
    pub fn worst_component(&self, other: &StatProfile) -> (&'static str, f64) {
        self.components()
            .iter()
            .zip(other.components().iter())
            .map(|((name, a), (_, b))| (*name, (a - b).abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("profile has dimensions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn empty_trace_measures_all_zero() {
        let p = StatProfile::measure(&Trace::new("empty", Vec::new()));
        for (name, v) in p.components() {
            assert_eq!(v, 0.0, "{name}");
        }
    }

    #[test]
    fn measure_is_deterministic_and_plausible() {
        let t = workloads::by_name("excel").unwrap().segment_trace(0, 8_000);
        let a = StatProfile::measure(&t);
        let b = StatProfile::measure(&t);
        assert_eq!(a, b);
        // All dims in [0, 1]; mix sums to 1.
        for (name, v) in a.components() {
            assert!((0.0..=1.0).contains(&v), "{name} = {v}");
        }
        let mix_sum: f64 = a.mix.iter().sum();
        assert!((mix_sum - 1.0).abs() < 1e-9, "mix sums to {mix_sum}");
        // Synthetic suite branches are mostly biased.
        assert!(a.branch_bias > 0.6, "branch_bias = {}", a.branch_bias);
    }

    #[test]
    fn distance_is_a_metric_on_examples() {
        let ta = workloads::by_name("gzip").unwrap().segment_trace(0, 6_000);
        let tb = workloads::by_name("power").unwrap().segment_trace(0, 6_000);
        let a = StatProfile::measure(&ta);
        let b = StatProfile::measure(&tb);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.01, "gzip and power differ");
    }

    #[test]
    fn alias_heavy_workload_scores_higher_alias_rate() {
        let excel = workloads::by_name("excel")
            .unwrap()
            .segment_trace(0, 10_000);
        let gzip = workloads::by_name("gzip").unwrap().segment_trace(0, 10_000);
        let pe = StatProfile::measure(&excel);
        let pg = StatProfile::measure(&gzip);
        assert!(
            pe.alias_rate > pg.alias_rate,
            "excel {} vs gzip {}",
            pe.alias_rate,
            pg.alias_rate
        );
    }

    #[test]
    fn worst_component_names_a_real_axis() {
        let ta = workloads::by_name("gzip").unwrap().segment_trace(0, 4_000);
        let tb = workloads::by_name("excel").unwrap().segment_trace(0, 4_000);
        let a = StatProfile::measure(&ta);
        let b = StatProfile::measure(&tb);
        let (name, delta) = a.worst_component(&b);
        assert!(delta > 0.0);
        assert!(a.components().iter().any(|(n, _)| *n == name));
    }
}
