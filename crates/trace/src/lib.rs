//! # replay-trace
//!
//! Trace infrastructure for the rePLay reproduction.
//!
//! The paper's evaluation is driven by proprietary, hardware-generated
//! x86 traces from AMD (Windows NT "hot spots" of SPECint 2000 and desktop
//! applications, §5.2). Those traces are unobtainable, so this crate
//! substitutes **synthetic workloads**: fourteen parameterized x86 programs
//! named after the paper's applications, each tuned to the dynamic
//! characteristics that drive the paper's results — branch bias, stack and
//! call traffic, load redundancy, pointer aliasing, loop structure.
//!
//! A [`Workload`] is a real program for the [`replay_x86`] subset ISA.
//! Executing it on the functional interpreter produces a [`Trace`]: a
//! sequence of [`TraceRecord`]s carrying, for every dynamic x86
//! instruction, its register state changes and memory transactions — the
//! same record content the paper describes (§5.1.1). Traces can be saved
//! and reloaded in a compact binary format ([`write_trace`] /
//! [`read_trace`]).
//!
//! Trace lengths are scaled down from the paper's 50–300 M instructions to
//! the 100 K–300 K range: the workloads are stationary loops, so the
//! steady-state statistics the evaluation depends on converge within a few
//! thousand iterations.
//!
//! # Example
//!
//! ```
//! use replay_trace::workloads;
//!
//! let w = workloads::by_name("bzip2").expect("known workload");
//! let trace = w.segment_trace(0, 5_000);
//! assert!(trace.len() > 1_000);
//! assert!(trace.records()[0].addr >= 0x40_0000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod io;
mod profile;
mod record;
mod stats;
pub mod workloads;

pub use builder::ProgramBuilder;
pub use io::{read_trace, trace_digest, write_trace, TraceIoError, FORMAT_VERSION};
pub use profile::{StatProfile, PROFILE_DIMS, REDUNDANCY_WINDOW};
pub use record::{Trace, TraceRecord};
pub use stats::{InstClass, TraceStats};
pub use workloads::{GenParams, Suite, Workload, PHRASE_NAMES};
