//! Trace statistics: the characterization numbers the paper's workload
//! section summarizes (instruction mix, branch behavior, memory behavior).

use crate::Trace;
use replay_x86::Inst;
use std::collections::{HashMap, HashSet};

/// Coarse x86 instruction classes for mix reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Register/immediate ALU work (including shifts, inc/dec, compares).
    Alu,
    /// Loads (`MOV r,[m]`, load-op forms, `POP`).
    Load,
    /// Stores (`MOV [m],r/imm`, `PUSH`).
    Store,
    /// Read-modify-write memory forms.
    Rmw,
    /// Conditional branches.
    CondBranch,
    /// Unconditional direct control (`JMP`, `CALL`).
    DirectControl,
    /// Indirect control (`JMP r`, `RET`).
    IndirectControl,
    /// Multiplies and divides.
    MulDiv,
    /// Everything else (`NOP`, `LEA`, `CDQ`, serializing instructions).
    Other,
}

impl InstClass {
    /// All classes in reporting order.
    pub const ALL: [InstClass; 9] = [
        InstClass::Alu,
        InstClass::Load,
        InstClass::Store,
        InstClass::Rmw,
        InstClass::CondBranch,
        InstClass::DirectControl,
        InstClass::IndirectControl,
        InstClass::MulDiv,
        InstClass::Other,
    ];

    /// Classifies an instruction.
    pub fn of(inst: &Inst) -> InstClass {
        match inst {
            Inst::AluRR { .. }
            | Inst::AluRI { .. }
            | Inst::CmpRR { .. }
            | Inst::CmpRI { .. }
            | Inst::TestRR { .. }
            | Inst::TestRI { .. }
            | Inst::IncR { .. }
            | Inst::DecR { .. }
            | Inst::NegR { .. }
            | Inst::NotR { .. }
            | Inst::ShiftRI { .. }
            | Inst::MovRR { .. }
            | Inst::MovRI { .. } => InstClass::Alu,
            Inst::MovRM { .. } | Inst::AluRM { .. } | Inst::CmpRM { .. } | Inst::PopR { .. } => {
                InstClass::Load
            }
            Inst::MovMR { .. } | Inst::MovMI { .. } | Inst::PushR { .. } | Inst::PushI { .. } => {
                InstClass::Store
            }
            Inst::AluMR { .. } => InstClass::Rmw,
            Inst::Jcc { .. } => InstClass::CondBranch,
            Inst::Jmp { .. } | Inst::Call { .. } => InstClass::DirectControl,
            Inst::JmpInd { .. } | Inst::Ret => InstClass::IndirectControl,
            Inst::ImulRR { .. } | Inst::ImulRRI { .. } | Inst::DivR { .. } => InstClass::MulDiv,
            Inst::Lea { .. } | Inst::Cdq | Inst::Nop | Inst::LongFlow => InstClass::Other,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::Alu => "alu",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Rmw => "rmw",
            InstClass::CondBranch => "br.cond",
            InstClass::DirectControl => "br.dir",
            InstClass::IndirectControl => "br.ind",
            InstClass::MulDiv => "muldiv",
            InstClass::Other => "other",
        }
    }
}

/// Summary statistics of one trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Dynamic instruction count.
    pub instructions: usize,
    /// Distinct static instruction addresses (code footprint).
    pub static_instructions: usize,
    /// Dynamic counts per class.
    pub mix: HashMap<InstClass, usize>,
    /// Conditional-branch count.
    pub cond_branches: usize,
    /// Conditional branches whose dominant direction covers ≥ 95 % of
    /// their executions (the paper's "dynamically biased" branches).
    pub biased_branches: usize,
    /// Distinct 64-byte data lines touched (data working set).
    pub data_lines: usize,
    /// Total memory transactions (reads + writes).
    pub mem_transactions: usize,
}

impl TraceStats {
    /// Computes statistics over a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut mix: HashMap<InstClass, usize> = HashMap::new();
        let mut static_addrs = HashSet::new();
        let mut lines = HashSet::new();
        let mut mem_transactions = 0usize;
        let mut branch_taken: HashMap<u32, (usize, usize)> = HashMap::new();
        for r in trace.records() {
            *mix.entry(InstClass::of(&r.inst)).or_insert(0) += 1;
            static_addrs.insert(r.addr);
            for (a, _) in r.mem_reads.iter().chain(r.mem_writes.iter()) {
                lines.insert(a >> 6);
                mem_transactions += 1;
            }
            if let Some(taken) = r.taken() {
                let e = branch_taken.entry(r.addr).or_insert((0, 0));
                if taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let cond_branches = branch_taken.values().map(|(t, n)| t + n).sum();
        let biased_static = branch_taken
            .values()
            .filter(|(t, n)| {
                let total = t + n;
                total > 0 && (*t.max(n) as f64 / total as f64) >= 0.95
            })
            .count();
        TraceStats {
            instructions: trace.len(),
            static_instructions: static_addrs.len(),
            mix,
            cond_branches,
            biased_branches: biased_static,
            data_lines: lines.len(),
            mem_transactions,
        }
    }

    /// The fraction of dynamic instructions in a class.
    pub fn mix_fraction(&self, class: InstClass) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        *self.mix.get(&class).unwrap_or(&0) as f64 / self.instructions as f64
    }

    /// Renders a one-trace report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} dynamic / {} static instructions; {} mem transactions over {} cache lines",
            self.instructions, self.static_instructions, self.mem_transactions, self.data_lines
        );
        let _ = writeln!(
            s,
            "{} conditional branch executions; {} static branches are >=95% biased",
            self.cond_branches, self.biased_branches
        );
        let _ = writeln!(s, "instruction mix:");
        for c in InstClass::ALL {
            let f = self.mix_fraction(c);
            if f > 0.0 {
                let _ = writeln!(s, "  {:8} {:5.1}%", c.label(), f * 100.0);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn classes_cover_all_instructions() {
        // Every decoded instruction classifies without panicking, and the
        // mix sums to the dynamic count.
        let t = workloads::by_name("access")
            .unwrap()
            .segment_trace(0, 5_000);
        let s = TraceStats::of(&t);
        let total: usize = s.mix.values().sum();
        assert_eq!(total, s.instructions);
        assert_eq!(s.instructions, 5_000);
    }

    #[test]
    fn biased_branches_dominate_in_spec() {
        let t = workloads::by_name("eon").unwrap().segment_trace(0, 10_000);
        let s = TraceStats::of(&t);
        assert!(s.cond_branches > 100);
        assert!(
            s.biased_branches >= 3,
            "several static branches are biased ({})",
            s.biased_branches
        );
    }

    #[test]
    fn mix_has_loads_and_stores() {
        let t = workloads::by_name("vortex")
            .unwrap()
            .segment_trace(0, 5_000);
        let s = TraceStats::of(&t);
        assert!(s.mix_fraction(InstClass::Load) > 0.05);
        assert!(s.mix_fraction(InstClass::Store) > 0.02);
        assert!(s.mix_fraction(InstClass::CondBranch) > 0.02);
        assert!(s.data_lines > 10);
    }

    #[test]
    fn report_is_nonempty() {
        let t = workloads::by_name("gzip").unwrap().segment_trace(0, 2_000);
        let r = TraceStats::of(&t).report();
        assert!(r.contains("instruction mix"));
        assert!(r.contains("alu"));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::of(&Trace::new("empty", Vec::new()));
        assert_eq!(s.instructions, 0);
        assert_eq!(s.static_instructions, 0);
        assert_eq!(s.cond_branches, 0);
        assert_eq!(s.biased_branches, 0);
        assert_eq!(s.data_lines, 0);
        assert_eq!(s.mem_transactions, 0);
        assert!(s.mix.is_empty());
        // mix_fraction must not divide by zero.
        for c in InstClass::ALL {
            assert_eq!(s.mix_fraction(c), 0.0);
        }
        // And the report renders without panicking.
        assert!(s.report().contains("0 dynamic"));
    }

    #[test]
    fn single_class_trace_has_unit_fraction() {
        use crate::TraceRecord;
        use replay_x86::Gpr;
        // A hand-built trace of nothing but ALU instructions.
        let records: Vec<TraceRecord> = (0..10)
            .map(|i| TraceRecord {
                addr: 0x40_0000 + 2 * i,
                len: 2,
                inst: Inst::IncR { r: Gpr::Eax },
                next_pc: 0x40_0000 + 2 * (i + 1),
                reg_writes: vec![(0, i + 1)],
                mem_reads: Vec::new(),
                mem_writes: Vec::new(),
                flags_after: 0,
            })
            .collect();
        let s = TraceStats::of(&Trace::new("alu-only", records));
        assert_eq!(s.instructions, 10);
        assert_eq!(s.mix.len(), 1);
        assert_eq!(s.mix_fraction(InstClass::Alu), 1.0);
        // Absent classes report exactly 0, not NaN or a missing-key panic.
        assert_eq!(s.mix_fraction(InstClass::Load), 0.0);
        assert_eq!(s.mix_fraction(InstClass::CondBranch), 0.0);
        assert_eq!(s.cond_branches, 0);
        assert_eq!(s.mem_transactions, 0);
    }

    #[test]
    fn classify_specific_instructions() {
        use replay_x86::{AluOp, Gpr, MemOperand};
        assert_eq!(
            InstClass::of(&Inst::PushR { src: Gpr::Eax }),
            InstClass::Store
        );
        assert_eq!(
            InstClass::of(&Inst::PopR { dst: Gpr::Eax }),
            InstClass::Load
        );
        assert_eq!(
            InstClass::of(&Inst::AluMR {
                op: AluOp::Add,
                mem: MemOperand::base_disp(Gpr::Esp, 0),
                src: Gpr::Eax
            }),
            InstClass::Rmw
        );
        assert_eq!(InstClass::of(&Inst::Ret), InstClass::IndirectControl);
        assert_eq!(InstClass::of(&Inst::Cdq), InstClass::Other);
        assert_eq!(
            InstClass::of(&Inst::DivR { src: Gpr::Ebx }),
            InstClass::MulDiv
        );
    }
}
