//! Binary trace file format.
//!
//! A compact, self-contained format for saving and reloading traces. Each
//! record stores its instruction as genuine machine-code bytes (produced by
//! the [`replay_x86`] encoder and re-decoded on load), so a trace file is
//! also an interoperability test of the codec.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "RPLT"            4 bytes
//! version u32              currently 1
//! name    u32 len + bytes  workload name (UTF-8)
//! init    16 x u32 + u8    initial register file and flags
//! count   u64              number of records
//! records ...
//! ```
//!
//! Each record:
//!
//! ```text
//! addr u32, next_pc u32, flags u8, inst_len u8, inst bytes,
//! n_regs u8,  (u8 reg, u32 value) * n_regs,
//! n_reads u8, (u32 addr, u32 value) * n_reads,
//! n_writes u8,(u32 addr, u32 value) * n_writes
//! ```

use crate::{Trace, TraceRecord};
use replay_x86::{decode, encode, DecodeError};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RPLT";

/// Version number of the binary trace format. Bumping it invalidates every
/// previously written trace file (and any on-disk cache keyed on it).
pub const FORMAT_VERSION: u32 = 1;
const VERSION: u32 = FORMAT_VERSION;

/// Upper bound on a declared workload-name length. Real names are a few
/// dozen bytes; anything past this is a corrupt or hostile header, and
/// rejecting it up front keeps a forged 4 GiB length from turning into an
/// allocation request.
const MAX_NAME_LEN: u32 = 1 << 16;

/// Errors from trace file reading.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The embedded instruction bytes failed to decode.
    BadInstruction(DecodeError),
    /// A string field was not UTF-8.
    BadString,
    /// A declared field length exceeds the format's sanity bound (a
    /// hostile or corrupt header; honoring it would demand an absurd
    /// allocation before any payload byte is checked).
    OversizedField(&'static str, u64),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadInstruction(e) => write!(f, "corrupt instruction bytes: {e}"),
            TraceIoError::BadString => write!(f, "corrupt string field"),
            TraceIoError::OversizedField(field, len) => {
                write!(f, "declared {field} length {len} exceeds format bounds")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::BadInstruction(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

/// Stable 64-bit content digest of a trace: FNV-1a over the exact byte
/// stream [`write_trace`] produces (so it covers the format version, the
/// name, the initial architectural state, and every record field).
///
/// Two traces digest equal iff their trace files would be byte-identical
/// — the property the persistent artifact store keys on.
///
/// # Errors
///
/// Fails only where [`write_trace`] would: a trace the format cannot
/// represent (e.g. an oversized name) has no well-defined file image to
/// digest.
pub fn trace_digest(trace: &Trace) -> Result<u64, TraceIoError> {
    struct Sink(replay_store::Digest64);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.write(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let mut sink = Sink(replay_store::Digest64::new());
    write_trace(&mut sink, trace)?;
    Ok(sink.0.finish())
}

/// Writes a trace in the binary format. A `&mut` reference works as the
/// writer, e.g. `write_trace(&mut file, &trace)?`.
///
/// # Errors
///
/// Propagates I/O errors from the writer, and rejects traces the format
/// cannot faithfully represent — a name longer than the reader's
/// [`OversizedField`](TraceIoError::OversizedField) bound fails *on write*
/// with the same error, instead of emitting a file [`read_trace`] would
/// refuse (or, past `u32::MAX`, silently truncating the length field).
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name.as_bytes();
    if name.len() > MAX_NAME_LEN as usize {
        return Err(TraceIoError::OversizedField("name", name.len() as u64));
    }
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    for r in trace.init_regs {
        w.write_all(&r.to_le_bytes())?;
    }
    w.write_all(&[trace.init_flags])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace.records() {
        w.write_all(&r.addr.to_le_bytes())?;
        w.write_all(&r.next_pc.to_le_bytes())?;
        w.write_all(&[r.flags_after])?;
        let bytes = encode(&r.inst, r.addr);
        debug_assert_eq!(bytes.len(), r.len as usize);
        w.write_all(&[bytes.len() as u8])?;
        w.write_all(&bytes)?;
        w.write_all(&[r.reg_writes.len() as u8])?;
        for (reg, v) in &r.reg_writes {
            w.write_all(&[*reg])?;
            w.write_all(&v.to_le_bytes())?;
        }
        w.write_all(&[r.mem_reads.len() as u8])?;
        for (a, v) in &r.mem_reads {
            w.write_all(&a.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
        w.write_all(&[r.mem_writes.len() as u8])?;
        for (a, v) in &r.mem_writes {
            w.write_all(&a.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

struct Reader<R: Read> {
    inner: R,
}

impl<R: Read> Reader<R> {
    fn u8(&mut self) -> Result<u8, TraceIoError> {
        let mut b = [0u8; 1];
        self.inner.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32, TraceIoError> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, TraceIoError> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, TraceIoError> {
        // Never pre-allocate a buffer sized by an untrusted header field:
        // read through `take` so the vector grows only as payload bytes
        // actually arrive, then verify the declared length was delivered.
        let mut v = Vec::with_capacity(n.min(4096));
        let got = (&mut self.inner).take(n as u64).read_to_end(&mut v)?;
        if got != n {
            return Err(TraceIoError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "field truncated mid-read",
            )));
        }
        Ok(v)
    }
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Fails on I/O errors, format violations, or corrupt instruction bytes.
pub fn read_trace<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let mut r = Reader { inner: r };
    if &r.bytes(4)?[..] != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let name_len = r.u32()?;
    if name_len > MAX_NAME_LEN {
        return Err(TraceIoError::OversizedField("name", name_len as u64));
    }
    let name =
        String::from_utf8(r.bytes(name_len as usize)?).map_err(|_| TraceIoError::BadString)?;
    let mut init_regs = [0u32; replay_uop::NUM_ARCH_REGS];
    for reg in &mut init_regs {
        *reg = r.u32()?;
    }
    let init_flags = r.u8()?;
    let count = r.u64()? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let addr = r.u32()?;
        let next_pc = r.u32()?;
        let flags_after = r.u8()?;
        let inst_len = r.u8()? as usize;
        let inst_bytes = r.bytes(inst_len)?;
        let (inst, len) = decode(&inst_bytes, addr).map_err(TraceIoError::BadInstruction)?;
        let n = r.u8()? as usize;
        let mut reg_writes = Vec::with_capacity(n);
        for _ in 0..n {
            let reg = r.u8()?;
            reg_writes.push((reg, r.u32()?));
        }
        let n = r.u8()? as usize;
        let mut mem_reads = Vec::with_capacity(n);
        for _ in 0..n {
            mem_reads.push((r.u32()?, r.u32()?));
        }
        let n = r.u8()? as usize;
        let mut mem_writes = Vec::with_capacity(n);
        for _ in 0..n {
            mem_writes.push((r.u32()?, r.u32()?));
        }
        records.push(TraceRecord {
            addr,
            len,
            inst,
            next_pc,
            reg_writes,
            mem_reads,
            mem_writes,
            flags_after,
        });
    }
    Ok(Trace::new(name, records).with_init(init_regs, init_flags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_x86::{Gpr, Inst, MemOperand};

    fn sample() -> Trace {
        Trace::new(
            "roundtrip",
            vec![
                TraceRecord {
                    addr: 0x40_0000,
                    len: 5,
                    inst: Inst::MovRI {
                        dst: Gpr::Eax,
                        imm: -3,
                    },
                    next_pc: 0x40_0005,
                    reg_writes: vec![(0, 0xffff_fffd)],
                    mem_reads: vec![],
                    mem_writes: vec![],
                    flags_after: 0,
                },
                TraceRecord {
                    addr: 0x40_0005,
                    len: 6,
                    inst: Inst::MovMR {
                        mem: MemOperand::absolute(0x9000),
                        src: Gpr::Eax,
                    },
                    next_pc: 0x40_000b,
                    reg_writes: vec![],
                    mem_reads: vec![],
                    mem_writes: vec![(0x9000, 0xffff_fffd)],
                    flags_after: 3,
                },
                TraceRecord {
                    addr: 0x40_000b,
                    len: 6,
                    inst: Inst::Jcc {
                        cc: replay_x86::CondX86::Nz,
                        target: 0x40_0000,
                    },
                    next_pc: 0x40_0000,
                    reg_writes: vec![],
                    mem_reads: vec![(1, 2), (3, 4)],
                    mem_writes: vec![],
                    flags_after: 0x1f,
                },
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.name, "roundtrip");
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf[4] = 99;
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadVersion(99)));
    }

    #[test]
    fn truncation_reported_as_io() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        let err = read_trace(&buf[..buf.len() - 3]).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", vec![]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name, "empty");
        assert_eq!(back.init_regs, t.init_regs);
        assert_eq!(back.init_flags, t.init_flags);
    }

    /// A valid prefix (magic + version) followed by the given body bytes.
    fn hostile(body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(body);
        buf
    }

    #[test]
    fn hostile_name_length_rejected_without_allocating() {
        // Header declares a 4 GiB name. Must fail fast with a typed
        // error, not attempt the allocation or panic.
        let buf = hostile(&u32::MAX.to_le_bytes());
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::OversizedField("name", 0xFFFF_FFFF)
        ));
        // A large-but-legal declared length with no payload behind it is
        // an EOF, and only the delivered bytes are ever buffered.
        let buf = hostile(&1000u32.to_le_bytes());
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn hostile_record_count_rejected_without_allocating() {
        // A structurally valid empty trace whose record count is forged
        // to u64::MAX: the reader must hit EOF on the first (absent)
        // record rather than reserving u64::MAX slots up front.
        let t = Trace::new("forged", vec![]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let count_at = buf.len() - 8;
        buf[count_at..].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn oversized_name_rejected_symmetrically_on_write() {
        // The writer must refuse anything its own reader would reject:
        // a name one byte past the bound fails on write with the same
        // typed error read_trace raises, and nothing is written.
        let long = "x".repeat(MAX_NAME_LEN as usize + 1);
        let t = Trace::new(long, vec![]);
        let mut buf = Vec::new();
        let err = write_trace(&mut buf, &t).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::OversizedField("name", n) if n == MAX_NAME_LEN as u64 + 1
        ));
        assert!(buf.len() <= 8, "no payload may be emitted past the header");

        // A name exactly at the bound round-trips.
        let t = Trace::new("y".repeat(MAX_NAME_LEN as usize), vec![]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.name.len(), MAX_NAME_LEN as usize);
    }

    #[test]
    fn oversized_field_error_displays_field_and_length() {
        let msg = TraceIoError::OversizedField("name", 42).to_string();
        assert!(msg.contains("name") && msg.contains("42"), "{msg}");
    }
}
