//! The synthetic workload suite (Table 1 stand-ins).
//!
//! Fourteen parameterized x86 programs named after the paper's workloads:
//! seven SPECint 2000 benchmarks and seven Winstone desktop applications.
//! Each program is a long-running hot loop whose body is assembled from
//! weighted *phrases* — small idiomatic x86 code patterns that exercise
//! specific optimizer opportunities:
//!
//! | Phrase | x86 idiom | optimizer opportunity |
//! |--------|-----------|----------------------|
//! | leaf call | `PUSH args; CALL; ADD ESP` + prologue/epilogue | store forwarding, reassociation, return-target assertions |
//! | redundant loads | repeated `[reg]` reads, some hidden behind `LEA` chains | CSE / redundant-load elimination (RA-gated) |
//! | stack spill | `PUSH`/`POP` save-restore pairs | store forwarding + stack-update merging |
//! | arith chain | dependent ALU sequences | tree height, constant propagation |
//! | biased branch | table-driven, ~97% one direction | branch → assertion conversion |
//! | unbiased branch | coin-flip direction | frame terminators (coverage control) |
//! | alias store | store through a pointer that *sometimes* hits a hot slot | speculative memory optimization + unsafe-store aborts |
//! | table walk | indexed loads | fetch/memory bandwidth |
//! | store burst | consecutive stores | store bandwidth |
//! | nop pad | alignment `NOP`s | NOP removal |
//! | div chain | `CDQ`/`DIV` | complex-ALU occupancy |
//! | switch jump | indirect jump through a table | indirect-target assertions, frame terminators |
//!
//! The per-application phrase weights are tuned so that the *shape* of the
//! paper's per-application results carries over: `gzip` has little
//! removable redundancy, `power`/`dream` have the most, `excel` aliases
//! often enough that speculative store forwarding backfires (Figure 10),
//! SPEC programs have higher frame coverage than desktop programs (§6.1).

use crate::{ProgramBuilder, Trace, TraceRecord};
use replay_rng::SmallRng;
use replay_x86::{AluOp, CondX86, Gpr, Inst, Interp, Label, MemOperand, Program, ShiftOp};

const CODE_BASE: u32 = 0x0040_0000;
const DATA_BASE: u32 = 0x1000_0000;
const TABLE_LEN: usize = 256;
/// Tables are allocated at twice the index range so that per-phrase static
/// offsets (`[table + EDI*4 + off]`) stay in bounds.
const TABLE_WORDS: usize = TABLE_LEN * 2;

/// Which suite a workload belongs to (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2000.
    SpecInt,
    /// Winstone desktop applications.
    Desktop,
}

#[derive(Debug, Clone, Copy)]
enum Phrase {
    LeafCall,
    RedundantLoads,
    StackSpill,
    ArithChain,
    BiasedBranch,
    UnbiasedBranch,
    AliasStore,
    TableWalk,
    StoreBurst,
    NopPad,
    DivChain,
    SwitchJump,
    /// A cluster of unpredictable branches separated by single
    /// instructions: frames constructed here are below the minimum size
    /// and are discarded, producing genuinely frame-free regions (the
    /// coverage gap between SPEC and desktop applications, §6.1).
    BranchMaze,
}

const PHRASES: [Phrase; 13] = [
    Phrase::LeafCall,
    Phrase::RedundantLoads,
    Phrase::StackSpill,
    Phrase::ArithChain,
    Phrase::BiasedBranch,
    Phrase::UnbiasedBranch,
    Phrase::AliasStore,
    Phrase::TableWalk,
    Phrase::StoreBurst,
    Phrase::NopPad,
    Phrase::DivChain,
    Phrase::SwitchJump,
    Phrase::BranchMaze,
];

/// Per-application generation parameters.
///
/// Public so the profile-fitting subsystem (`replay-clone`) can search
/// this space directly: a point in `GenParams` *is* a synthetic program,
/// and [`Workload::custom`] turns one into a runnable [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Seed of the workload's own phrase/table generator.
    pub seed: u64,
    /// Number of phrases in the loop body.
    pub body_phrases: usize,
    /// Weights over the 13 phrases, in [`PHRASE_NAMES`] order.
    pub weights: [u32; 13],
    /// Probability a biased-branch table entry points the dominant way.
    pub bias_frac: f64,
    /// Probability a pointer-table entry aliases the hot slot.
    pub alias_rate: f64,
    /// Desktop style: leaf functions shared between call sites (their
    /// `RET`s see multiple return targets and terminate frames).
    pub shared_callees: bool,
    /// Probability a switch-table entry selects a non-dominant case.
    pub switch_varied: f64,
    /// Emit a rare serializing long-flow instruction.
    pub longflow: bool,
}

/// Human-readable names of the 13 phrase-weight slots, in the order
/// [`GenParams::weights`] uses.
pub const PHRASE_NAMES: [&str; 13] = [
    "leaf_call",
    "redundant_loads",
    "stack_spill",
    "arith_chain",
    "biased_branch",
    "unbiased_branch",
    "alias_store",
    "table_walk",
    "store_burst",
    "nop_pad",
    "div_chain",
    "switch_jump",
    "branch_maze",
];

/// Version of the synthetic-workload generator. Bump whenever
/// [`build_program`] or the phrase vocabulary changes the traces a given
/// [`Workload`] produces: the version participates in every persisted
/// trace artifact's key, so bumping it invalidates stale cache entries
/// without touching the artifact container format.
pub const GENERATOR_VERSION: u32 = 1;

/// A named synthetic workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application name (paper Table 1, or a synthesized clone's name).
    pub name: String,
    /// Benchmark suite.
    pub suite: Suite,
    /// Number of trace segments (paper Table 1: desktop applications ship
    /// as 2–3 separate hot-spot traces).
    pub segments: usize,
    /// Default dynamic length per segment, in x86 instructions (scaled
    /// down from the paper's 50–300 M).
    pub default_segment_len: usize,
    params: GenParams,
}

impl Workload {
    /// Builds a workload directly from generation parameters — the entry
    /// point for synthesized (cloned/swept) workloads that are not part of
    /// the pinned Table 1 suite.
    pub fn custom(
        name: impl Into<String>,
        suite: Suite,
        segments: usize,
        default_segment_len: usize,
        params: GenParams,
    ) -> Workload {
        assert!(segments >= 1, "workload needs at least one segment");
        Workload {
            name: name.into(),
            suite,
            segments,
            default_segment_len,
            params,
        }
    }

    /// The generation parameters this workload's programs are built from.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// Builds the program (and data image) for one trace segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment >= self.segments`.
    pub fn segment_program(&self, segment: usize) -> (Program, Vec<(u32, Vec<u8>)>) {
        assert!(segment < self.segments, "segment out of range");
        let mut params = self.params;
        params.seed = params
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(segment as u64 + 1));
        build_program(&params)
    }

    /// Generates one segment's dynamic trace of at most `max_x86`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if the generated program faults — that would be a generator
    /// bug, and the workload tests guard against it.
    pub fn segment_trace(&self, segment: usize, max_x86: usize) -> Trace {
        let (program, data) = self.segment_program(segment);
        let mut interp = Interp::new(program);
        for (addr, bytes) in &data {
            interp.machine.mem.write_bytes(*addr, bytes);
        }
        let mut init_regs = [0u32; replay_uop::NUM_ARCH_REGS];
        for r in replay_uop::ArchReg::ALL {
            init_regs[r.index()] = interp.machine.reg(r);
        }
        let init_flags = interp.machine.flags().to_bits();
        let steps = interp
            .run(max_x86)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", self.name));
        Trace::new(
            format!("{}.{}", self.name, segment),
            steps.iter().map(TraceRecord::from_step).collect(),
        )
        .with_init(init_regs, init_flags)
    }

    /// Generates every segment at its default length.
    pub fn traces(&self) -> Vec<Trace> {
        self.traces_scaled(self.default_segment_len)
    }

    /// Generates every segment at a chosen per-segment length.
    pub fn traces_scaled(&self, per_segment: usize) -> Vec<Trace> {
        (0..self.segments)
            .map(|s| self.segment_trace(s, per_segment))
            .collect()
    }

    /// Stable digest of everything that determines this workload's
    /// generated traces: the generator version and every generation
    /// parameter (seed, phrase weights, behavioral probabilities — float
    /// parameters by bit pattern). Two workloads digest equal iff
    /// [`Workload::segment_trace`] is the same function of
    /// `(segment, scale)` for both.
    pub fn spec_digest(&self) -> u64 {
        let mut d = replay_store::Digest64::new();
        d.write_u32(GENERATOR_VERSION);
        d.write_str(&self.name);
        d.write_u8(match self.suite {
            Suite::SpecInt => 0,
            Suite::Desktop => 1,
        });
        d.write_usize(self.segments);
        d.write_usize(self.default_segment_len);
        let p = &self.params;
        d.write_u64(p.seed);
        d.write_usize(p.body_phrases);
        for w in p.weights {
            d.write_u32(w);
        }
        d.write_f64(p.bias_frac);
        d.write_f64(p.alias_rate);
        d.write_bool(p.shared_callees);
        d.write_f64(p.switch_varied);
        d.write_bool(p.longflow);
        d.finish()
    }
}

/// All fourteen workloads, in the paper's Table 1 order.
pub fn all() -> Vec<Workload> {
    // One argument per Table 1 / GenParams column; a struct would just
    // duplicate `GenParams` field-for-field.
    #[allow(clippy::too_many_arguments)]
    fn w(
        name: &'static str,
        suite: Suite,
        segments: usize,
        default_segment_len: usize,
        seed: u64,
        body_phrases: usize,
        weights: [u32; 13],
        bias_frac: f64,
        alias_rate: f64,
        switch_varied: f64,
    ) -> Workload {
        Workload {
            name: name.to_string(),
            suite,
            segments,
            default_segment_len,
            params: GenParams {
                seed,
                body_phrases,
                weights,
                bias_frac,
                alias_rate,
                shared_callees: suite == Suite::Desktop,
                switch_varied,
                longflow: true,
            },
        }
    }
    use Suite::*;
    vec![
        //                                              LC RL SP AC BB UB AS TW SB NP DV SW BM
        w(
            "bzip2",
            SpecInt,
            1,
            100_000,
            0xb21b,
            30,
            [1, 4, 2, 8, 6, 0, 0, 12, 2, 0, 0, 0, 2],
            0.998,
            0.00,
            0.02,
        ),
        w(
            "gzip",
            SpecInt,
            1,
            100_000,
            0x6219,
            30,
            [1, 2, 2, 17, 8, 4, 0, 17, 4, 0, 0, 2, 4],
            0.996,
            0.00,
            0.10,
        ),
        w(
            "crafty",
            SpecInt,
            1,
            100_000,
            0xc4af,
            32,
            [2, 0, 0, 18, 12, 2, 0, 15, 2, 1, 0, 2, 2],
            0.996,
            0.00,
            0.05,
        ),
        w(
            "eon",
            SpecInt,
            1,
            100_000,
            0xe0e0,
            30,
            [4, 1, 1, 16, 5, 0, 0, 5, 2, 0, 2, 0, 2],
            0.997,
            0.00,
            0.02,
        ),
        w(
            "parser",
            SpecInt,
            1,
            100_000,
            0x9a45,
            32,
            [2, 2, 1, 12, 8, 2, 0, 10, 2, 1, 0, 2, 4],
            0.996,
            0.00,
            0.08,
        ),
        w(
            "twolf",
            SpecInt,
            1,
            100_000,
            0x2201,
            32,
            [1, 1, 1, 13, 10, 3, 2, 21, 3, 0, 0, 3, 3],
            0.996,
            0.02,
            0.02,
        ),
        w(
            "vortex",
            SpecInt,
            1,
            100_000,
            0x7063,
            32,
            [4, 2, 2, 9, 7, 0, 0, 6, 4, 1, 0, 0, 2],
            0.997,
            0.00,
            0.03,
        ),
        w(
            "access",
            Desktop,
            2,
            60_000,
            0xacc5,
            32,
            [5, 2, 2, 9, 8, 2, 1, 8, 4, 2, 0, 4, 6],
            0.996,
            0.05,
            0.06,
        ),
        w(
            "dream",
            Desktop,
            2,
            60_000,
            0xd4ea,
            32,
            [5, 4, 4, 6, 6, 1, 0, 4, 3, 2, 0, 1, 4],
            0.996,
            0.02,
            0.05,
        ),
        w(
            "excel",
            Desktop,
            3,
            60_000,
            0xe8ce,
            32,
            [2, 2, 2, 7, 5, 1, 6, 4, 3, 1, 0, 3, 4],
            0.996,
            0.05,
            0.05,
        ),
        w(
            "lotus",
            Desktop,
            2,
            60_000,
            0x107a,
            32,
            [2, 3, 2, 7, 6, 2, 1, 6, 3, 1, 0, 3, 5],
            0.996,
            0.05,
            0.06,
        ),
        w(
            "photo",
            Desktop,
            2,
            60_000,
            0xf070,
            32,
            [2, 2, 2, 19, 6, 2, 1, 8, 4, 1, 4, 1, 6],
            0.996,
            0.02,
            0.03,
        ),
        w(
            "power",
            Desktop,
            3,
            60_000,
            0x9035,
            34,
            [7, 2, 3, 4, 4, 2, 0, 3, 2, 3, 0, 1, 6],
            0.997,
            0.02,
            0.03,
        ),
        w(
            "sound",
            Desktop,
            3,
            60_000,
            0x50d4,
            32,
            [3, 4, 3, 12, 7, 2, 1, 7, 3, 1, 2, 2, 5],
            0.996,
            0.02,
            0.05,
        ),
    ]
}

/// Looks a workload up by its Table 1 name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

struct Ctx {
    bias_table: u32,
    coin_table: u32,
    data_table: u32,
    ptr_table: u32,
    hot_slot: u32,
    scratch: u32,
    shared_callees: Vec<Label>,
    pending_callees: Vec<Label>,
    switch_varied: f64,
}

/// `[table + EDI*4 + off]` — per-phrase static offsets keep distinct
/// phrases on distinct addresses, so only *genuine* redundancy (the same
/// phrase re-entered within a frame, or deliberate repeats) is removable.
fn indexed(table: u32, off: i32) -> MemOperand {
    MemOperand {
        base: None,
        index: Some((Gpr::Edi, 4)),
        disp: table as i32 + off,
    }
}

/// A random word offset into the upper half of a doubled table.
fn word_off(rng: &mut SmallRng) -> i32 {
    4 * rng.random_range(0..TABLE_LEN as i32)
}

fn build_program(p: &GenParams) -> (Program, Vec<(u32, Vec<u8>)>) {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut b = ProgramBuilder::new(CODE_BASE, DATA_BASE);

    // ---------------- data tables ----------------
    let bias_table = {
        let words: Vec<u32> = (0..TABLE_WORDS)
            .map(|_| u32::from(rng.random_bool(p.bias_frac)))
            .collect();
        b.alloc_words(&words)
    };
    let coin_table = {
        let words: Vec<u32> = (0..TABLE_WORDS)
            .map(|_| u32::from(rng.random_bool(0.5)))
            .collect();
        b.alloc_words(&words)
    };
    let data_table = {
        let words: Vec<u32> = (0..TABLE_WORDS)
            .map(|_| rng.random_range(1..1000u32))
            .collect();
        b.alloc_words(&words)
    };
    let scratch = b.alloc_words(&vec![0u32; TABLE_LEN]);
    let hot_slot = b.alloc_words(&[0]);
    let ptr_table = {
        let mut words = Vec::with_capacity(TABLE_LEN);
        for i in 0..TABLE_LEN {
            if rng.random_bool(p.alias_rate) {
                words.push(hot_slot);
            } else {
                words.push(scratch + 4 * ((i as u32 * 7) % TABLE_LEN as u32));
            }
        }
        b.alloc_words(&words)
    };

    let mut ctx = Ctx {
        bias_table,
        coin_table,
        data_table,
        ptr_table,
        hot_slot,
        scratch,
        shared_callees: Vec::new(),
        pending_callees: Vec::new(),
        switch_varied: p.switch_varied,
    };

    // ---------------- code ----------------
    let main = b.asm.new_label();
    b.asm.jmp(main); // entry hop over callee bodies

    if p.shared_callees {
        for _ in 0..3 {
            let l = b.asm.new_label();
            b.asm.bind(l);
            emit_callee(&mut b, &mut rng);
            ctx.shared_callees.push(l);
        }
    }

    b.asm.bind(main);
    // Loop state lives in registers, as compiled code would keep it: EBP
    // is the (callee-saved) trip counter, EDI the table index.
    b.asm.push(Inst::MovRI {
        dst: Gpr::Ebp,
        imm: 0x7fff_ffff,
    });
    b.asm.push(Inst::AluRR {
        op: AluOp::Xor,
        dst: Gpr::Edi,
        src: Gpr::Edi,
    });
    let top = b.asm.new_label();
    let exit = b.asm.new_label();
    b.asm.bind(top);
    // Exit branch essentially never taken (the trace budget ends first).
    b.asm.push(Inst::DecR { r: Gpr::Ebp });
    b.asm.jcc(CondX86::Z, exit);
    b.asm.push(Inst::IncR { r: Gpr::Edi });
    b.asm.push(Inst::AluRI {
        op: AluOp::And,
        dst: Gpr::Edi,
        imm: (TABLE_LEN - 1) as i32,
    });

    // Body: deterministic phrase counts proportional to the weights (so a
    // workload's character does not depend on sampling luck), in a
    // shuffled order.
    let total: u32 = p.weights.iter().sum();
    assert!(total > 0, "profile has no phrase weights");
    let mut body: Vec<Phrase> = Vec::with_capacity(p.body_phrases);
    let mut acc = 0u32;
    let mut emitted = 0u32;
    for (ph, w) in PHRASES.iter().zip(p.weights) {
        acc += w * p.body_phrases as u32;
        let want = acc / total;
        for _ in emitted..want {
            body.push(*ph);
        }
        emitted = want;
    }
    // Fisher-Yates shuffle with the workload's own generator.
    for i in (1..body.len()).rev() {
        let j = rng.random_range(0..=i);
        body.swap(i, j);
    }
    let mid = body.len() / 2;
    for (n, phrase) in body.into_iter().enumerate() {
        emit_phrase(&mut b, &mut ctx, &mut rng, phrase);
        // A serializing instruction guarded to execute on one iteration in
        // 256 — well under the paper's <0.05% of the dynamic stream.
        if p.longflow && n == mid {
            let skip = b.asm.new_label();
            b.asm.push(Inst::CmpRI {
                a: Gpr::Edi,
                imm: rng.random_range(0..TABLE_LEN as i32),
            });
            b.asm.jcc(CondX86::Nz, skip);
            b.asm.push(Inst::LongFlow);
            b.asm.bind(skip);
        }
    }

    b.asm.jmp(top);
    b.asm.bind(exit);
    b.asm.push(Inst::Ret);

    // Private callees referenced by the body.
    for l in std::mem::take(&mut ctx.pending_callees) {
        b.asm.bind(l);
        emit_callee(&mut b, &mut rng);
    }

    b.finish()
}

/// A leaf function in the paper's Figure 2 shape.
fn emit_callee(b: &mut ProgramBuilder, rng: &mut SmallRng) {
    let skip = b.asm.new_label();
    b.asm.push(Inst::PushR { src: Gpr::Ebp });
    b.asm.push(Inst::PushR { src: Gpr::Ebx });
    b.asm.push(Inst::MovRM {
        dst: Gpr::Ecx,
        mem: MemOperand::base_disp(Gpr::Esp, 0xc),
    });
    b.asm.push(Inst::MovRM {
        dst: Gpr::Ebx,
        mem: MemOperand::base_disp(Gpr::Esp, 0x10),
    });
    b.asm.push(Inst::AluRR {
        op: AluOp::Xor,
        dst: Gpr::Eax,
        src: Gpr::Eax,
    });
    b.asm.push(Inst::MovRR {
        dst: Gpr::Edx,
        src: Gpr::Ecx,
    });
    b.asm.push(Inst::AluRR {
        op: AluOp::Or,
        dst: Gpr::Edx,
        src: Gpr::Ebx,
    });
    b.asm.jcc(CondX86::Z, skip); // args never both zero: biased not-taken
    b.asm.push(Inst::AluRR {
        op: AluOp::Add,
        dst: Gpr::Eax,
        src: Gpr::Ecx,
    });
    if rng.random_bool(0.5) {
        b.asm.push(Inst::ImulRRI {
            dst: Gpr::Eax,
            src: Gpr::Eax,
            imm: rng.random_range(2..7),
        });
    }
    b.asm.bind(skip);
    b.asm.push(Inst::PopR { dst: Gpr::Ebx });
    b.asm.push(Inst::PopR { dst: Gpr::Ebp });
    b.asm.push(Inst::Ret);
}

fn emit_phrase(b: &mut ProgramBuilder, ctx: &mut Ctx, rng: &mut SmallRng, phrase: Phrase) {
    match phrase {
        Phrase::LeafCall => {
            // Second argument is a nonzero immediate so the callee's guard
            // branch stays biased.
            b.asm.push(Inst::PushI {
                imm: rng.random_range(1..100),
            });
            b.asm.push(Inst::PushR { src: Gpr::Esi });
            let callee = if ctx.shared_callees.is_empty() {
                let l = b.asm.new_label();
                ctx.pending_callees.push(l);
                l
            } else {
                ctx.shared_callees[rng.random_range(0..ctx.shared_callees.len())]
            };
            b.asm.call(callee);
            b.asm.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Esp,
                imm: 8,
            });
        }
        Phrase::RedundantLoads => {
            let k = 4 * rng.random_range(0..TABLE_LEN as i32);
            let j = 4 * rng.random_range(0..TABLE_LEN as i32);
            b.asm.push(Inst::MovRI {
                dst: Gpr::Esi,
                imm: (ctx.data_table as i32) + k,
            });
            b.asm.push(Inst::MovRM {
                dst: Gpr::Eax,
                mem: MemOperand::base_disp(Gpr::Esi, 0),
            });
            b.asm.push(Inst::AluRM {
                op: AluOp::Add,
                dst: Gpr::Eax,
                mem: MemOperand::base_disp(Gpr::Esi, 4),
            });
            // The first location again, hidden behind pointer arithmetic —
            // only reassociation exposes the redundancy.
            b.asm.push(Inst::Lea {
                dst: Gpr::Ebx,
                mem: MemOperand::base_disp(Gpr::Esi, 8),
            });
            b.asm.push(Inst::MovRM {
                dst: Gpr::Edx,
                mem: MemOperand::base_disp(Gpr::Ebx, -8),
            });
            b.asm.push(Inst::AluRR {
                op: AluOp::Add,
                dst: Gpr::Edx,
                src: Gpr::Eax,
            });
            b.asm.push(Inst::MovMR {
                mem: MemOperand::absolute(ctx.scratch + j as u32),
                src: Gpr::Edx,
            });
        }
        Phrase::StackSpill => {
            b.asm.push(Inst::PushR { src: Gpr::Esi });
            b.asm.push(Inst::PushR { src: Gpr::Edx });
            b.asm.push(Inst::MovRR {
                dst: Gpr::Esi,
                src: Gpr::Edx,
            });
            b.asm.push(Inst::ShiftRI {
                op: ShiftOp::Shl,
                r: Gpr::Esi,
                imm: rng.random_range(1..4),
            });
            b.asm.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Esi,
                imm: rng.random_range(1..64),
            });
            b.asm.push(Inst::PopR { dst: Gpr::Edx });
            b.asm.push(Inst::PopR { dst: Gpr::Esi });
        }
        Phrase::ArithChain => {
            // Dependent ALU work computed *in place* on the accumulator,
            // the way a register allocator would emit it: no removable
            // copies, and no two consecutive foldable add-immediates.
            if rng.random_bool(0.10) {
                // Occasional constant rematerialization (CP food).
                b.asm.push(Inst::MovRI {
                    dst: Gpr::Edx,
                    imm: rng.random_range(1..1000),
                });
            }
            let mut last_was_add = false;
            for _ in 0..rng.random_range(3..6usize) {
                let choice = rng.random_range(0..5);
                match choice {
                    0 if !last_was_add => {
                        b.asm.push(Inst::AluRI {
                            op: AluOp::Add,
                            dst: Gpr::Esi,
                            imm: rng.random_range(1..256),
                        });
                        last_was_add = true;
                        continue;
                    }
                    1 => b.asm.push(Inst::ShiftRI {
                        op: ShiftOp::Shl,
                        r: Gpr::Esi,
                        imm: rng.random_range(1..3),
                    }),
                    2 => b.asm.push(Inst::AluRI {
                        op: AluOp::Xor,
                        dst: Gpr::Esi,
                        imm: rng.random_range(1..0xffff),
                    }),
                    3 => b.asm.push(Inst::AluRR {
                        op: AluOp::Add,
                        dst: Gpr::Esi,
                        src: Gpr::Edx,
                    }),
                    _ => b.asm.push(Inst::ImulRRI {
                        dst: Gpr::Esi,
                        src: Gpr::Esi,
                        imm: rng.random_range(3..7),
                    }),
                }
                last_was_add = false;
            }
        }
        Phrase::BiasedBranch => {
            let skip = b.asm.new_label();
            // MOV + CMP-with-memory: the compare decodes to a load uop and
            // a compare uop.
            b.asm.push(Inst::MovRI {
                dst: Gpr::Eax,
                imm: 0,
            });
            b.asm.push(Inst::CmpRM {
                a: Gpr::Eax,
                mem: indexed(ctx.bias_table, word_off(rng)),
            });
            b.asm.jcc(CondX86::Nz, skip);
            b.asm.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Esi,
                imm: 1,
            });
            b.asm.push(Inst::AluRI {
                op: AluOp::Xor,
                dst: Gpr::Edx,
                imm: 3,
            });
            b.asm.bind(skip);
        }
        Phrase::UnbiasedBranch => {
            // Direction = parity of a table word mixed with the rolling
            // accumulator: unpredictable *and* aperiodic, so the bias
            // table never falsely converts it.
            let other = b.asm.new_label();
            let merge = b.asm.new_label();
            b.asm.push(Inst::MovRR {
                dst: Gpr::Eax,
                src: Gpr::Esi,
            });
            b.asm.push(Inst::AluRM {
                op: AluOp::Add,
                dst: Gpr::Eax,
                mem: indexed(ctx.data_table, word_off(rng)),
            });
            b.asm.push(Inst::TestRI {
                a: Gpr::Eax,
                imm: 1,
            });
            b.asm.jcc(CondX86::Nz, other);
            b.asm.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Edx,
                imm: 1,
            });
            b.asm.jmp(merge);
            b.asm.bind(other);
            b.asm.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Edx,
                imm: 2,
            });
            b.asm.bind(merge);
        }
        Phrase::AliasStore => {
            b.asm.push(Inst::MovRM {
                dst: Gpr::Esi,
                mem: indexed(ctx.ptr_table, 0),
            });
            b.asm.push(Inst::MovRM {
                dst: Gpr::Eax,
                mem: indexed(ctx.data_table, word_off(rng)),
            });
            // Store to the hot slot, store through the pointer (may
            // alias), reload the hot slot: speculative forwarding bait.
            b.asm.push(Inst::MovMR {
                mem: MemOperand::absolute(ctx.hot_slot),
                src: Gpr::Eax,
            });
            b.asm.push(Inst::MovMR {
                mem: MemOperand::base_disp(Gpr::Esi, 0),
                src: Gpr::Edx,
            });
            b.asm.push(Inst::MovRM {
                dst: Gpr::Ebx,
                mem: MemOperand::absolute(ctx.hot_slot),
            });
            b.asm.push(Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::Ebx,
                imm: 1,
            });
        }
        Phrase::TableWalk => {
            // Load-op form: the dense two-address x86 idiom that decodes
            // into two uops (`ADD reg, [mem]`).
            b.asm.push(Inst::AluRM {
                op: AluOp::Add,
                dst: Gpr::Esi,
                mem: indexed(ctx.data_table, word_off(rng)),
            });
            if rng.random_bool(0.5) {
                b.asm.push(Inst::AluRM {
                    op: AluOp::Xor,
                    dst: Gpr::Esi,
                    mem: indexed(ctx.coin_table, word_off(rng)),
                });
            }
        }
        Phrase::StoreBurst => {
            let j = 4 * rng.random_range(0..(TABLE_LEN as i32 - 4));
            b.asm.push(Inst::MovMR {
                mem: MemOperand::absolute(ctx.scratch + j as u32),
                src: Gpr::Esi,
            });
            b.asm.push(Inst::MovMI {
                mem: MemOperand::absolute(ctx.scratch + j as u32 + 4),
                imm: rng.random_range(0..4096),
            });
            // A read-modify-write (three uops from one instruction).
            b.asm.push(Inst::AluMR {
                op: AluOp::Add,
                mem: MemOperand::absolute(ctx.scratch + j as u32 + 8),
                src: Gpr::Edx,
            });
        }
        Phrase::NopPad => {
            for _ in 0..rng.random_range(1..4usize) {
                b.asm.push(Inst::Nop);
            }
        }
        Phrase::DivChain => {
            let k = 4 * rng.random_range(0..TABLE_LEN as u32);
            b.asm.push(Inst::MovRR {
                dst: Gpr::Eax,
                src: Gpr::Esi,
            });
            b.asm.push(Inst::Cdq);
            b.asm.push(Inst::MovRM {
                dst: Gpr::Ebx,
                mem: MemOperand::absolute(ctx.data_table + k),
            });
            b.asm.push(Inst::DivR { src: Gpr::Ebx });
            b.asm.push(Inst::AluRR {
                op: AluOp::Add,
                dst: Gpr::Esi,
                src: Gpr::Edx,
            });
        }
        Phrase::SwitchJump => {
            // Per-phrase index table: mostly case 0, sometimes others.
            let cases = 3usize;
            let words: Vec<u32> = (0..TABLE_LEN)
                .map(|_| {
                    if rng.random_bool(ctx.switch_varied) {
                        rng.random_range(1..cases as u32)
                    } else {
                        0
                    }
                })
                .collect();
            let idx_table = b.alloc_words(&words);
            let case_ptrs = b.reserve_words(cases);
            let merge = b.asm.new_label();
            b.asm.push(Inst::MovRM {
                dst: Gpr::Eax,
                mem: indexed(idx_table, 0),
            });
            b.asm.push(Inst::MovRM {
                dst: Gpr::Ebx,
                mem: MemOperand {
                    base: None,
                    index: Some((Gpr::Eax, 4)),
                    disp: case_ptrs as i32,
                },
            });
            b.asm.push(Inst::JmpInd { r: Gpr::Ebx });
            let mut case_addrs = Vec::with_capacity(cases);
            for c in 0..cases {
                case_addrs.push(b.asm.here());
                b.asm.push(Inst::AluRI {
                    op: AluOp::Add,
                    dst: Gpr::Edx,
                    imm: c as i32 + 1,
                });
                if c + 1 != cases {
                    b.asm.jmp(merge);
                }
            }
            b.asm.bind(merge);
            b.patch_words(case_ptrs, &case_addrs);
        }
        Phrase::BranchMaze => {
            // Three coin-flip branches in quick succession; any frame
            // started here dies under the 8-uop minimum. Directions mix a
            // table word with the rolling accumulator so they are
            // aperiodic (never falsely biased).
            for k in 0..3 {
                let other = b.asm.new_label();
                let merge = b.asm.new_label();
                b.asm.push(Inst::MovRR {
                    dst: Gpr::Eax,
                    src: Gpr::Esi,
                });
                b.asm.push(Inst::AluRM {
                    op: AluOp::Add,
                    dst: Gpr::Eax,
                    mem: indexed(ctx.data_table, word_off(rng)),
                });
                b.asm.push(Inst::TestRI {
                    a: Gpr::Eax,
                    imm: 1 << k,
                });
                b.asm.jcc(CondX86::Nz, other);
                b.asm.push(Inst::IncR { r: Gpr::Edx });
                b.asm.jmp(merge);
                b.asm.bind(other);
                b.asm.push(Inst::DecR { r: Gpr::Edx });
                b.asm.bind(merge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_workloads_match_table1() {
        let ws = all();
        assert_eq!(ws.len(), 14);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::SpecInt).count(), 7);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::Desktop).count(), 7);
        // Table 1 segment counts.
        assert_eq!(by_name("excel").unwrap().segments, 3);
        assert_eq!(by_name("power").unwrap().segments, 3);
        assert_eq!(by_name("sound").unwrap().segments, 3);
        assert_eq!(by_name("access").unwrap().segments, 2);
        assert_eq!(by_name("bzip2").unwrap().segments, 1);
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn every_workload_runs_without_faulting() {
        for w in all() {
            for seg in 0..w.segments {
                let t = w.segment_trace(seg, 3_000);
                assert!(t.len() >= 2_900, "{} segment {seg} too short", w.name);
            }
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let w = by_name("crafty").unwrap();
        let a = w.segment_trace(0, 2_000);
        let b = w.segment_trace(0, 2_000);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn segments_differ() {
        let w = by_name("excel").unwrap();
        let a = w.segment_trace(0, 2_000);
        let b = w.segment_trace(1, 2_000);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn branch_and_memory_mix_is_realistic() {
        for w in all() {
            let t = w.segment_trace(0, 5_000);
            let bf = t.branch_fraction();
            let mf = t.memory_fraction();
            assert!(
                (0.02..0.40).contains(&bf),
                "{}: branch fraction {bf}",
                w.name
            );
            assert!(
                (0.15..0.75).contains(&mf),
                "{}: memory fraction {mf}",
                w.name
            );
        }
    }

    #[test]
    fn excel_aliases_more_than_spec() {
        // The pointer table of excel actually hits the hot slot.
        let w = by_name("excel").unwrap();
        let t = w.segment_trace(0, 20_000);
        // Find stores to the hot slot issued through the pointer (i.e.
        // register-based stores landing on the absolute hot address used
        // by MovMR-to-hot in the same phrase).
        let mut hot_addrs = std::collections::HashMap::new();
        for r in t.records() {
            for (a, _) in &r.mem_writes {
                *hot_addrs.entry(*a).or_insert(0u32) += 1;
            }
        }
        // Some address is written through two different instructions
        // (absolute + pointer) — a genuine aliasing event.
        let max_writes = hot_addrs.values().copied().max().unwrap_or(0);
        assert!(max_writes > 100, "hot slot exists: {max_writes}");
    }

    #[test]
    fn spec_digest_is_sensitive_to_every_parameter() {
        // Satellite: any single-parameter change must change the digest.
        // A digest blind to one axis would let the trace cache serve a
        // stale trace for a perturbed clone.
        let base = by_name("crafty").unwrap();
        let d0 = base.spec_digest();

        let rebuilt = |params: GenParams| {
            Workload::custom(
                base.name.clone(),
                base.suite,
                base.segments,
                base.default_segment_len,
                params,
            )
            .spec_digest()
        };
        let p0 = *base.params();

        // Name / structural fields.
        let mut w2 = base.clone();
        w2.name = "crafty2".to_string();
        assert_ne!(w2.spec_digest(), d0, "name");
        assert_ne!(
            Workload::custom(
                base.name.clone(),
                Suite::Desktop,
                base.segments,
                base.default_segment_len,
                p0
            )
            .spec_digest(),
            d0,
            "suite"
        );
        assert_ne!(
            Workload::custom(
                base.name.clone(),
                base.suite,
                base.segments + 1,
                base.default_segment_len,
                p0
            )
            .spec_digest(),
            d0,
            "segments"
        );
        assert_ne!(
            Workload::custom(
                base.name.clone(),
                base.suite,
                base.segments,
                base.default_segment_len + 1,
                p0
            )
            .spec_digest(),
            d0,
            "default_segment_len"
        );

        // Generation parameters, one axis at a time.
        let mut p = p0;
        p.seed ^= 1;
        assert_ne!(rebuilt(p), d0, "seed");
        let mut p = p0;
        p.body_phrases += 1;
        assert_ne!(rebuilt(p), d0, "body_phrases");
        for (i, phrase) in PHRASE_NAMES.iter().enumerate() {
            let mut p = p0;
            p.weights[i] += 1;
            assert_ne!(rebuilt(p), d0, "weights[{i}] ({phrase})");
        }
        let mut p = p0;
        p.bias_frac += 0.001;
        assert_ne!(rebuilt(p), d0, "bias_frac");
        let mut p = p0;
        p.alias_rate += 0.001;
        assert_ne!(rebuilt(p), d0, "alias_rate");
        let mut p = p0;
        p.shared_callees = !p.shared_callees;
        assert_ne!(rebuilt(p), d0, "shared_callees");
        let mut p = p0;
        p.switch_varied += 0.001;
        assert_ne!(rebuilt(p), d0, "switch_varied");
        let mut p = p0;
        p.longflow = !p.longflow;
        assert_ne!(rebuilt(p), d0, "longflow");

        // And the identity case holds: rebuilding unchanged digests equal.
        assert_eq!(rebuilt(p0), d0, "unchanged params must digest equal");
    }

    #[test]
    fn custom_workload_matches_suite_twin() {
        // A `custom` workload rebuilt from a suite entry's own parameters
        // generates the identical trace (name participates in the trace
        // label only through Trace::name).
        let w = by_name("gzip").unwrap();
        let twin = Workload::custom(
            w.name.clone(),
            w.suite,
            w.segments,
            w.default_segment_len,
            *w.params(),
        );
        assert_eq!(twin.spec_digest(), w.spec_digest());
        assert_eq!(
            twin.segment_trace(0, 2_000).records(),
            w.segment_trace(0, 2_000).records()
        );
    }

    #[test]
    fn uop_ratio_near_paper() {
        // §5.1.1: average uop-to-x86 ratio ≈ 1.4.
        let mut total_x86 = 0u64;
        let mut total_uop = 0u64;
        for w in all() {
            let (program, data) = w.segment_program(0);
            let mut interp = Interp::new(program);
            for (addr, bytes) in &data {
                interp.machine.mem.write_bytes(*addr, bytes);
            }
            interp.run(5_000).unwrap();
            total_x86 += interp.translator().x86_count();
            total_uop += interp.translator().uop_count();
        }
        let ratio = total_uop as f64 / total_x86 as f64;
        assert!(
            (1.25..1.55).contains(&ratio),
            "uop/x86 ratio {ratio:.3} out of band"
        );
    }
}
