//! Trace records.

use replay_x86::{Inst, StepRecord};

/// The record of one dynamic x86 instruction, as carried in a trace file.
///
/// Mirrors the content the paper attributes to its hardware trace records
/// (§5.1.1): "instruction data, register state changes, memory
/// transactions, and interrupt information for each x86 instruction". In
/// this reproduction the instruction is stored decoded; interrupts appear
/// as `LongFlow` instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction address.
    pub addr: u32,
    /// Encoded length in bytes.
    pub len: u8,
    /// The decoded instruction.
    pub inst: Inst,
    /// Address of the next instruction actually executed.
    pub next_pc: u32,
    /// Register state changes `(register index, new value)`, in uop order.
    pub reg_writes: Vec<(u8, u32)>,
    /// Memory reads `(address, value)`, in uop order.
    pub mem_reads: Vec<(u32, u32)>,
    /// Memory writes `(address, value)`, in uop order.
    pub mem_writes: Vec<(u32, u32)>,
    /// Packed architectural flags after the instruction
    /// ([`replay_uop::Flags::to_bits`]).
    pub flags_after: u8,
}

impl TraceRecord {
    /// Builds a record from an interpreter step.
    pub fn from_step(step: &StepRecord) -> TraceRecord {
        let mut reg_writes = Vec::new();
        let mut mem_reads = Vec::new();
        let mut mem_writes = Vec::new();
        for e in &step.uops {
            if let Some((r, v)) = e.effect.reg_write {
                reg_writes.push((r.index() as u8, v));
            }
            if let Some(rw) = e.effect.mem_read {
                mem_reads.push(rw);
            }
            if let Some(w) = e.effect.mem_write {
                mem_writes.push(w);
            }
        }
        TraceRecord {
            addr: step.addr,
            len: step.len,
            inst: step.inst,
            next_pc: step.next_pc,
            reg_writes,
            mem_reads,
            mem_writes,
            flags_after: step.flags_after.to_bits(),
        }
    }

    /// The fall-through address (`addr + len`).
    pub fn fallthrough(&self) -> u32 {
        self.addr + self.len as u32
    }

    /// For conditional branches, whether the branch was taken.
    pub fn taken(&self) -> Option<bool> {
        match self.inst {
            Inst::Jcc { target, .. } => Some(self.next_pc == target),
            _ => None,
        }
    }

    /// True if the instruction performed any memory access.
    pub fn touches_memory(&self) -> bool {
        !self.mem_reads.is_empty() || !self.mem_writes.is_empty()
    }
}

/// A dynamic instruction trace: one "hot spot" of an application.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Name of the workload the trace came from.
    pub name: String,
    /// Architectural register values at the first record (indexed like
    /// [`replay_uop::ArchReg`]). Hardware traces carry the register state;
    /// without it, a frame fetched before a register's first recorded
    /// write would execute from a wrong entry state.
    pub init_regs: [u32; replay_uop::NUM_ARCH_REGS],
    /// Packed architectural flags at the first record.
    pub init_flags: u8,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace from records with a zeroed initial state.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Trace {
        Trace {
            name: name.into(),
            init_regs: [0; replay_uop::NUM_ARCH_REGS],
            init_flags: 0,
            records,
        }
    }

    /// Sets the initial architectural state (builder style).
    pub fn with_init(mut self, regs: [u32; replay_uop::NUM_ARCH_REGS], flags: u8) -> Trace {
        self.init_regs = regs;
        self.init_flags = flags;
        self
    }

    /// The records, in execution order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of dynamic x86 instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of dynamic instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let b = self.records.iter().filter(|r| r.taken().is_some()).count();
        b as f64 / self.records.len() as f64
    }

    /// Fraction of dynamic instructions that touch memory.
    pub fn memory_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let m = self.records.iter().filter(|r| r.touches_memory()).count();
        m as f64 / self.records.len() as f64
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Trace {
        Trace::new(String::new(), iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_x86::{Assembler, Gpr, Interp, MemOperand};

    fn sample_trace() -> Trace {
        let mut asm = Assembler::new(0x1000);
        asm.push(Inst::MovRI {
            dst: Gpr::Eax,
            imm: 3,
        });
        asm.push(Inst::MovMR {
            mem: MemOperand::absolute(0x9000),
            src: Gpr::Eax,
        });
        asm.push(Inst::MovRM {
            dst: Gpr::Ebx,
            mem: MemOperand::absolute(0x9000),
        });
        asm.push(Inst::Ret);
        let mut interp = Interp::new(asm.finish());
        let steps = interp.run(100).unwrap();
        Trace::new("sample", steps.iter().map(TraceRecord::from_step).collect())
    }

    #[test]
    fn records_capture_effects() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        let r = &t.records()[1];
        assert_eq!(r.mem_writes, vec![(0x9000, 3)]);
        assert!(r.touches_memory());
        let r = &t.records()[2];
        assert_eq!(r.mem_reads, vec![(0x9000, 3)]);
        assert_eq!(r.reg_writes, vec![(Gpr::Ebx.code(), 3)]);
    }

    #[test]
    fn fractions() {
        let t = sample_trace();
        assert_eq!(t.branch_fraction(), 0.0);
        // store + load + RET's return-address load = 3 of 4.
        assert!((t.memory_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(Trace::default().memory_fraction(), 0.0);
    }

    #[test]
    fn fallthrough_and_taken() {
        let t = sample_trace();
        let r = &t.records()[0];
        assert_eq!(r.fallthrough(), r.addr + r.len as u32);
        assert_eq!(r.taken(), None);
    }
}
