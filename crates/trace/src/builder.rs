//! Program construction helpers: code + data segments.

use replay_x86::{Assembler, Program};

/// Builds a program image together with its initialized data segments.
///
/// Wraps the [`Assembler`] with a bump allocator for data words and
/// supports *deferred* data (e.g. jump tables whose entries are code
/// addresses that are only known after the code is emitted).
#[derive(Debug)]
pub struct ProgramBuilder {
    /// The underlying assembler (public: phrase emitters drive it
    /// directly).
    pub asm: Assembler,
    data: Vec<(u32, Vec<u8>)>,
    next_data: u32,
    patches: Vec<(u32, Vec<u32>)>,
}

impl ProgramBuilder {
    /// Creates a builder placing code at `code_base` and data at
    /// `data_base`.
    pub fn new(code_base: u32, data_base: u32) -> ProgramBuilder {
        ProgramBuilder {
            asm: Assembler::new(code_base),
            data: Vec::new(),
            next_data: data_base,
            patches: Vec::new(),
        }
    }

    /// Allocates and initializes a run of 32-bit words; returns its
    /// address.
    pub fn alloc_words(&mut self, words: &[u32]) -> u32 {
        let addr = self.next_data;
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.next_data += bytes.len() as u32;
        self.data.push((addr, bytes));
        addr
    }

    /// Reserves `n` zeroed words; returns the address. Use
    /// [`ProgramBuilder::patch_words`] to fill them later.
    pub fn reserve_words(&mut self, n: usize) -> u32 {
        self.alloc_words(&vec![0u32; n])
    }

    /// Overwrites previously allocated words (e.g. a jump table) once
    /// their values are known.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not returned by an allocation, or the patch
    /// runs past the allocation.
    pub fn patch_words(&mut self, addr: u32, words: &[u32]) {
        self.patches.push((addr, words.to_vec()));
    }

    /// Finalizes the program. Returns the program and its data segments
    /// (`(address, bytes)` pairs to seed into machine memory).
    ///
    /// # Panics
    ///
    /// Panics on unbound labels or invalid patches.
    pub fn finish(mut self) -> (Program, Vec<(u32, Vec<u8>)>) {
        for (addr, words) in std::mem::take(&mut self.patches) {
            let seg = self
                .data
                .iter_mut()
                .find(|(base, bytes)| addr >= *base && addr < *base + bytes.len() as u32)
                .unwrap_or_else(|| panic!("patch at {addr:#x} outside any allocation"));
            let off = (addr - seg.0) as usize;
            assert!(
                off + words.len() * 4 <= seg.1.len(),
                "patch overruns allocation"
            );
            for (i, w) in words.iter().enumerate() {
                seg.1[off + i * 4..off + i * 4 + 4].copy_from_slice(&w.to_le_bytes());
            }
        }
        (self.asm.finish(), self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_x86::Inst;

    #[test]
    fn data_allocation_is_contiguous() {
        let mut b = ProgramBuilder::new(0x1000, 0x8000);
        let a = b.alloc_words(&[1, 2, 3]);
        let c = b.alloc_words(&[4]);
        assert_eq!(a, 0x8000);
        assert_eq!(c, 0x800c);
        b.asm.push(Inst::Ret);
        let (p, data) = b.finish();
        assert_eq!(p.base, 0x1000);
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].1, vec![1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
    }

    #[test]
    fn reserve_and_patch() {
        let mut b = ProgramBuilder::new(0x1000, 0x8000);
        let t = b.reserve_words(2);
        b.patch_words(t + 4, &[0xdead_beef]);
        b.asm.push(Inst::Ret);
        let (_, data) = b.finish();
        assert_eq!(&data[0].1[4..8], &0xdead_beefu32.to_le_bytes());
        assert_eq!(&data[0].1[..4], &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "outside any allocation")]
    fn patch_outside_allocation_panics() {
        let mut b = ProgramBuilder::new(0x1000, 0x8000);
        b.patch_words(0x9000, &[1]);
        b.asm.push(Inst::Ret);
        let _ = b.finish();
    }
}
