//! Functional semantics of ALU micro-operations.
//!
//! The evaluator here is the single source of truth for what an ALU uop
//! computes. It is used by the architectural machine ([`crate::MachineState`]),
//! by the optimizer's constant-propagation pass, and by the state verifier —
//! all three see identical results by construction.

use crate::{Flags, Opcode};

/// The result of evaluating an ALU micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The 32-bit value result. Flags-only ops (`Cmp`, `Test`) report the
    /// value of the underlying arithmetic, which is discarded by callers.
    pub value: u32,
    /// The flags the operation would set if it writes flags.
    pub flags: Flags,
}

/// Errors from ALU evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluError {
    /// Division or remainder by zero (x86 `#DE`).
    DivideByZero,
    /// The opcode is not an ALU opcode.
    NotAlu(Opcode),
}

impl std::fmt::Display for AluError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AluError::DivideByZero => write!(f, "division by zero"),
            AluError::NotAlu(op) => write!(f, "opcode {op} is not an ALU operation"),
        }
    }
}

impl std::error::Error for AluError {}

/// Evaluates an ALU micro-operation over concrete operands.
///
/// `a` and `b` are the resolved source values; for register-immediate forms
/// the caller passes the (sign-extended) immediate as `b`. For `MovImm` only
/// `b` is meaningful. For `Lea` the caller must pre-scale: pass
/// `index*scale + disp` as `b`.
///
/// Flag semantics follow real x86: shifts set CF to the last bit shifted
/// out and define OF on 1-bit shifts (`SHL`: CF xor the result's sign bit;
/// `SHR`: the operand's original sign bit; `SAR`: cleared), and `Mul` sets
/// CF=OF exactly when the unsigned 64-bit product does not fit in 32 bits
/// (the low 32 result bits are signedness-agnostic). OF after a multi-bit
/// shift is architecturally *undefined*; this model resolves "undefined"
/// as "preserved prior OF" — a behavior real implementations are permitted
/// to (and some do) exhibit — so a multi-bit shift is a flags reader as
/// well as a writer.
///
/// This form is stateless: a shift by a masked count of zero reports
/// [`Flags::CLEAR`]. Callers that track architectural flags must use
/// [`eval_alu_with_flags`], which preserves the previous flags in that case
/// as real x86 does.
///
/// # Errors
///
/// Returns [`AluError::DivideByZero`] for `Div`/`Rem` with `b == 0`, and
/// [`AluError::NotAlu`] if `op` is not an ALU opcode.
pub fn eval_alu(op: Opcode, a: u32, b: u32) -> Result<AluResult, AluError> {
    eval_alu_with_flags(op, a, b, Flags::CLEAR)
}

/// Evaluates an ALU micro-operation with the incoming architectural flags.
///
/// Identical to [`eval_alu`] except that `prev` supplies the flags in effect
/// before the operation. The only opcodes that read them are the shifts:
/// on x86 a shift by a masked count of zero is a complete no-op that leaves
/// every flag untouched, so `Shl`/`Shr`/`Sar` with `b & 31 == 0` return
/// `prev` unchanged instead of recomputing ZF/SF/PF from the (unchanged)
/// value; and a shift by a masked count greater than one leaves OF
/// architecturally undefined, which this model resolves as "`prev.of`
/// carried through".
///
/// # Errors
///
/// Same as [`eval_alu`].
pub fn eval_alu_with_flags(op: Opcode, a: u32, b: u32, prev: Flags) -> Result<AluResult, AluError> {
    let r = match op {
        Opcode::Add => AluResult {
            value: a.wrapping_add(b),
            flags: Flags::from_add(a, b),
        },
        Opcode::Sub => AluResult {
            value: a.wrapping_sub(b),
            flags: Flags::from_sub(a, b),
        },
        Opcode::Cmp => AluResult {
            value: a.wrapping_sub(b),
            flags: Flags::from_sub(a, b),
        },
        Opcode::And | Opcode::Test => AluResult {
            value: a & b,
            flags: Flags::from_logic_result(a & b),
        },
        Opcode::Or => AluResult {
            value: a | b,
            flags: Flags::from_logic_result(a | b),
        },
        Opcode::Xor => AluResult {
            value: a ^ b,
            flags: Flags::from_logic_result(a ^ b),
        },
        Opcode::Shl => {
            let c = b & 31;
            if c == 0 {
                // A zero-count shift is a complete no-op on x86: the value
                // and every flag are left untouched.
                AluResult {
                    value: a,
                    flags: prev,
                }
            } else {
                let v = a.wrapping_shl(c);
                let mut flags = Flags::from_logic_result(v);
                // CF is the last bit shifted out: bit (32 - c) of the
                // original operand. OF is defined only for 1-bit shifts,
                // where it flags a sign change (CF xor the result's MSB);
                // for wider counts it is undefined and modeled as the
                // prior OF carried through.
                flags.cf = (a >> (32 - c)) & 1 != 0;
                flags.of = if c == 1 {
                    flags.cf != (v & 0x8000_0000 != 0)
                } else {
                    prev.of
                };
                AluResult { value: v, flags }
            }
        }
        Opcode::Shr => {
            let c = b & 31;
            if c == 0 {
                AluResult {
                    value: a,
                    flags: prev,
                }
            } else {
                let v = a.wrapping_shr(c);
                let mut flags = Flags::from_logic_result(v);
                // CF is the last bit shifted out: bit (c - 1) of the
                // original operand. On a 1-bit SHR, OF is the operand's
                // original sign bit (the sign necessarily changes to 0);
                // wider counts leave it undefined — modeled as preserved.
                flags.cf = (a >> (c - 1)) & 1 != 0;
                flags.of = if c == 1 {
                    a & 0x8000_0000 != 0
                } else {
                    prev.of
                };
                AluResult { value: v, flags }
            }
        }
        Opcode::Sar => {
            let c = b & 31;
            if c == 0 {
                AluResult {
                    value: a,
                    flags: prev,
                }
            } else {
                let v = ((a as i32).wrapping_shr(c)) as u32;
                let mut flags = Flags::from_logic_result(v);
                // CF as for SHR; OF is cleared on 1-bit SAR (the sign is
                // replicated, so it can never change), and undefined —
                // modeled as preserved — for wider counts.
                flags.cf = (a >> (c - 1)) & 1 != 0;
                flags.of = if c == 1 { false } else { prev.of };
                AluResult { value: v, flags }
            }
        }
        Opcode::Mul => {
            let wide = (a as u64) * (b as u64);
            let v = wide as u32;
            let overflow = wide > u32::MAX as u64;
            let mut flags = Flags::from_logic_result(v);
            flags.cf = overflow;
            flags.of = overflow;
            AluResult { value: v, flags }
        }
        Opcode::Div => {
            if b == 0 {
                return Err(AluError::DivideByZero);
            }
            let v = a / b;
            AluResult {
                value: v,
                flags: Flags::CLEAR,
            }
        }
        Opcode::Rem => {
            if b == 0 {
                return Err(AluError::DivideByZero);
            }
            let v = a % b;
            AluResult {
                value: v,
                flags: Flags::CLEAR,
            }
        }
        Opcode::Not => AluResult {
            value: !a,
            flags: Flags::CLEAR,
        },
        Opcode::Neg => {
            let v = 0u32.wrapping_sub(a);
            AluResult {
                value: v,
                flags: Flags::from_sub(0, a),
            }
        }
        Opcode::Mov => AluResult {
            value: a,
            flags: Flags::CLEAR,
        },
        Opcode::MovImm => AluResult {
            value: b,
            flags: Flags::CLEAR,
        },
        Opcode::Lea => AluResult {
            value: a.wrapping_add(b),
            flags: Flags::CLEAR,
        },
        other => return Err(AluError::NotAlu(other)),
    };
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(eval_alu(Opcode::Add, 2, 3).unwrap().value, 5);
        assert_eq!(eval_alu(Opcode::Sub, 2, 3).unwrap().value, u32::MAX);
        assert_eq!(eval_alu(Opcode::Mul, 6, 7).unwrap().value, 42);
        assert_eq!(eval_alu(Opcode::Div, 42, 5).unwrap().value, 8);
        assert_eq!(eval_alu(Opcode::Rem, 42, 5).unwrap().value, 2);
        assert_eq!(eval_alu(Opcode::Neg, 1, 0).unwrap().value, u32::MAX);
        assert_eq!(eval_alu(Opcode::Not, 0, 0).unwrap().value, u32::MAX);
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(eval_alu(Opcode::And, 0b1100, 0b1010).unwrap().value, 0b1000);
        assert_eq!(eval_alu(Opcode::Or, 0b1100, 0b1010).unwrap().value, 0b1110);
        assert_eq!(eval_alu(Opcode::Xor, 0b1100, 0b1010).unwrap().value, 0b0110);
        assert_eq!(eval_alu(Opcode::Shl, 1, 4).unwrap().value, 16);
        assert_eq!(eval_alu(Opcode::Shr, 0x8000_0000, 31).unwrap().value, 1);
        assert_eq!(
            eval_alu(Opcode::Sar, 0x8000_0000, 31).unwrap().value,
            u32::MAX
        );
        // Shift counts are masked to 5 bits, as on x86.
        assert_eq!(eval_alu(Opcode::Shl, 1, 32).unwrap().value, 1);
    }

    #[test]
    fn moves() {
        assert_eq!(eval_alu(Opcode::Mov, 9, 0).unwrap().value, 9);
        assert_eq!(eval_alu(Opcode::MovImm, 0, 77).unwrap().value, 77);
        assert_eq!(eval_alu(Opcode::Lea, 100, 28).unwrap().value, 128);
        // MOV does not write flags: the result carries a cleared flag set.
        assert_eq!(eval_alu(Opcode::Mov, 0, 0).unwrap().flags, Flags::CLEAR);
    }

    #[test]
    fn divide_by_zero() {
        assert_eq!(
            eval_alu(Opcode::Div, 1, 0).unwrap_err(),
            AluError::DivideByZero
        );
        assert_eq!(
            eval_alu(Opcode::Rem, 1, 0).unwrap_err(),
            AluError::DivideByZero
        );
    }

    #[test]
    fn non_alu_rejected() {
        assert!(matches!(
            eval_alu(Opcode::Load, 0, 0),
            Err(AluError::NotAlu(Opcode::Load))
        ));
        assert!(matches!(
            eval_alu(Opcode::Br, 0, 0),
            Err(AluError::NotAlu(_))
        ));
    }

    #[test]
    fn cmp_test_flags_match_sub_and() {
        let c = eval_alu(Opcode::Cmp, 5, 5).unwrap();
        assert!(c.flags.zf);
        let t = eval_alu(Opcode::Test, 0b01, 0b10).unwrap();
        assert!(t.flags.zf);
    }

    #[test]
    fn mul_overflow_flags() {
        let r = eval_alu(Opcode::Mul, 0x0001_0000, 0x0001_0000).unwrap();
        assert!(r.flags.cf && r.flags.of);
        let r = eval_alu(Opcode::Mul, 3, 4).unwrap();
        assert!(!r.flags.cf && !r.flags.of);
    }

    #[test]
    fn mul_overflow_is_unsigned() {
        // -1 * 2 fits as a signed product but overflows the unsigned
        // 32-bit range (0xFFFF_FFFF * 2 = 0x1_FFFF_FFFE): CF=OF set.
        let r = eval_alu(Opcode::Mul, 0xFFFF_FFFF, 2).unwrap();
        assert_eq!(r.value, 0xFFFF_FFFE);
        assert!(r.flags.cf && r.flags.of, "unsigned overflow sets CF=OF");
        // The largest non-overflowing unsigned product.
        let r = eval_alu(Opcode::Mul, 0xFFFF_FFFF, 1).unwrap();
        assert!(!r.flags.cf && !r.flags.of);
    }

    #[test]
    fn shl_carry_is_last_bit_shifted_out() {
        // Bit 31 of the operand falls out on a 1-bit left shift.
        let r = eval_alu(Opcode::Shl, 0x8000_0001, 1).unwrap();
        assert_eq!(r.value, 2);
        assert!(r.flags.cf);
        let r = eval_alu(Opcode::Shl, 0x4000_0000, 1).unwrap();
        assert!(!r.flags.cf);
        // A wider shift: bit (32 - c) of the original operand.
        let r = eval_alu(Opcode::Shl, 0x1000_0000, 4).unwrap();
        assert_eq!(r.value, 0);
        assert!(r.flags.cf, "bit 28 is the last one shifted out by SHL 4");
        assert!(!r.flags.of, "OF preserved: stateless prev is CLEAR");
    }

    #[test]
    fn multi_bit_shift_preserves_prior_of() {
        // OF after a shift by more than one bit is architecturally
        // undefined; the model pins it to "previous OF carried through",
        // making the shift a flags reader the dataflow must honor.
        let mut set = Flags::CLEAR;
        set.of = true;
        for op in [Opcode::Shl, Opcode::Shr, Opcode::Sar] {
            for count in [2u32, 4, 17, 31] {
                let r = eval_alu_with_flags(op, 0x8000_0401, count, set).unwrap();
                assert!(r.flags.of, "{op:?} by {count} must carry OF=1 through");
                let r = eval_alu_with_flags(op, 0x8000_0401, count, Flags::CLEAR).unwrap();
                assert!(!r.flags.of, "{op:?} by {count} must carry OF=0 through");
            }
            // A 1-bit shift still *defines* OF, ignoring the prior value.
            let one = eval_alu_with_flags(op, 0x8000_0401, 1, set).unwrap();
            let alt = eval_alu_with_flags(op, 0x8000_0401, 1, Flags::CLEAR).unwrap();
            assert_eq!(one.flags.of, alt.flags.of, "{op:?} by 1 defines OF");
        }
    }

    #[test]
    fn shl_overflow_on_one_bit_shift_flags_sign_change() {
        // 0x40000000 << 1 = 0x80000000: sign appears, CF=0 -> OF set.
        let r = eval_alu(Opcode::Shl, 0x4000_0000, 1).unwrap();
        assert!(r.flags.of);
        // 0xC0000000 << 1 = 0x80000000 with CF=1: sign preserved, OF clear.
        let r = eval_alu(Opcode::Shl, 0xC000_0000, 1).unwrap();
        assert!(r.flags.cf && !r.flags.of);
    }

    #[test]
    fn shr_carry_and_overflow() {
        // CF is bit (c - 1) of the original operand.
        let r = eval_alu(Opcode::Shr, 0b1011, 2).unwrap();
        assert_eq!(r.value, 0b10);
        assert!(r.flags.cf, "bit 1 of the operand is shifted out last");
        let r = eval_alu(Opcode::Shr, 0b1001, 2).unwrap();
        assert!(!r.flags.cf);
        // On a 1-bit SHR, OF is the operand's original sign bit.
        let r = eval_alu(Opcode::Shr, 0x8000_0000, 1).unwrap();
        assert!(r.flags.of);
        let r = eval_alu(Opcode::Shr, 0x4000_0000, 1).unwrap();
        assert!(!r.flags.of);
    }

    #[test]
    fn zero_count_shift_preserves_previous_flags() {
        let prev = Flags {
            zf: true,
            sf: true,
            cf: true,
            of: true,
            pf: true,
        };
        for op in [Opcode::Shl, Opcode::Shr, Opcode::Sar] {
            // An explicit zero count and a count that masks to zero are both
            // complete no-ops: value and flags pass through untouched.
            for count in [0, 32, 64] {
                let r = eval_alu_with_flags(op, 0x8000_0001, count, prev).unwrap();
                assert_eq!(r.value, 0x8000_0001, "{op:?} by {count} must not move bits");
                assert_eq!(r.flags, prev, "{op:?} by {count} must preserve flags");
            }
            // A nonzero count still recomputes flags from the result.
            let r = eval_alu_with_flags(op, 0x8000_0001, 1, prev).unwrap();
            assert_ne!(r.flags, prev, "{op:?} by 1 must write flags");
        }
    }

    #[test]
    fn stateless_eval_alu_reports_clear_on_zero_count_shift() {
        let r = eval_alu(Opcode::Shl, 0x8000_0001, 0).unwrap();
        assert_eq!(r.value, 0x8000_0001);
        assert_eq!(r.flags, Flags::CLEAR, "stateless form passes CLEAR through");
    }

    #[test]
    fn sar_carry_set_overflow_clear() {
        let r = eval_alu(Opcode::Sar, 0x8000_0003, 1).unwrap();
        assert_eq!(r.value, 0xC000_0001);
        assert!(r.flags.cf, "bit 0 shifted out");
        assert!(!r.flags.of, "1-bit SAR never changes the sign");
        let r = eval_alu(Opcode::Sar, 0x8000_0000, 31).unwrap();
        assert_eq!(r.value, u32::MAX);
        assert!(!r.flags.cf, "bit 30 of the operand is zero");
        assert!(r.flags.sf && !r.flags.zf);
    }
}
