//! x86-style condition flags.

use std::fmt;

/// The architectural condition flags written by flag-setting uops and read by
/// conditional branches, assertions, and flag-consuming ALU ops.
///
/// This models the subset of x86 `EFLAGS` that the uop ISA exposes: zero,
/// sign, carry, overflow, and parity. Auxiliary carry is not modeled (no uop
/// in our decode flows consumes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Zero flag: result was zero.
    pub zf: bool,
    /// Sign flag: most significant bit of the result.
    pub sf: bool,
    /// Carry flag: unsigned overflow out of the result.
    pub cf: bool,
    /// Overflow flag: signed overflow of the result.
    pub of: bool,
    /// Parity flag: even parity of the low byte of the result.
    pub pf: bool,
}

impl Flags {
    /// All flags clear.
    pub const CLEAR: Flags = Flags {
        zf: false,
        sf: false,
        cf: false,
        of: false,
        pf: false,
    };

    /// Creates a cleared flags value.
    pub fn new() -> Flags {
        Flags::CLEAR
    }

    /// Computes the "logical" flags for a result: ZF/SF/PF from the value,
    /// CF and OF cleared. This is how x86 `AND`, `OR`, `XOR`, and `TEST` set
    /// flags.
    pub fn from_logic_result(value: u32) -> Flags {
        Flags {
            zf: value == 0,
            sf: (value as i32) < 0,
            cf: false,
            of: false,
            pf: even_parity(value as u8),
        }
    }

    /// Computes flags for an addition `a + b = result`.
    pub fn from_add(a: u32, b: u32) -> Flags {
        let (result, carry) = a.overflowing_add(b);
        let of = ((a ^ result) & (b ^ result)) & 0x8000_0000 != 0;
        Flags {
            zf: result == 0,
            sf: (result as i32) < 0,
            cf: carry,
            of,
            pf: even_parity(result as u8),
        }
    }

    /// Computes flags for a subtraction `a - b = result` (also used by `CMP`).
    pub fn from_sub(a: u32, b: u32) -> Flags {
        let (result, borrow) = a.overflowing_sub(b);
        let of = ((a ^ b) & (a ^ result)) & 0x8000_0000 != 0;
        Flags {
            zf: result == 0,
            sf: (result as i32) < 0,
            cf: borrow,
            of,
            pf: even_parity(result as u8),
        }
    }

    /// Packs the flags into a small integer (bit 0 = ZF, 1 = SF, 2 = CF,
    /// 3 = OF, 4 = PF). Useful for hashing and for the trace format.
    pub fn to_bits(self) -> u8 {
        (self.zf as u8)
            | (self.sf as u8) << 1
            | (self.cf as u8) << 2
            | (self.of as u8) << 3
            | (self.pf as u8) << 4
    }

    /// Unpacks flags from [`Flags::to_bits`] form. Bits above 4 are ignored.
    pub fn from_bits(bits: u8) -> Flags {
        Flags {
            zf: bits & 1 != 0,
            sf: bits & 2 != 0,
            cf: bits & 4 != 0,
            of: bits & 8 != 0,
            pf: bits & 16 != 0,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.cf { 'C' } else { '-' },
            if self.of { 'O' } else { '-' },
            if self.pf { 'P' } else { '-' },
        )
    }
}

/// True if the byte has an even number of set bits (x86 PF convention).
fn even_parity(byte: u8) -> bool {
    byte.count_ones().is_multiple_of(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_flags() {
        let f = Flags::from_logic_result(0);
        assert!(f.zf && !f.sf && !f.cf && !f.of && f.pf);
        let f = Flags::from_logic_result(0x8000_0000);
        assert!(!f.zf && f.sf);
        // 0x03 has two bits set -> even parity.
        assert!(Flags::from_logic_result(0x03).pf);
        // 0x01 has one bit -> odd parity.
        assert!(!Flags::from_logic_result(0x01).pf);
    }

    #[test]
    fn add_flags_carry_and_overflow() {
        // Unsigned wrap sets CF.
        let f = Flags::from_add(0xffff_ffff, 1);
        assert!(f.cf && f.zf && !f.of);
        // Signed overflow: MAX + 1.
        let f = Flags::from_add(0x7fff_ffff, 1);
        assert!(f.of && f.sf && !f.cf);
        // Plain addition.
        let f = Flags::from_add(2, 3);
        assert!(!f.cf && !f.of && !f.zf && !f.sf);
    }

    #[test]
    fn sub_flags_borrow_and_overflow() {
        // 0 - 1 borrows.
        let f = Flags::from_sub(0, 1);
        assert!(f.cf && f.sf && !f.zf);
        // MIN - 1 signed-overflows.
        let f = Flags::from_sub(0x8000_0000, 1);
        assert!(f.of && !f.sf);
        // Equal operands: zero result, no borrow.
        let f = Flags::from_sub(7, 7);
        assert!(f.zf && !f.cf && !f.of);
    }

    #[test]
    fn bits_roundtrip() {
        for bits in 0..32u8 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Flags::CLEAR.to_string(), "[-----]");
        let f = Flags::from_sub(0, 1);
        assert!(f.to_string().contains('C'));
    }
}
