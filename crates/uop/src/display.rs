//! Human-readable rendering of micro-operations in the paper's notation.
//!
//! The paper writes uops in a transfer style, e.g.
//! `SS:[ESP - 04H] <- EBP` for a stack store or `EDX,flags <- ECX | EBX` for
//! a flag-setting ALU op. [`Uop`]'s `Display` impl follows that notation so
//! that dumps of frames are directly comparable with Figure 2.

use crate::{Opcode, Uop};
use std::fmt;

fn fmt_disp(f: &mut fmt::Formatter<'_>, disp: i32) -> fmt::Result {
    if disp > 0 {
        write!(f, " + {:02X}H", disp)
    } else if disp < 0 {
        write!(f, " - {:02X}H", -(disp as i64))
    } else {
        Ok(())
    }
}

fn fmt_addr(f: &mut fmt::Formatter<'_>, u: &Uop) -> fmt::Result {
    write!(f, "[")?;
    match (u.src_a, u.src_b, u.op) {
        (Some(base), Some(index), Opcode::Load) => {
            write!(f, "{base} + {index}*{}", u.scale)?;
            fmt_disp(f, u.imm)?;
        }
        (Some(base), _, _) => {
            write!(f, "{base}")?;
            fmt_disp(f, u.imm)?;
        }
        (None, _, _) => {
            write!(f, "{:08X}H", u.imm as u32)?;
        }
    }
    write!(f, "]")
}

fn alu_symbol(op: Opcode) -> &'static str {
    match op {
        Opcode::Add => "+",
        Opcode::Sub => "-",
        Opcode::And => "&",
        Opcode::Or => "|",
        Opcode::Xor => "^",
        Opcode::Shl => "<<",
        Opcode::Shr => ">>",
        Opcode::Sar => ">>a",
        Opcode::Mul => "*",
        Opcode::Div => "/",
        Opcode::Rem => "%",
        _ => "?",
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Opcode::Nop => write!(f, "nop"),
            Opcode::Fence => write!(f, "fence"),
            Opcode::Jmp => write!(f, "jump {:08X}H", self.target),
            Opcode::JmpInd => {
                let r = self.src_a.map(|r| r.name()).unwrap_or("?");
                write!(f, "jump ({r})")
            }
            Opcode::Br => {
                let cc = self.cc.map(|c| c.mnemonic()).unwrap_or("?");
                write!(f, "if ({cc}) jump {:08X}H", self.target)
            }
            Opcode::Assert => {
                let cc = self.cc.map(|c| c.mnemonic()).unwrap_or("?");
                write!(f, "assert {cc}")
            }
            Opcode::AssertCmp | Opcode::AssertTest => {
                let cc = self.cc.map(|c| c.mnemonic()).unwrap_or("?");
                let a = self.src_a.map(|r| r.name()).unwrap_or("?");
                let link = if self.op == Opcode::AssertCmp {
                    "cmp"
                } else {
                    "test"
                };
                match self.src_b {
                    Some(b) => write!(f, "assert {cc} ({link} {a}, {b})"),
                    None => write!(f, "assert {cc} ({link} {a}, {:02X}H)", self.imm),
                }
            }
            Opcode::Load => {
                let dst = self.dst.map(|r| r.name()).unwrap_or("?");
                write!(f, "{dst} <- ")?;
                fmt_addr(f, self)
            }
            Opcode::Store => {
                fmt_addr(f, self)?;
                let data = self.src_b.map(|r| r.name()).unwrap_or("?");
                write!(f, " <- {data}")
            }
            Opcode::Mov => {
                let dst = self.dst.map(|r| r.name()).unwrap_or("?");
                let a = self.src_a.map(|r| r.name()).unwrap_or("?");
                write!(f, "{dst} <- {a}")
            }
            Opcode::MovImm => {
                let dst = self.dst.map(|r| r.name()).unwrap_or("?");
                write!(f, "{dst}")?;
                if self.writes_flags {
                    write!(f, ",flags")?;
                }
                write!(f, " <- {:X}H", self.imm as u32)
            }
            Opcode::Lea => {
                let dst = self.dst.map(|r| r.name()).unwrap_or("?");
                let a = self.src_a.map(|r| r.name()).unwrap_or("?");
                write!(f, "{dst} <- {a}")?;
                if let Some(idx) = self.src_b {
                    write!(f, " + {idx}*{}", self.scale)?;
                }
                fmt_disp(f, self.imm)
            }
            Opcode::Cmp | Opcode::Test => {
                let a = self.src_a.map(|r| r.name()).unwrap_or("?");
                let name = if self.op == Opcode::Cmp {
                    "cmp"
                } else {
                    "test"
                };
                match self.src_b {
                    Some(b) => write!(f, "flags <- {name} {a}, {b}"),
                    None => write!(f, "flags <- {name} {a}, {:02X}H", self.imm),
                }
            }
            Opcode::Not | Opcode::Neg => {
                let dst = self.dst.map(|r| r.name()).unwrap_or("?");
                let a = self.src_a.map(|r| r.name()).unwrap_or("?");
                let sym = if self.op == Opcode::Not { "~" } else { "-" };
                write!(f, "{dst}")?;
                if self.writes_flags {
                    write!(f, ",flags")?;
                }
                write!(f, " <- {sym}{a}")
            }
            op => {
                let dst = self.dst.map(|r| r.name()).unwrap_or("?");
                let a = self.src_a.map(|r| r.name()).unwrap_or("?");
                write!(f, "{dst}")?;
                if self.writes_flags {
                    write!(f, ",flags")?;
                }
                write!(f, " <- {a} {} ", alu_symbol(op))?;
                match self.src_b {
                    Some(b) => write!(f, "{b}"),
                    None => write!(f, "{:02X}H", self.imm),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, Cond};

    #[test]
    fn paper_notation() {
        // "SS:[ESP - 04H] <- EBP" (we omit the segment prefix).
        let st = Uop::store(ArchReg::Esp, -4, ArchReg::Ebp);
        assert_eq!(st.to_string(), "[ESP - 04H] <- EBP");

        // "ECX <- [ESP + 0CH]"
        let ld = Uop::load(ArchReg::Ecx, ArchReg::Esp, 0xc);
        assert_eq!(ld.to_string(), "ECX <- [ESP + 0CH]");

        // "EDX,flags <- ECX | EBX"
        let or = Uop::alu(Opcode::Or, ArchReg::Edx, ArchReg::Ecx, ArchReg::Ebx);
        assert_eq!(or.to_string(), "EDX,flags <- ECX | EBX");

        // "assert Z"
        let a = Uop::assert_cc(Cond::Eq);
        assert_eq!(a.to_string(), "assert Z");

        // "jump (ET2)"
        let j = Uop::jmp_ind(ArchReg::Et2);
        assert_eq!(j.to_string(), "jump (ET2)");
    }

    #[test]
    fn every_opcode_renders_nonempty() {
        for op in Opcode::ALL {
            let mut u = Uop::new(op);
            u.dst = Some(ArchReg::Eax);
            u.src_a = Some(ArchReg::Ebx);
            u.src_b = Some(ArchReg::Ecx);
            u.cc = Some(Cond::Eq);
            assert!(!u.to_string().is_empty(), "{op:?} renders empty");
        }
    }

    #[test]
    fn absolute_address_renders() {
        let ld = Uop::load_abs(ArchReg::Eax, 0x4000);
        assert_eq!(ld.to_string(), "EAX <- [00004000H]");
    }
}
