//! The micro-operation structure and its constructors.

use crate::{ArchReg, Cond, Opcode};

/// A symbolic memory reference: `base + index*scale + disp`.
///
/// The optimizer compares memory references *symbolically*: two references
/// are equivalent only if their base (and index) registers are the same and
/// their displacements and scales are literally equal (§6.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<ArchReg>,
    /// Scaled index register, if any.
    pub index: Option<ArchReg>,
    /// Scale applied to the index (1, 2, 4, or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i32,
}

impl MemRef {
    /// A reference with only a base register and displacement.
    pub fn base_disp(base: ArchReg, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// An absolute reference to a constant address.
    pub fn absolute(addr: i32) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: addr,
        }
    }
}

/// A micro-operation.
///
/// The format follows Figure 4 of the paper: an opcode, up to two register
/// sources, a destination, an immediate, and explicit flag information. Uops
/// also carry provenance (`x86_addr`, `last_of_x86`) linking them to the x86
/// instruction they were decoded from; the timing model uses `last_of_x86`
/// to count retired x86 instructions for effective-IPC reporting.
///
/// Operand conventions by opcode:
///
/// * ALU ops: `dst = src_a OP src_b`, or `dst = src_a OP imm` when `src_b`
///   is `None`.
/// * `Load`: `dst = mem32[src_a + src_b*scale + imm]` (`src_a` base,
///   `src_b` optional index).
/// * `Store`: `mem32[src_a + imm] = src_b` (`src_a` base, `src_b` data).
///   Store addresses never use an index register; the translator computes
///   indexed store addresses into a temporary with `Lea` first. This keeps
///   every uop within two register sources, mirroring how real x86
///   implementations split stores into address and data components.
/// * `Br`/`Assert`: evaluate `cc` over the incoming flags.
/// * `AssertCmp`/`AssertTest`: evaluate `cc` over the flags of
///   `src_a - src_b_or_imm` / `src_a & src_b_or_imm`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Uop {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the uop produces a value.
    pub dst: Option<ArchReg>,
    /// First register source (base register for memory ops).
    pub src_a: Option<ArchReg>,
    /// Second register source (index for loads, data for stores).
    pub src_b: Option<ArchReg>,
    /// Immediate operand / memory displacement / shift count.
    pub imm: i32,
    /// Index scale for `Load`/`Lea` (1, 2, 4, or 8).
    pub scale: u8,
    /// Condition code for `Br`/`Assert*` uops.
    pub cc: Option<Cond>,
    /// True if the uop writes the architectural flags.
    pub writes_flags: bool,
    /// Branch target for `Jmp`/`Br` (x86 address space).
    pub target: u32,
    /// Address of the parent x86 instruction.
    pub x86_addr: u32,
    /// True for the final uop of an x86 instruction's decode flow.
    pub last_of_x86: bool,
}

impl Uop {
    /// Creates a uop with the given opcode and no operands; fields are
    /// filled in by the caller or by the typed constructors below.
    pub fn new(op: Opcode) -> Uop {
        Uop {
            op,
            dst: None,
            src_a: None,
            src_b: None,
            imm: 0,
            scale: 1,
            cc: None,
            writes_flags: false,
            target: 0,
            x86_addr: 0,
            last_of_x86: false,
        }
    }

    /// Two-register ALU op: `dst = a OP b`. Writes flags.
    pub fn alu(op: Opcode, dst: ArchReg, a: ArchReg, b: ArchReg) -> Uop {
        debug_assert!(op.is_alu());
        Uop {
            dst: Some(dst),
            src_a: Some(a),
            src_b: Some(b),
            writes_flags: !matches!(op, Opcode::Mov | Opcode::MovImm | Opcode::Lea),
            ..Uop::new(op)
        }
    }

    /// Register-immediate ALU op: `dst = a OP imm`. Writes flags.
    pub fn alu_imm(op: Opcode, dst: ArchReg, a: ArchReg, imm: i32) -> Uop {
        debug_assert!(op.is_alu());
        Uop {
            dst: Some(dst),
            src_a: Some(a),
            imm,
            writes_flags: !matches!(op, Opcode::Mov | Opcode::MovImm | Opcode::Lea),
            ..Uop::new(op)
        }
    }

    /// Register move: `dst = src`. Does not write flags (x86 `MOV`).
    pub fn mov(dst: ArchReg, src: ArchReg) -> Uop {
        Uop {
            dst: Some(dst),
            src_a: Some(src),
            ..Uop::new(Opcode::Mov)
        }
    }

    /// Immediate move: `dst = imm`. Does not write flags.
    pub fn mov_imm(dst: ArchReg, imm: i32) -> Uop {
        Uop {
            dst: Some(dst),
            imm,
            ..Uop::new(Opcode::MovImm)
        }
    }

    /// Address arithmetic: `dst = base + index*scale + disp`, flags untouched.
    pub fn lea(dst: ArchReg, base: ArchReg, index: Option<ArchReg>, scale: u8, disp: i32) -> Uop {
        Uop {
            dst: Some(dst),
            src_a: Some(base),
            src_b: index,
            scale,
            imm: disp,
            ..Uop::new(Opcode::Lea)
        }
    }

    /// Simple load: `dst = mem32[base + disp]`.
    pub fn load(dst: ArchReg, base: ArchReg, disp: i32) -> Uop {
        Uop {
            dst: Some(dst),
            src_a: Some(base),
            imm: disp,
            ..Uop::new(Opcode::Load)
        }
    }

    /// Indexed load: `dst = mem32[base + index*scale + disp]`.
    pub fn load_indexed(dst: ArchReg, base: ArchReg, index: ArchReg, scale: u8, disp: i32) -> Uop {
        Uop {
            dst: Some(dst),
            src_a: Some(base),
            src_b: Some(index),
            scale,
            imm: disp,
            ..Uop::new(Opcode::Load)
        }
    }

    /// Absolute load: `dst = mem32[addr]`.
    pub fn load_abs(dst: ArchReg, addr: i32) -> Uop {
        Uop {
            dst: Some(dst),
            imm: addr,
            ..Uop::new(Opcode::Load)
        }
    }

    /// Store: `mem32[base + disp] = data`.
    pub fn store(base: ArchReg, disp: i32, data: ArchReg) -> Uop {
        Uop {
            src_a: Some(base),
            src_b: Some(data),
            imm: disp,
            ..Uop::new(Opcode::Store)
        }
    }

    /// Absolute store: `mem32[addr] = data`.
    pub fn store_abs(addr: i32, data: ArchReg) -> Uop {
        Uop {
            src_b: Some(data),
            imm: addr,
            ..Uop::new(Opcode::Store)
        }
    }

    /// Compare: flags of `a - b`.
    pub fn cmp(a: ArchReg, b: ArchReg) -> Uop {
        Uop {
            src_a: Some(a),
            src_b: Some(b),
            writes_flags: true,
            ..Uop::new(Opcode::Cmp)
        }
    }

    /// Compare with immediate: flags of `a - imm`.
    pub fn cmp_imm(a: ArchReg, imm: i32) -> Uop {
        Uop {
            src_a: Some(a),
            imm,
            writes_flags: true,
            ..Uop::new(Opcode::Cmp)
        }
    }

    /// Test: flags of `a & b`.
    pub fn test(a: ArchReg, b: ArchReg) -> Uop {
        Uop {
            src_a: Some(a),
            src_b: Some(b),
            writes_flags: true,
            ..Uop::new(Opcode::Test)
        }
    }

    /// Unconditional direct jump.
    pub fn jmp(target: u32) -> Uop {
        Uop {
            target,
            ..Uop::new(Opcode::Jmp)
        }
    }

    /// Indirect jump through `reg`.
    pub fn jmp_ind(reg: ArchReg) -> Uop {
        Uop {
            src_a: Some(reg),
            ..Uop::new(Opcode::JmpInd)
        }
    }

    /// Conditional branch on `cc` to `target`.
    pub fn br(cc: Cond, target: u32) -> Uop {
        Uop {
            cc: Some(cc),
            target,
            ..Uop::new(Opcode::Br)
        }
    }

    /// Assertion that `cc` holds over the incoming flags.
    pub fn assert_cc(cc: Cond) -> Uop {
        Uop {
            cc: Some(cc),
            ..Uop::new(Opcode::Assert)
        }
    }

    /// Fused compare-and-assert: assert `cc` over flags of `a - b`.
    pub fn assert_cmp(cc: Cond, a: ArchReg, b: Option<ArchReg>, imm: i32) -> Uop {
        Uop {
            cc: Some(cc),
            src_a: Some(a),
            src_b: b,
            imm,
            ..Uop::new(Opcode::AssertCmp)
        }
    }

    /// Fused test-and-assert: assert `cc` over flags of `a & b`.
    pub fn assert_test(cc: Cond, a: ArchReg, b: Option<ArchReg>, imm: i32) -> Uop {
        Uop {
            cc: Some(cc),
            src_a: Some(a),
            src_b: b,
            imm,
            ..Uop::new(Opcode::AssertTest)
        }
    }

    /// A no-op.
    pub fn nop() -> Uop {
        Uop::new(Opcode::Nop)
    }

    /// A serializing fence.
    pub fn fence() -> Uop {
        Uop::new(Opcode::Fence)
    }

    /// Tags the uop with its parent x86 instruction address (builder style).
    pub fn at(mut self, x86_addr: u32) -> Uop {
        self.x86_addr = x86_addr;
        self
    }

    /// Marks the uop as the last of its x86 instruction's decode flow.
    pub fn ending_x86(mut self) -> Uop {
        self.last_of_x86 = true;
        self
    }

    /// True if this uop reads the incoming architectural flags.
    pub fn reads_flags(&self) -> bool {
        matches!(self.op, Opcode::Br | Opcode::Assert)
    }

    /// True if this uop is a load.
    pub fn is_load(&self) -> bool {
        self.op == Opcode::Load
    }

    /// True if this uop is a store.
    pub fn is_store(&self) -> bool {
        self.op == Opcode::Store
    }

    /// True if removal of this uop could change architectural state or
    /// control flow even when its value result is unused: stores, branches,
    /// assertions, and fences have side effects; everything else does not.
    ///
    /// Note that loads are *not* side-effecting in this model (no
    /// memory-mapped I/O in the simulated address space), which is what
    /// permits redundant-load elimination.
    pub fn has_side_effect(&self) -> bool {
        self.is_store() || self.op.is_branch() || self.op.is_assert() || self.op == Opcode::Fence
    }

    /// The symbolic memory reference of a `Load` or `Store`, if any.
    pub fn mem_ref(&self) -> Option<MemRef> {
        match self.op {
            Opcode::Load => Some(MemRef {
                base: self.src_a,
                index: self.src_b,
                scale: self.scale,
                disp: self.imm,
            }),
            Opcode::Store => Some(MemRef {
                base: self.src_a,
                index: None,
                scale: 1,
                disp: self.imm,
            }),
            _ => None,
        }
    }

    /// Iterates over the register sources the uop actually reads.
    ///
    /// For stores this includes both the base (address) and the data
    /// register.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src_a.into_iter().chain(self.src_b)
    }

    /// The register this uop defines, if any.
    pub fn def(&self) -> Option<ArchReg> {
        self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let u = Uop::alu(Opcode::Add, ArchReg::Eax, ArchReg::Ebx, ArchReg::Ecx);
        assert_eq!(u.dst, Some(ArchReg::Eax));
        assert!(u.writes_flags);

        let u = Uop::mov(ArchReg::Eax, ArchReg::Ebx);
        assert!(!u.writes_flags, "x86 MOV does not set flags");

        let u = Uop::lea(ArchReg::Eax, ArchReg::Ebx, Some(ArchReg::Ecx), 4, 8);
        assert!(!u.writes_flags, "LEA does not set flags");
        assert_eq!(u.scale, 4);

        let u = Uop::cmp_imm(ArchReg::Eax, 5);
        assert!(u.writes_flags);
        assert_eq!(u.dst, None);
    }

    #[test]
    fn mem_ref_extraction() {
        let ld = Uop::load_indexed(ArchReg::Eax, ArchReg::Ebx, ArchReg::Ecx, 4, 16);
        let r = ld.mem_ref().unwrap();
        assert_eq!(r.base, Some(ArchReg::Ebx));
        assert_eq!(r.index, Some(ArchReg::Ecx));
        assert_eq!(r.scale, 4);
        assert_eq!(r.disp, 16);

        let st = Uop::store(ArchReg::Esp, -4, ArchReg::Ebp);
        let r = st.mem_ref().unwrap();
        assert_eq!(r.base, Some(ArchReg::Esp));
        assert_eq!(r.index, None);
        assert_eq!(r.disp, -4);

        assert!(Uop::nop().mem_ref().is_none());
    }

    #[test]
    fn side_effects() {
        assert!(Uop::store(ArchReg::Esp, 0, ArchReg::Eax).has_side_effect());
        assert!(Uop::br(Cond::Eq, 0x100).has_side_effect());
        assert!(Uop::assert_cc(Cond::Eq).has_side_effect());
        assert!(Uop::fence().has_side_effect());
        assert!(!Uop::load(ArchReg::Eax, ArchReg::Esp, 0).has_side_effect());
        assert!(!Uop::mov_imm(ArchReg::Eax, 1).has_side_effect());
    }

    #[test]
    fn flag_reading() {
        assert!(Uop::br(Cond::Eq, 0).reads_flags());
        assert!(Uop::assert_cc(Cond::Ne).reads_flags());
        // Fused asserts compute their own flags; they do not read incoming
        // flags.
        assert!(!Uop::assert_cmp(Cond::Eq, ArchReg::Eax, None, 0).reads_flags());
        assert!(!Uop::cmp(ArchReg::Eax, ArchReg::Ebx).reads_flags());
    }

    #[test]
    fn sources_and_defs() {
        let st = Uop::store(ArchReg::Esp, -4, ArchReg::Ebp);
        let srcs: Vec<_> = st.sources().collect();
        assert_eq!(srcs, vec![ArchReg::Esp, ArchReg::Ebp]);
        assert_eq!(st.def(), None);

        let ld = Uop::load(ArchReg::Eax, ArchReg::Esp, 8);
        assert_eq!(ld.def(), Some(ArchReg::Eax));
    }

    #[test]
    fn provenance_builders() {
        let u = Uop::nop().at(0x4000).ending_x86();
        assert_eq!(u.x86_addr, 0x4000);
        assert!(u.last_of_x86);
    }
}
