//! The architectural micro-op machine: registers + flags + memory.

use crate::semantics::{eval_alu, eval_alu_with_flags, AluError};
use crate::{ArchReg, Flags, Opcode, SparseMemory, Uop, NUM_ARCH_REGS};

/// The control-flow consequence of executing one uop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEffect {
    /// Fall through to the next uop.
    Next,
    /// Direct control transfer to the given x86 address (`Jmp`, or a taken
    /// `Br`).
    Taken(u32),
    /// A conditional branch that was not taken.
    NotTaken,
    /// Indirect control transfer to the address read from a register.
    IndirectTo(u32),
    /// An assertion whose condition did not hold: the frame must roll back.
    AssertFired,
}

/// Everything observable about the execution of a single uop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopEffect {
    /// Control-flow outcome.
    pub control: ControlEffect,
    /// `(address, value)` of a memory read, if the uop was a load.
    pub mem_read: Option<(u32, u32)>,
    /// `(address, value)` of a memory write, if the uop was a store.
    pub mem_write: Option<(u32, u32)>,
    /// `(register, value)` written, if the uop produced a value.
    pub reg_write: Option<(ArchReg, u32)>,
}

impl UopEffect {
    fn control(control: ControlEffect) -> UopEffect {
        UopEffect {
            control,
            mem_read: None,
            mem_write: None,
            reg_write: None,
        }
    }
}

/// Errors raised by functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// Division or remainder by zero.
    DivideByZero,
    /// A uop was malformed for its opcode (e.g. a `Load` without a
    /// destination register).
    Malformed(Opcode),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DivideByZero => write!(f, "division by zero"),
            ExecError::Malformed(op) => write!(f, "malformed {op} micro-operation"),
        }
    }
}

impl std::error::Error for ExecError {}

/// An architectural machine state: 16 registers, flags, and sparse memory.
///
/// This is the *reference* functional semantics of the uop ISA. The trace
/// generator executes translated programs on it to produce golden traces,
/// and the state verifier replays optimized frames on it to check
/// equivalence at frame boundaries.
#[derive(Debug, Clone, Default)]
pub struct MachineState {
    regs: [u32; NUM_ARCH_REGS],
    flags: Flags,
    /// The memory image. Public because the trace generator and verifier
    /// need to seed and snapshot it wholesale.
    pub mem: SparseMemory,
}

impl MachineState {
    /// Creates a machine with all registers zero and empty memory.
    pub fn new() -> MachineState {
        MachineState::default()
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: ArchReg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: ArchReg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// The current flags.
    #[inline]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Overwrites the flags.
    #[inline]
    pub fn set_flags(&mut self, flags: Flags) {
        self.flags = flags;
    }

    /// Reads a 32-bit word from memory.
    pub fn load32(&self, addr: u32) -> u32 {
        self.mem.read_u32(addr)
    }

    /// Writes a 32-bit word to memory.
    pub fn store32(&mut self, addr: u32, value: u32) {
        self.mem.write_u32(addr, value);
    }

    /// A snapshot of the general-purpose register file (GPRs only, the
    /// state that must match at frame boundaries).
    pub fn gpr_snapshot(&self) -> [u32; 8] {
        let mut out = [0u32; 8];
        for (i, r) in ArchReg::GPRS.iter().enumerate() {
            out[i] = self.reg(*r);
        }
        out
    }

    /// Resolves the `b` operand of an ALU-style uop: the second register
    /// source if present, otherwise the immediate.
    fn operand_b(&self, u: &Uop) -> u32 {
        match u.src_b {
            Some(r) => self.reg(r),
            None => u.imm as u32,
        }
    }

    /// The effective address of a memory uop.
    ///
    /// Loads: `base + index*scale + disp`. Stores: `base + disp` (store
    /// addresses are index-free by construction; see [`Uop`]).
    pub fn effective_address(&self, u: &Uop) -> u32 {
        let base = u.src_a.map_or(0, |r| self.reg(r));
        match u.op {
            Opcode::Load | Opcode::Lea => {
                let index = u.src_b.map_or(0, |r| self.reg(r));
                base.wrapping_add(index.wrapping_mul(u.scale as u32))
                    .wrapping_add(u.imm as u32)
            }
            _ => base.wrapping_add(u.imm as u32),
        }
    }

    /// Executes one uop, updating registers, flags, and memory.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DivideByZero`] on division by zero and
    /// [`ExecError::Malformed`] when an opcode is missing a required operand.
    pub fn exec(&mut self, u: &Uop) -> Result<UopEffect, ExecError> {
        match u.op {
            Opcode::Nop | Opcode::Fence => Ok(UopEffect::control(ControlEffect::Next)),
            Opcode::Jmp => Ok(UopEffect::control(ControlEffect::Taken(u.target))),
            Opcode::JmpInd => {
                let r = u.src_a.ok_or(ExecError::Malformed(u.op))?;
                Ok(UopEffect::control(ControlEffect::IndirectTo(self.reg(r))))
            }
            Opcode::Br => {
                let cc = u.cc.ok_or(ExecError::Malformed(u.op))?;
                if cc.holds(self.flags) {
                    Ok(UopEffect::control(ControlEffect::Taken(u.target)))
                } else {
                    Ok(UopEffect::control(ControlEffect::NotTaken))
                }
            }
            Opcode::Assert => {
                let cc = u.cc.ok_or(ExecError::Malformed(u.op))?;
                if cc.holds(self.flags) {
                    Ok(UopEffect::control(ControlEffect::Next))
                } else {
                    Ok(UopEffect::control(ControlEffect::AssertFired))
                }
            }
            Opcode::AssertCmp | Opcode::AssertTest => {
                let cc = u.cc.ok_or(ExecError::Malformed(u.op))?;
                let a = u.src_a.map_or(0, |r| self.reg(r));
                let b = self.operand_b(u);
                let alu_op = if u.op == Opcode::AssertCmp {
                    Opcode::Cmp
                } else {
                    Opcode::Test
                };
                let res = eval_alu(alu_op, a, b).map_err(map_alu_err)?;
                if cc.holds(res.flags) {
                    Ok(UopEffect::control(ControlEffect::Next))
                } else {
                    Ok(UopEffect::control(ControlEffect::AssertFired))
                }
            }
            Opcode::Load => {
                let dst = u.dst.ok_or(ExecError::Malformed(u.op))?;
                let addr = self.effective_address(u);
                let value = self.load32(addr);
                self.set_reg(dst, value);
                Ok(UopEffect {
                    control: ControlEffect::Next,
                    mem_read: Some((addr, value)),
                    mem_write: None,
                    reg_write: Some((dst, value)),
                })
            }
            Opcode::Store => {
                let data = u.src_b.ok_or(ExecError::Malformed(u.op))?;
                let addr = self.effective_address(u);
                let value = self.reg(data);
                self.store32(addr, value);
                Ok(UopEffect {
                    control: ControlEffect::Next,
                    mem_read: None,
                    mem_write: Some((addr, value)),
                    reg_write: None,
                })
            }
            op if op.is_alu() => {
                let a = u.src_a.map_or(0, |r| self.reg(r));
                let b = if op == Opcode::Lea {
                    // Pre-scale the index for the shared evaluator.
                    let index = u.src_b.map_or(0, |r| self.reg(r));
                    index
                        .wrapping_mul(u.scale as u32)
                        .wrapping_add(u.imm as u32)
                } else {
                    self.operand_b(u)
                };
                let res = eval_alu_with_flags(op, a, b, self.flags).map_err(map_alu_err)?;
                let mut reg_write = None;
                if let Some(dst) = u.dst {
                    self.set_reg(dst, res.value);
                    reg_write = Some((dst, res.value));
                }
                if u.writes_flags {
                    self.flags = res.flags;
                }
                Ok(UopEffect {
                    control: ControlEffect::Next,
                    mem_read: None,
                    mem_write: None,
                    reg_write,
                })
            }
            op => Err(ExecError::Malformed(op)),
        }
    }

    /// Executes a straight-line sequence of uops, stopping at the first
    /// control transfer or fired assertion.
    ///
    /// Returns the index of the uop that ended execution and its effect, or
    /// `None` if the whole sequence fell through.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn exec_block(&mut self, uops: &[Uop]) -> Result<Option<(usize, UopEffect)>, ExecError> {
        for (i, u) in uops.iter().enumerate() {
            let eff = self.exec(u)?;
            match eff.control {
                ControlEffect::Next | ControlEffect::NotTaken => {}
                _ => return Ok(Some((i, eff))),
            }
        }
        Ok(None)
    }
}

fn map_alu_err(e: AluError) -> ExecError {
    match e {
        AluError::DivideByZero => ExecError::DivideByZero,
        AluError::NotAlu(op) => ExecError::Malformed(op),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    #[test]
    fn alu_updates_reg_and_flags() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 7);
        let u = Uop::alu_imm(Opcode::Sub, ArchReg::Eax, ArchReg::Eax, 7);
        let eff = m.exec(&u).unwrap();
        assert_eq!(m.reg(ArchReg::Eax), 0);
        assert!(m.flags().zf);
        assert_eq!(eff.reg_write, Some((ArchReg::Eax, 0)));
    }

    #[test]
    fn mov_preserves_flags() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 0);
        m.exec(&Uop::cmp_imm(ArchReg::Eax, 0)).unwrap();
        assert!(m.flags().zf);
        m.exec(&Uop::mov_imm(ArchReg::Ebx, 5)).unwrap();
        assert!(m.flags().zf, "MOV must not clobber flags");
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x1000);
        m.set_reg(ArchReg::Ebp, 0xdead);
        let st = Uop::store(ArchReg::Esp, -4, ArchReg::Ebp);
        let eff = m.exec(&st).unwrap();
        assert_eq!(eff.mem_write, Some((0xffc, 0xdead)));
        let ld = Uop::load(ArchReg::Ecx, ArchReg::Esp, -4);
        let eff = m.exec(&ld).unwrap();
        assert_eq!(eff.mem_read, Some((0xffc, 0xdead)));
        assert_eq!(m.reg(ArchReg::Ecx), 0xdead);
    }

    #[test]
    fn indexed_load_addressing() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Ebx, 0x2000);
        m.set_reg(ArchReg::Ecx, 3);
        m.store32(0x2000 + 3 * 4 + 8, 99);
        let ld = Uop::load_indexed(ArchReg::Eax, ArchReg::Ebx, ArchReg::Ecx, 4, 8);
        m.exec(&ld).unwrap();
        assert_eq!(m.reg(ArchReg::Eax), 99);
    }

    #[test]
    fn branch_and_assert_control() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 1);
        m.exec(&Uop::cmp_imm(ArchReg::Eax, 1)).unwrap();
        // Taken branch.
        let eff = m.exec(&Uop::br(Cond::Eq, 0x42)).unwrap();
        assert_eq!(eff.control, ControlEffect::Taken(0x42));
        // Not-taken branch.
        let eff = m.exec(&Uop::br(Cond::Ne, 0x42)).unwrap();
        assert_eq!(eff.control, ControlEffect::NotTaken);
        // Holding assert.
        let eff = m.exec(&Uop::assert_cc(Cond::Eq)).unwrap();
        assert_eq!(eff.control, ControlEffect::Next);
        // Firing assert.
        let eff = m.exec(&Uop::assert_cc(Cond::Ne)).unwrap();
        assert_eq!(eff.control, ControlEffect::AssertFired);
    }

    #[test]
    fn fused_assert_does_not_touch_flags() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 5);
        m.exec(&Uop::cmp_imm(ArchReg::Eax, 5)).unwrap();
        let before = m.flags();
        let eff = m
            .exec(&Uop::assert_cmp(Cond::Ne, ArchReg::Eax, None, 9))
            .unwrap();
        assert_eq!(eff.control, ControlEffect::Next);
        assert_eq!(m.flags(), before);
        let eff = m
            .exec(&Uop::assert_cmp(Cond::Eq, ArchReg::Eax, None, 9))
            .unwrap();
        assert_eq!(eff.control, ControlEffect::AssertFired);
    }

    #[test]
    fn indirect_jump() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Et2, 0x8080);
        let eff = m.exec(&Uop::jmp_ind(ArchReg::Et2)).unwrap();
        assert_eq!(eff.control, ControlEffect::IndirectTo(0x8080));
    }

    #[test]
    fn divide_by_zero_reported() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 10);
        m.set_reg(ArchReg::Ebx, 0);
        let u = Uop::alu(Opcode::Div, ArchReg::Eax, ArchReg::Eax, ArchReg::Ebx);
        assert_eq!(m.exec(&u).unwrap_err(), ExecError::DivideByZero);
    }

    #[test]
    fn exec_block_stops_at_transfer() {
        let mut m = MachineState::new();
        let uops = vec![
            Uop::mov_imm(ArchReg::Eax, 1),
            Uop::jmp(0x99),
            Uop::mov_imm(ArchReg::Eax, 2), // never executed
        ];
        let stop = m.exec_block(&uops).unwrap();
        assert_eq!(stop.map(|(i, _)| i), Some(1));
        assert_eq!(m.reg(ArchReg::Eax), 1);
    }

    #[test]
    fn lea_computes_scaled_address() {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Ebx, 0x100);
        m.set_reg(ArchReg::Ecx, 2);
        let u = Uop::lea(ArchReg::Eax, ArchReg::Ebx, Some(ArchReg::Ecx), 8, 4);
        m.exec(&u).unwrap();
        assert_eq!(m.reg(ArchReg::Eax), 0x100 + 2 * 8 + 4);
    }
}
