//! Sparse byte-addressed memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse, byte-addressed, 32-bit memory.
///
/// Pages are allocated on first write; reads of untouched memory return
/// zero. Accesses may be unaligned and may straddle page boundaries. This is
/// the backing store for both the functional x86 interpreter and the
/// micro-op machine, and for the verifier's initial/final memory maps.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory (all bytes read as zero).
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian 32-bit word (may be unaligned).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32));
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian 32-bit word (may be unaligned).
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Number of resident (written-to) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u32_roundtrip_aligned_and_unaligned() {
        let mut m = SparseMemory::new();
        m.write_u32(0x1000, 0x1234_5678);
        assert_eq!(m.read_u32(0x1000), 0x1234_5678);
        // Little-endian byte order.
        assert_eq!(m.read_u8(0x1000), 0x78);
        assert_eq!(m.read_u8(0x1003), 0x12);
        // Unaligned, page-straddling write.
        m.write_u32(0x1fff, 0xaabb_ccdd);
        assert_eq!(m.read_u32(0x1fff), 0xaabb_ccdd);
        assert_eq!(m.read_u8(0x2000), 0xcc);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_bytes(0x8000, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x8000, 5), vec![1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x8003, 4), vec![4, 5, 0, 0]);
    }

    #[test]
    fn address_wraparound() {
        let mut m = SparseMemory::new();
        m.write_u32(0xffff_fffe, 0x0102_0304);
        assert_eq!(m.read_u32(0xffff_fffe), 0x0102_0304);
        // LE bytes are [04, 03, 02, 01] starting at 0xffff_fffe, so the
        // third byte lands at address 0.
        assert_eq!(m.read_u8(0), 0x02, "wraps to address 0");
    }

    #[test]
    fn clear_resets() {
        let mut m = SparseMemory::new();
        m.write_u8(42, 7);
        assert_eq!(m.resident_pages(), 1);
        m.clear();
        assert_eq!(m.read_u8(42), 0);
        assert_eq!(m.resident_pages(), 0);
    }
}
