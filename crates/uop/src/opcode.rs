//! Micro-operation opcodes.

use std::fmt;

/// The opcode of a micro-operation.
///
/// The rePLay internal ISA is a generic, three-operand RISC ISA (the paper
/// models it this way because real x86 micro-op formats are proprietary,
/// §5.1.1). ALU opcodes take two register sources, or one register source and
/// an immediate when `src_b` is absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// `dst = a + b` (or `a + imm`).
    Add,
    /// `dst = a - b` (or `a - imm`).
    Sub,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = a << (b & 31)`.
    Shl,
    /// `dst = a >> (b & 31)` (logical).
    Shr,
    /// `dst = a >> (b & 31)` (arithmetic).
    Sar,
    /// `dst = low32(a * b)` — two-operand signed multiply.
    Mul,
    /// `dst = a / b` — unsigned quotient (x86 `DIV` quotient half).
    Div,
    /// `dst = a % b` — unsigned remainder (x86 `DIV` remainder half).
    Rem,
    /// `dst = !a`.
    Not,
    /// `dst = -a`.
    Neg,
    /// `dst = a` — register move.
    Mov,
    /// `dst = imm` — immediate move.
    MovImm,
    /// `dst = a + b*scale + imm` — address arithmetic, never writes flags.
    Lea,
    /// Compare: compute flags of `a - b` (or `a - imm`); no value result.
    Cmp,
    /// Test: compute flags of `a & b` (or `a & imm`); no value result.
    Test,
    /// `dst = mem32[a + b*scale + imm]`.
    Load,
    /// `mem32[a + imm] = b`.
    Store,
    /// Unconditional direct jump to `target`.
    Jmp,
    /// Indirect jump to the address in `a`.
    JmpInd,
    /// Conditional branch on `cc` over the incoming flags, to `target`.
    Br,
    /// Assertion on `cc` over the incoming flags. Fires (rolls the frame
    /// back) when the condition does **not** hold. Frame-only.
    Assert,
    /// Fused compare-and-assert: assert `cc` over the flags of `a - b`
    /// (or `a - imm`). Produced by the value-assertion optimization.
    AssertCmp,
    /// Fused test-and-assert: assert `cc` over the flags of `a & b`
    /// (or `a & imm`). Produced by the value-assertion optimization.
    AssertTest,
    /// No operation.
    Nop,
    /// Serializing marker: long-flow x86 instructions (segment-descriptor
    /// modifiers, call gates, interrupts) flush the pipeline (§5.1.1).
    Fence,
}

/// Coarse classification of an opcode, used by the timing model to pick a
/// functional unit and by the optimizer to gate transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeClass {
    /// Single-cycle integer ALU operation.
    SimpleAlu,
    /// Multi-cycle integer operation (`Mul`, `Div`, `Rem`).
    ComplexAlu,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Control transfer (jumps and conditional branches).
    Branch,
    /// Assertion (including fused compare/test asserts).
    Assert,
    /// `Nop` / `Fence`.
    Other,
}

impl Opcode {
    /// All opcodes, for exhaustive testing.
    pub const ALL: [Opcode; 28] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::Not,
        Opcode::Neg,
        Opcode::Mov,
        Opcode::MovImm,
        Opcode::Lea,
        Opcode::Cmp,
        Opcode::Test,
        Opcode::Load,
        Opcode::Store,
        Opcode::Jmp,
        Opcode::JmpInd,
        Opcode::Br,
        Opcode::Assert,
        Opcode::AssertCmp,
        Opcode::AssertTest,
        Opcode::Nop,
        Opcode::Fence,
    ];

    /// Classifies the opcode for functional-unit selection.
    pub fn class(self) -> OpcodeClass {
        use Opcode::*;
        match self {
            Mul | Div | Rem => OpcodeClass::ComplexAlu,
            Load => OpcodeClass::Load,
            Store => OpcodeClass::Store,
            Jmp | JmpInd | Br => OpcodeClass::Branch,
            Assert | AssertCmp | AssertTest => OpcodeClass::Assert,
            Nop | Fence => OpcodeClass::Other,
            _ => OpcodeClass::SimpleAlu,
        }
    }

    /// True for ALU opcodes that compute a value from register/immediate
    /// inputs (everything evaluable by [`crate::eval_alu`]).
    pub fn is_alu(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | Sub
                | And
                | Or
                | Xor
                | Shl
                | Shr
                | Sar
                | Mul
                | Div
                | Rem
                | Not
                | Neg
                | Mov
                | MovImm
                | Lea
                | Cmp
                | Test
        )
    }

    /// True for opcodes whose *only* result is flags (`Cmp`, `Test`).
    pub fn is_flags_only(self) -> bool {
        matches!(self, Opcode::Cmp | Opcode::Test)
    }

    /// True for memory opcodes.
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// True for control-transfer opcodes (not assertions).
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Jmp | Opcode::JmpInd | Opcode::Br)
    }

    /// True for assertion opcodes (plain or fused).
    pub fn is_assert(self) -> bool {
        matches!(
            self,
            Opcode::Assert | Opcode::AssertCmp | Opcode::AssertTest
        )
    }

    /// True if the opcode is commutative in its two register sources.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add | Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Mul
        )
    }

    /// Short lowercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Sar => "sar",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Not => "not",
            Neg => "neg",
            Mov => "mov",
            MovImm => "movi",
            Lea => "lea",
            Cmp => "cmp",
            Test => "test",
            Load => "ld",
            Store => "st",
            Jmp => "jmp",
            JmpInd => "jmpi",
            Br => "br",
            Assert => "assert",
            AssertCmp => "assertc",
            AssertTest => "assertt",
            Nop => "nop",
            Fence => "fence",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_partitions() {
        for op in Opcode::ALL {
            // Every opcode has exactly one class.
            let c = op.class();
            match c {
                OpcodeClass::Load => assert!(op.is_mem()),
                OpcodeClass::Store => assert!(op.is_mem()),
                OpcodeClass::Branch => assert!(op.is_branch()),
                OpcodeClass::Assert => assert!(op.is_assert()),
                _ => {}
            }
        }
    }

    #[test]
    fn alu_subset() {
        assert!(Opcode::Add.is_alu());
        assert!(Opcode::Lea.is_alu());
        assert!(!Opcode::Load.is_alu());
        assert!(!Opcode::Br.is_alu());
        assert!(Opcode::Cmp.is_flags_only());
        assert!(!Opcode::Add.is_flags_only());
    }

    #[test]
    fn commutativity() {
        assert!(Opcode::Add.is_commutative());
        assert!(Opcode::Xor.is_commutative());
        assert!(!Opcode::Sub.is_commutative());
        assert!(!Opcode::Shl.is_commutative());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }
}
