//! Condition codes for conditional branches and assertions.

use crate::Flags;
use std::fmt;

/// A condition code evaluated over [`Flags`], following x86 `Jcc` semantics.
///
/// Conditional branch uops (`Br`) and assertion uops (`Assert`) carry a
/// condition code. A branch is taken when its condition holds; an assertion
/// *fires* (triggering frame rollback) when its condition does **not** hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal / zero (`ZF = 1`).
    Eq = 0,
    /// Not equal / not zero (`ZF = 0`).
    Ne = 1,
    /// Signed less than (`SF != OF`).
    Lt = 2,
    /// Signed less than or equal (`ZF = 1 or SF != OF`).
    Le = 3,
    /// Signed greater than (`ZF = 0 and SF = OF`).
    Gt = 4,
    /// Signed greater than or equal (`SF = OF`).
    Ge = 5,
    /// Unsigned below (`CF = 1`).
    B = 6,
    /// Unsigned below or equal (`CF = 1 or ZF = 1`).
    Be = 7,
    /// Unsigned above (`CF = 0 and ZF = 0`).
    A = 8,
    /// Unsigned above or equal (`CF = 0`).
    Ae = 9,
    /// Sign set (`SF = 1`).
    S = 10,
    /// Sign clear (`SF = 0`).
    Ns = 11,
    /// Overflow set (`OF = 1`).
    O = 12,
    /// Overflow clear (`OF = 0`).
    No = 13,
    /// Parity even (`PF = 1`).
    P = 14,
    /// Parity odd (`PF = 0`).
    Np = 15,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
        Cond::O,
        Cond::No,
        Cond::P,
        Cond::Np,
    ];

    /// Evaluates the condition against a set of flags.
    pub fn holds(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.zf,
            Cond::Ne => !f.zf,
            Cond::Lt => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::Gt => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::Ae => !f.cf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
            Cond::O => f.of,
            Cond::No => !f.of,
            Cond::P => f.pf,
            Cond::Np => !f.pf,
        }
    }

    /// The logical negation of the condition (e.g. `Eq` ↔ `Ne`).
    ///
    /// Used by the frame constructor: a branch that is biased *not-taken*
    /// becomes an assertion that the *negated* condition holds.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::O => Cond::No,
            Cond::No => Cond::O,
            Cond::P => Cond::Np,
            Cond::Np => Cond::P,
        }
    }

    /// Short x86-style mnemonic suffix (e.g. `"Z"` for [`Cond::Eq`]).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "Z",
            Cond::Ne => "NZ",
            Cond::Lt => "L",
            Cond::Le => "LE",
            Cond::Gt => "G",
            Cond::Ge => "GE",
            Cond::B => "B",
            Cond::Be => "BE",
            Cond::A => "A",
            Cond::Ae => "AE",
            Cond::S => "S",
            Cond::Ns => "NS",
            Cond::O => "O",
            Cond::No => "NO",
            Cond::P => "P",
            Cond::Np => "NP",
        }
    }

    /// Reconstructs a condition code from its discriminant.
    pub fn from_u8(v: u8) -> Option<Cond> {
        Self::ALL.get(v as usize).copied()
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(zf: bool, sf: bool, cf: bool, of: bool, pf: bool) -> Flags {
        Flags { zf, sf, cf, of, pf }
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        // Enumerate all 32 flag combinations and all conditions.
        for bits in 0..32u8 {
            let f = Flags::from_bits(bits);
            for c in Cond::ALL {
                assert_eq!(c.negate().negate(), c);
                assert_ne!(c.holds(f), c.negate().holds(f), "cond {c} flags {f}");
            }
        }
    }

    #[test]
    fn signed_comparisons() {
        // 1 - 2: SF set, OF clear => Lt holds.
        let f = Flags::from_sub(1, 2);
        assert!(Cond::Lt.holds(f));
        assert!(Cond::Le.holds(f));
        assert!(!Cond::Gt.holds(f));
        assert!(!Cond::Ge.holds(f));
        // INT_MIN - 1 overflows: SF clear, OF set => still Lt.
        let f = Flags::from_sub(0x8000_0000, 1);
        assert!(Cond::Lt.holds(f));
    }

    #[test]
    fn unsigned_comparisons() {
        // 1 - 2 borrows => B holds.
        let f = Flags::from_sub(1, 2);
        assert!(Cond::B.holds(f));
        assert!(Cond::Be.holds(f));
        assert!(!Cond::A.holds(f));
        // 2 - 1: no borrow, nonzero => A holds.
        let f = Flags::from_sub(2, 1);
        assert!(Cond::A.holds(f));
        assert!(Cond::Ae.holds(f));
    }

    #[test]
    fn equality() {
        let f = Flags::from_sub(5, 5);
        assert!(Cond::Eq.holds(f));
        assert!(Cond::Le.holds(f));
        assert!(Cond::Ge.holds(f));
        assert!(Cond::Be.holds(f));
        assert!(Cond::Ae.holds(f));
        assert!(!Cond::Ne.holds(f));
    }

    #[test]
    fn sign_overflow_parity_direct() {
        let f = flags(false, true, false, false, true);
        assert!(Cond::S.holds(f));
        assert!(!Cond::Ns.holds(f));
        assert!(Cond::P.holds(f));
        assert!(!Cond::O.holds(f));
        assert!(Cond::No.holds(f));
    }

    #[test]
    fn from_u8_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_u8(c as u8), Some(c));
        }
        assert_eq!(Cond::from_u8(16), None);
    }
}
