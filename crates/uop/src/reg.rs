//! Architectural registers visible at the micro-operation level.

use std::fmt;

/// Number of architectural registers in the rePLay uop ISA: the eight x86
/// general-purpose registers plus eight micro-architectural temporaries.
pub const NUM_ARCH_REGS: usize = 16;

/// An architectural register.
///
/// The first eight variants are the x86 general-purpose registers. The
/// `Et0`–`Et7` variants are *temporary* registers that exist only at the
/// micro-operation level: the x86→uop translator uses them to hold
/// intermediate values of multi-uop decode flows (for example the return
/// target of a `RET`, named `ET2` in the paper's running example). They are
/// architectural in the sense that they are live across uops and are renamed
/// like any other register, but no x86 instruction can name them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ArchReg {
    /// x86 `EAX` — accumulator, also the implicit destination of `DIV`/`MUL`.
    Eax = 0,
    /// x86 `ECX` — counter register.
    Ecx = 1,
    /// x86 `EDX` — data register, implicit high half for `DIV`/`MUL`.
    Edx = 2,
    /// x86 `EBX` — base register.
    Ebx = 3,
    /// x86 `ESP` — stack pointer.
    Esp = 4,
    /// x86 `EBP` — frame pointer.
    Ebp = 5,
    /// x86 `ESI` — source index.
    Esi = 6,
    /// x86 `EDI` — destination index.
    Edi = 7,
    /// Micro-architectural temporary 0.
    Et0 = 8,
    /// Micro-architectural temporary 1.
    Et1 = 9,
    /// Micro-architectural temporary 2.
    Et2 = 10,
    /// Micro-architectural temporary 3.
    Et3 = 11,
    /// Micro-architectural temporary 4.
    Et4 = 12,
    /// Micro-architectural temporary 5.
    Et5 = 13,
    /// Micro-architectural temporary 6.
    Et6 = 14,
    /// Micro-architectural temporary 7.
    Et7 = 15,
}

impl ArchReg {
    /// All architectural registers, in index order.
    pub const ALL: [ArchReg; NUM_ARCH_REGS] = [
        ArchReg::Eax,
        ArchReg::Ecx,
        ArchReg::Edx,
        ArchReg::Ebx,
        ArchReg::Esp,
        ArchReg::Ebp,
        ArchReg::Esi,
        ArchReg::Edi,
        ArchReg::Et0,
        ArchReg::Et1,
        ArchReg::Et2,
        ArchReg::Et3,
        ArchReg::Et4,
        ArchReg::Et5,
        ArchReg::Et6,
        ArchReg::Et7,
    ];

    /// The eight x86 general-purpose registers (no temporaries).
    pub const GPRS: [ArchReg; 8] = [
        ArchReg::Eax,
        ArchReg::Ecx,
        ArchReg::Edx,
        ArchReg::Ebx,
        ArchReg::Esp,
        ArchReg::Ebp,
        ArchReg::Esi,
        ArchReg::Edi,
    ];

    /// Returns the register's dense index in `0..NUM_ARCH_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a register from its dense index.
    ///
    /// Returns `None` if `idx >= NUM_ARCH_REGS`.
    pub fn from_index(idx: usize) -> Option<ArchReg> {
        Self::ALL.get(idx).copied()
    }

    /// True if this register is an x86-visible general-purpose register
    /// (i.e. part of the architectural state a frame must preserve).
    #[inline]
    pub fn is_gpr(self) -> bool {
        (self as u8) < 8
    }

    /// True if this register is a uop-level temporary (`ET0`–`ET7`).
    ///
    /// Temporaries are dead at x86 instruction boundaries, and therefore dead
    /// at frame boundaries; the optimizer never treats them as live-out.
    #[inline]
    pub fn is_temp(self) -> bool {
        !self.is_gpr()
    }

    /// Short uppercase name as used in the paper's listings (e.g. `"ESP"`).
    pub fn name(self) -> &'static str {
        match self {
            ArchReg::Eax => "EAX",
            ArchReg::Ecx => "ECX",
            ArchReg::Edx => "EDX",
            ArchReg::Ebx => "EBX",
            ArchReg::Esp => "ESP",
            ArchReg::Ebp => "EBP",
            ArchReg::Esi => "ESI",
            ArchReg::Edi => "EDI",
            ArchReg::Et0 => "ET0",
            ArchReg::Et1 => "ET1",
            ArchReg::Et2 => "ET2",
            ArchReg::Et3 => "ET3",
            ArchReg::Et4 => "ET4",
            ArchReg::Et5 => "ET5",
            ArchReg::Et6 => "ET6",
            ArchReg::Et7 => "ET7",
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A compact set of architectural registers, stored as a bit mask.
///
/// Used for liveness computations (live-in / live-out sets at frame
/// boundaries) and for register-pressure accounting in the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u16);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// The set of all x86 general-purpose registers (no temporaries).
    pub const ALL_GPRS: RegSet = RegSet(0x00ff);

    /// The set of every architectural register including temporaries.
    pub const ALL: RegSet = RegSet(0xffff);

    /// Creates an empty set.
    pub fn new() -> RegSet {
        RegSet::EMPTY
    }

    /// Inserts `r`; returns `true` if it was not already present.
    pub fn insert(&mut self, r: ArchReg) -> bool {
        let bit = 1u16 << r.index();
        let was = self.0 & bit != 0;
        self.0 |= bit;
        !was
    }

    /// Removes `r`; returns `true` if it was present.
    pub fn remove(&mut self, r: ArchReg) -> bool {
        let bit = 1u16 << r.index();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// True if `r` is in the set.
    #[inline]
    pub fn contains(self, r: ArchReg) -> bool {
        self.0 & (1u16 << r.index()) != 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Registers in `self` but not in `other`.
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates over the registers in the set in index order.
    pub fn iter(self) -> impl Iterator<Item = ArchReg> {
        ArchReg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<ArchReg> for RegSet {
    fn from_iter<I: IntoIterator<Item = ArchReg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<ArchReg> for RegSet {
    fn extend<I: IntoIterator<Item = ArchReg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in ArchReg::ALL {
            assert_eq!(ArchReg::from_index(r.index()), Some(r));
        }
        assert_eq!(ArchReg::from_index(NUM_ARCH_REGS), None);
    }

    #[test]
    fn gpr_and_temp_partition() {
        let gprs: Vec<_> = ArchReg::ALL.iter().filter(|r| r.is_gpr()).collect();
        let temps: Vec<_> = ArchReg::ALL.iter().filter(|r| r.is_temp()).collect();
        assert_eq!(gprs.len(), 8);
        assert_eq!(temps.len(), 8);
        assert!(ArchReg::Esp.is_gpr());
        assert!(ArchReg::Et2.is_temp());
    }

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ArchReg::Eax));
        assert!(!s.insert(ArchReg::Eax));
        assert!(s.insert(ArchReg::Esp));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ArchReg::Eax));
        assert!(!s.contains(ArchReg::Ebx));
        assert!(s.remove(ArchReg::Eax));
        assert!(!s.remove(ArchReg::Eax));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regset_algebra() {
        let a: RegSet = [ArchReg::Eax, ArchReg::Ebx].into_iter().collect();
        let b: RegSet = [ArchReg::Ebx, ArchReg::Ecx].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(ArchReg::Ebx));
        assert!(a.difference(b).contains(ArchReg::Eax));
        assert!(!a.difference(b).contains(ArchReg::Ebx));
    }

    #[test]
    fn regset_constants() {
        assert_eq!(RegSet::ALL_GPRS.len(), 8);
        assert_eq!(RegSet::ALL.len(), NUM_ARCH_REGS);
        assert!(RegSet::ALL_GPRS.iter().all(|r| r.is_gpr()));
    }

    #[test]
    fn regset_display() {
        let s: RegSet = [ArchReg::Eax, ArchReg::Esp].into_iter().collect();
        assert_eq!(s.to_string(), "{EAX, ESP}");
        assert_eq!(RegSet::EMPTY.to_string(), "{}");
    }
}
