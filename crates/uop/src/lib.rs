//! # replay-uop
//!
//! The rePLay micro-operation ISA.
//!
//! Processors implementing complex instruction sets such as x86 decode each
//! instruction into one or more simplified, fixed-format *micro-operations*
//! (uops). This crate defines the uop format used throughout the rePLay
//! reproduction: a three-operand, RISC-like internal ISA modeled after the
//! description in *Dynamic Optimization of Micro-Operations* (HPCA 2003,
//! §5.1.1), together with its functional semantics.
//!
//! The crate provides:
//!
//! * [`ArchReg`] — the architectural register file visible to uops: the eight
//!   x86 general-purpose registers plus a small set of temporary registers
//!   (`ET0`–`ET7`) that only exist at the uop level.
//! * [`Opcode`] — the uop opcode set (ALU, memory, control, assertion ops).
//! * [`Uop`] — the micro-operation itself, with up to two register sources,
//!   an immediate/displacement, an optional scaled index, explicit
//!   flag-read/write information, and provenance back to the parent x86
//!   instruction.
//! * [`Flags`] / [`Cond`] — x86-style condition flags and condition codes.
//! * [`MachineState`] — an architectural machine (registers + flags + sparse
//!   byte-addressed memory) that executes uops functionally. This is the
//!   reference semantics used by the state verifier and by the synthetic
//!   trace generator.
//!
//! # Example
//!
//! ```
//! use replay_uop::{ArchReg, MachineState, Uop};
//!
//! // ECX <- EAX + 4 ; store ECX to [ESP - 4]
//! let uops = vec![
//!     Uop::alu_imm(replay_uop::Opcode::Add, ArchReg::Ecx, ArchReg::Eax, 4),
//!     Uop::store(ArchReg::Esp, -4, ArchReg::Ecx),
//! ];
//! let mut m = MachineState::new();
//! m.set_reg(ArchReg::Eax, 38);
//! m.set_reg(ArchReg::Esp, 0x1000);
//! for u in &uops {
//!     m.exec(u).expect("uop executes");
//! }
//! assert_eq!(m.reg(ArchReg::Ecx), 42);
//! assert_eq!(m.load32(0x1000 - 4), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cond;
mod display;
mod flags;
mod machine;
mod memory;
mod opcode;
mod reg;
mod semantics;
mod uop;

pub use cond::Cond;
pub use flags::Flags;
pub use machine::{ControlEffect, ExecError, MachineState, UopEffect};
pub use memory::SparseMemory;
pub use opcode::{Opcode, OpcodeClass};
pub use reg::{ArchReg, RegSet, NUM_ARCH_REGS};
pub use semantics::{eval_alu, eval_alu_with_flags, AluError, AluResult};
pub use uop::{MemRef, Uop};
