//! Counterexample shrinking: reduce a failing frame to a minimal
//! reproducing form before it is reported or persisted to the corpus.
//!
//! The strategy is delta-debugging-flavored greedy reduction:
//!
//! 1. remove *chunks* of uops, halving the chunk size down to one, keeping
//!    any removal after which the case still fails;
//! 2. then simplify surviving uops (zero immediates).
//!
//! Every candidate is re-checked through the caller-supplied predicate, so
//! the shrinker is oblivious to what "fails" means — the harness passes a
//! closure that re-runs the exact pass sequence and entry states of the
//! original failure.

use replay_frame::Frame;

/// Removes the uops whose indices are in `[start, start + len)`, fixing up
/// expectations and block starts. Returns `None` if the removal would
/// empty the frame.
fn without_range(frame: &Frame, start: usize, len: usize) -> Option<Frame> {
    let end = (start + len).min(frame.uops.len());
    if end <= start || frame.uops.len() - (end - start) == 0 {
        return None;
    }
    let removed = end - start;
    let mut f = frame.clone();
    f.uops.drain(start..end);
    // Expectations inside the removed range disappear; later ones shift.
    f.expectations
        .retain(|e| e.uop_index < start || e.uop_index >= end);
    for e in &mut f.expectations {
        if e.uop_index >= end {
            e.uop_index -= removed;
        }
    }
    // Block boundaries inside the range collapse onto its start.
    let n = f.uops.len();
    for b in &mut f.block_starts {
        if *b >= end {
            *b -= removed;
        } else if *b > start {
            *b = start;
        }
    }
    f.block_starts.dedup();
    f.block_starts.retain(|&b| b < n);
    if f.block_starts.first() != Some(&0) {
        f.block_starts.insert(0, 0);
    }
    f.x86_addrs.truncate(n);
    f.orig_uop_count = n;
    Some(f)
}

/// Shrinks `frame` to a (locally) minimal frame for which `still_fails`
/// holds. The input frame must itself satisfy the predicate; the result
/// always does.
pub fn shrink<F>(frame: &Frame, still_fails: F) -> Frame
where
    F: Fn(&Frame) -> bool,
{
    debug_assert!(still_fails(frame), "shrink requires a failing input");
    let mut best = frame.clone();

    // Phase 1: chunked removal, halving chunk sizes.
    let mut chunk = (best.uops.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.uops.len() {
            if let Some(candidate) = without_range(&best, start, chunk) {
                if still_fails(&candidate) {
                    best = candidate;
                    progressed = true;
                    // Re-test the same start: the next chunk shifted into it.
                    continue;
                }
            }
            start += chunk;
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }

    // Phase 2: zero immediates where the case still reproduces.
    for i in 0..best.uops.len() {
        if best.uops[i].imm != 0 {
            let mut candidate = best.clone();
            candidate.uops[i].imm = 0;
            if still_fails(&candidate) {
                best = candidate;
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arb_frame;
    use replay_core::OptFrame;
    use replay_rng::SmallRng;
    use replay_uop::{ArchReg, Opcode};

    #[test]
    fn shrinks_to_the_relevant_core() {
        // Predicate: the frame still contains a store to ESP-8. The
        // shrinker should strip (nearly) everything else.
        let mut rng = SmallRng::seed_from_u64(0x51);
        for _ in 0..20 {
            let mut frame = arb_frame(&mut rng);
            frame
                .uops
                .push(replay_uop::Uop::store(ArchReg::Esp, -8, ArchReg::Eax));
            frame.orig_uop_count = frame.uops.len();
            frame.x86_addrs = (0..frame.uops.len() as u32).collect();
            let has_marker = |f: &Frame| {
                f.uops
                    .iter()
                    .any(|u| u.op == Opcode::Store && u.imm == -8 && u.src_a == Some(ArchReg::Esp))
            };
            assert!(has_marker(&frame));
            let small = shrink(&frame, has_marker);
            assert!(has_marker(&small));
            assert!(small.uops.len() <= 2, "got {} uops", small.uops.len());
        }
    }

    #[test]
    fn shrunk_frames_stay_structurally_valid() {
        let mut rng = SmallRng::seed_from_u64(0x52);
        for _ in 0..30 {
            let frame = arb_frame(&mut rng);
            // Predicate: frame still has >= 2 uops (forces heavy removal
            // while exercising the fix-up paths).
            let small = shrink(&frame, |f| f.uops.len() >= 2);
            assert_eq!(small.uops.len(), 2);
            OptFrame::from_frame(&small)
                .validate()
                .expect("shrunk frame remaps cleanly");
        }
    }
}
