//! The differential oracle: a pass sequence applied to a generated frame
//! must preserve its architectural semantics from every entry state.
//!
//! Three layers of checking, applied in order:
//!
//! 1. **Structural**: [`OptFrame::validate`] must hold after every pass —
//!    a pass that corrupts use counts or dataflow references is a bug even
//!    if the frame still happens to execute correctly.
//! 2. **Differential**: the optimized frame and the raw (unoptimized,
//!    compacted) frame must agree — registers, flags, store-footprint
//!    memory, and completion outcome — from every probed entry state
//!    ([`replay_verify::verify_differential`]).
//! 3. **Attribution**: on a differential failure, the failing pass is
//!    located by re-running prefixes of the sequence, so the resulting
//!    [`VerifyError`] names the pass as well as the uop.
//! 4. **Plan equivalence**: both the raw and the optimized frame, when the
//!    specialized-execution compiler accepts them, must behave bit-for-bit
//!    identically through [`replay_core::ExecPlan`] and through the
//!    reference interpreter — the same [`FrameOutcome`] (transactions
//!    included), registers, flags, and committed memory, on completing,
//!    assert-firing, faulting, and unsafe-conflict paths alike.

use crate::gen::entry_state;
use replay_core::{
    exec_frame, run_pass, AliasProfile, ExecPlan, FrameOutcome, OptFrame, OptStats, PassCtx,
    PassId, PlanScratch,
};
use replay_frame::Frame;
use replay_uop::{ArchReg, MachineState};
use replay_verify::{verify_differential, VerifyError};
use std::fmt;

/// A check failure: either a structural invariant broken by a pass or a
/// semantic divergence caught by the differential oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// [`OptFrame::validate`] failed after running the named pass.
    Invariant {
        /// The pass whose output violated the invariant.
        pass: PassId,
        /// The violation, as reported by `validate`.
        detail: String,
    },
    /// The optimized frame diverged from the original; the error carries
    /// the failing uop and (after attribution) the pass name.
    Verify(VerifyError),
    /// The compiled execution plan diverged from the reference interpreter
    /// on the same frame — a hot-path fast-path bug, not an optimizer bug.
    Plan {
        /// Which form diverged: `"raw"` or `"optimized"`.
        form: &'static str,
        /// The entry seed the divergence was observed from.
        entry_seed: u32,
        /// The divergence.
        detail: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Invariant { pass, detail } => {
                write!(f, "invariant violated after pass {pass}: {detail}")
            }
            CheckError::Verify(e) => write!(f, "{e}"),
            CheckError::Plan {
                form,
                entry_seed,
                detail,
            } => {
                write!(
                    f,
                    "execution plan diverges from interpreter on {form} frame \
                     (entry seed {entry_seed}): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// The raw (unoptimized) form of a frame: remapped and compacted, ready
/// for execution. This is the oracle's reference side.
pub fn raw_frame(frame: &Frame) -> OptFrame {
    let mut f = OptFrame::from_frame(frame);
    f.compact();
    f
}

/// Applies a pass sequence to a frame, validating the structure after
/// every pass, and returns the compacted result.
///
/// # Errors
///
/// Returns [`CheckError::Invariant`] naming the offending pass.
pub fn apply_passes(frame: &Frame, passes: &[PassId]) -> Result<OptFrame, CheckError> {
    let profile = AliasProfile::empty();
    let ctx = PassCtx::full(&profile);
    let mut stats = OptStats::default();
    let mut f = OptFrame::from_frame(frame);
    for &pass in passes {
        run_pass(&mut f, pass, &ctx, &mut stats);
        if let Err(detail) = f.validate() {
            return Err(CheckError::Invariant { pass, detail });
        }
    }
    f.compact();
    if let Err(detail) = f.validate() {
        return Err(CheckError::Invariant {
            pass: *passes.last().unwrap_or(&PassId::Dce),
            detail: format!("after compaction: {detail}"),
        });
    }
    Ok(f)
}

/// Statistics from one successfully checked case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseStats {
    /// Entry states from which both forms completed and agreed.
    pub entries_completed: u64,
    /// Entry states from which both forms rolled back (assertion fired /
    /// aborted in both — vacuously equivalent).
    pub entries_aborted: u64,
    /// Uops removed by the sequence.
    pub uops_removed: u64,
    /// Plan-vs-interpreter equivalence checks performed (two per entry
    /// seed when the plan compiler accepts both frame forms).
    pub plans_checked: u64,
}

/// Checks one frame under one pass sequence from the given entry seeds.
///
/// On a differential failure the error is re-attributed to the first
/// failing prefix of the sequence (so `error.pass` names the pass) before
/// being returned.
///
/// # Errors
///
/// The first failure found, structural or differential.
pub fn check_frame(
    frame: &Frame,
    passes: &[PassId],
    entry_seeds: &[u32],
) -> Result<CaseStats, CheckError> {
    let original = raw_frame(frame);
    let optimized = apply_passes(frame, passes)?;

    let mut stats = CaseStats {
        uops_removed: (original.uop_count() - optimized.uop_count()) as u64,
        ..CaseStats::default()
    };
    let mut plan_scratch = PlanScratch::new();
    for &seed in entry_seeds {
        let entry = entry_state(seed);
        match verify_differential(&original, &optimized, &entry) {
            Ok(()) => {
                if completes(&original, &entry) {
                    stats.entries_completed += 1;
                } else {
                    stats.entries_aborted += 1;
                }
            }
            Err(e) => {
                let e = attribute(frame, passes, seed, e);
                return Err(CheckError::Verify(e));
            }
        }
        // Layer 4: the specialized execution plan must be bit-equivalent
        // to the interpreter on both frame forms, whatever the outcome
        // (completion, assert trip, fault, or unsafe-store conflict).
        for (form, f) in [("raw", &original), ("optimized", &optimized)] {
            match check_plan_equivalence(f, &entry, &mut plan_scratch) {
                Ok(true) => stats.plans_checked += 1,
                Ok(false) => {}
                Err(detail) => {
                    return Err(CheckError::Plan {
                        form,
                        entry_seed: seed,
                        detail,
                    })
                }
            }
        }
    }
    Ok(stats)
}

/// Executes `f` through the reference interpreter ([`exec_frame`]) and
/// through its compiled [`ExecPlan`] from the same entry state, requiring
/// the identical [`FrameOutcome`] (transaction list included), registers,
/// flags, and committed memory. Returns `Ok(false)` when the plan
/// compiler declines the frame (nothing to compare).
///
/// # Errors
///
/// A human-readable description of the first divergence found.
pub fn check_plan_equivalence(
    f: &OptFrame,
    entry: &MachineState,
    scratch: &mut PlanScratch,
) -> Result<bool, String> {
    let Some(plan) = ExecPlan::compile(f) else {
        return Ok(false);
    };
    let mut interp = entry.clone();
    let reference = exec_frame(f, &mut interp);
    let mut planned_m = entry.clone();
    let planned = plan.exec(&mut planned_m, scratch);
    if reference != planned {
        return Err(format!(
            "outcome mismatch: interpreter {reference:?}, plan {planned:?}"
        ));
    }
    for r in ArchReg::ALL {
        if interp.reg(r) != planned_m.reg(r) {
            return Err(format!(
                "register {r} mismatch after {reference:?}: interpreter {:#x}, plan {:#x}",
                interp.reg(r),
                planned_m.reg(r)
            ));
        }
    }
    if interp.flags() != planned_m.flags() {
        return Err(format!(
            "flags mismatch after {reference:?}: interpreter {}, plan {}",
            interp.flags(),
            planned_m.flags()
        ));
    }
    if let FrameOutcome::Completed { transactions } = &reference {
        for t in transactions.iter().filter(|t| t.is_store) {
            if interp.load32(t.addr) != planned_m.load32(t.addr) {
                return Err(format!(
                    "memory mismatch at {:#x}: interpreter {:#x}, plan {:#x}",
                    t.addr,
                    interp.load32(t.addr),
                    planned_m.load32(t.addr)
                ));
            }
        }
    }
    Ok(true)
}

/// True if the frame completes (commits) from `entry`.
fn completes(f: &OptFrame, entry: &MachineState) -> bool {
    let mut m = entry.clone();
    matches!(
        replay_core::exec_frame(f, &mut m),
        replay_core::FrameOutcome::Completed { .. }
    )
}

/// Locates the pass that introduced a differential failure by re-running
/// prefixes of the sequence, and attaches its name to the error. Falls
/// back to the full sequence's error unchanged if no prefix reproduces it
/// (which would indicate order sensitivity in the check itself).
fn attribute(
    frame: &Frame,
    passes: &[PassId],
    entry_seed: u32,
    full_error: VerifyError,
) -> VerifyError {
    let original = raw_frame(frame);
    let entry = entry_state(entry_seed);
    for len in 1..=passes.len() {
        match apply_passes(frame, &passes[..len]) {
            Ok(prefix_opt) => {
                if verify_differential(&original, &prefix_opt, &entry).is_err() {
                    return full_error.in_pass(passes[len - 1].name());
                }
            }
            // A structural failure mid-prefix: blame that pass.
            Err(CheckError::Invariant { pass, .. }) => {
                return full_error.in_pass(pass.name());
            }
            Err(CheckError::Verify(_) | CheckError::Plan { .. }) => {
                unreachable!("apply_passes returns Invariant only")
            }
        }
    }
    full_error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arb_frame;
    use replay_rng::SmallRng;

    #[test]
    fn canonical_pipeline_is_sound_on_random_frames() {
        let mut rng = SmallRng::seed_from_u64(0xABCD);
        for i in 0..100u32 {
            let frame = arb_frame(&mut rng);
            let seeds = [i, i ^ 0xffff, i.wrapping_mul(2654435761)];
            check_frame(&frame, &PassId::ALL, &seeds)
                .unwrap_or_else(|e| panic!("case {i}: {e}\n{}", raw_frame(&frame).listing()));
        }
    }

    #[test]
    fn single_passes_are_sound_on_random_frames() {
        let mut rng = SmallRng::seed_from_u64(0xEF01);
        for i in 0..70u32 {
            let frame = arb_frame(&mut rng);
            let pass = PassId::ALL[i as usize % 7];
            check_frame(&frame, &[pass], &[i, !i]).unwrap_or_else(|e| panic!("{pass}: {e}"));
        }
    }

    #[test]
    fn plan_matches_interpreter_on_every_outcome_path() {
        // Random frames, raw and fully optimized, through the
        // plan-equivalence layer — then count the outcome kinds the
        // accepted cases actually hit, to prove the differential is not
        // vacuous: completing AND rollback (assert/fault/conflict) paths
        // must both appear.
        let mut rng = SmallRng::seed_from_u64(0x51AB);
        let mut scratch = replay_core::PlanScratch::new();
        let (mut checked, mut completed, mut rolled_back) = (0u64, 0u64, 0u64);
        for i in 0..120u32 {
            let frame = arb_frame(&mut rng);
            let optimized = apply_passes(&frame, &PassId::ALL).expect("pipeline sound");
            for form in [raw_frame(&frame), optimized] {
                for seed in [i, !i] {
                    let entry = entry_state(seed);
                    match check_plan_equivalence(&form, &entry, &mut scratch) {
                        Ok(true) => {
                            checked += 1;
                            let mut m = entry.clone();
                            match replay_core::exec_frame(&form, &mut m) {
                                replay_core::FrameOutcome::Completed { .. } => completed += 1,
                                _ => rolled_back += 1,
                            }
                        }
                        Ok(false) => {}
                        Err(e) => panic!("case {i}: {e}\n{}", form.listing()),
                    }
                }
            }
        }
        assert!(
            checked > 100,
            "plan compiler accepted too few cases: {checked}"
        );
        assert!(completed > 0, "no completing path exercised");
        assert!(rolled_back > 0, "no rollback path exercised");
    }

    #[test]
    fn check_frame_counts_plan_checks() {
        let mut rng = SmallRng::seed_from_u64(0x2222);
        let mut total = 0u64;
        for i in 0..20u32 {
            let frame = arb_frame(&mut rng);
            let stats = check_frame(&frame, &PassId::ALL, &[i]).expect("sound");
            total += stats.plans_checked;
        }
        assert!(total > 0, "the plan-equivalence layer never engaged");
    }

    #[test]
    fn reversed_sequence_is_sound() {
        let mut rev = PassId::ALL;
        rev.reverse();
        let mut rng = SmallRng::seed_from_u64(0x7777);
        for i in 0..50u32 {
            let frame = arb_frame(&mut rng);
            check_frame(&frame, &rev, &[i]).unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }
}
