//! The differential oracle: a pass sequence applied to a generated frame
//! must preserve its architectural semantics from every entry state.
//!
//! Three layers of checking, applied in order:
//!
//! 1. **Structural**: [`OptFrame::validate`] must hold after every pass —
//!    a pass that corrupts use counts or dataflow references is a bug even
//!    if the frame still happens to execute correctly.
//! 2. **Differential**: the optimized frame and the raw (unoptimized,
//!    compacted) frame must agree — registers, flags, store-footprint
//!    memory, and completion outcome — from every probed entry state
//!    ([`replay_verify::verify_differential`]).
//! 3. **Attribution**: on a differential failure, the failing pass is
//!    located by re-running prefixes of the sequence, so the resulting
//!    [`VerifyError`] names the pass as well as the uop.

use crate::gen::entry_state;
use replay_core::{run_pass, AliasProfile, OptFrame, OptStats, PassCtx, PassId};
use replay_frame::Frame;
use replay_uop::MachineState;
use replay_verify::{verify_differential, VerifyError};
use std::fmt;

/// A check failure: either a structural invariant broken by a pass or a
/// semantic divergence caught by the differential oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// [`OptFrame::validate`] failed after running the named pass.
    Invariant {
        /// The pass whose output violated the invariant.
        pass: PassId,
        /// The violation, as reported by `validate`.
        detail: String,
    },
    /// The optimized frame diverged from the original; the error carries
    /// the failing uop and (after attribution) the pass name.
    Verify(VerifyError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Invariant { pass, detail } => {
                write!(f, "invariant violated after pass {pass}: {detail}")
            }
            CheckError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// The raw (unoptimized) form of a frame: remapped and compacted, ready
/// for execution. This is the oracle's reference side.
pub fn raw_frame(frame: &Frame) -> OptFrame {
    let mut f = OptFrame::from_frame(frame);
    f.compact();
    f
}

/// Applies a pass sequence to a frame, validating the structure after
/// every pass, and returns the compacted result.
///
/// # Errors
///
/// Returns [`CheckError::Invariant`] naming the offending pass.
pub fn apply_passes(frame: &Frame, passes: &[PassId]) -> Result<OptFrame, CheckError> {
    let profile = AliasProfile::empty();
    let ctx = PassCtx::full(&profile);
    let mut stats = OptStats::default();
    let mut f = OptFrame::from_frame(frame);
    for &pass in passes {
        run_pass(&mut f, pass, &ctx, &mut stats);
        if let Err(detail) = f.validate() {
            return Err(CheckError::Invariant { pass, detail });
        }
    }
    f.compact();
    if let Err(detail) = f.validate() {
        return Err(CheckError::Invariant {
            pass: *passes.last().unwrap_or(&PassId::Dce),
            detail: format!("after compaction: {detail}"),
        });
    }
    Ok(f)
}

/// Statistics from one successfully checked case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseStats {
    /// Entry states from which both forms completed and agreed.
    pub entries_completed: u64,
    /// Entry states from which both forms rolled back (assertion fired /
    /// aborted in both — vacuously equivalent).
    pub entries_aborted: u64,
    /// Uops removed by the sequence.
    pub uops_removed: u64,
}

/// Checks one frame under one pass sequence from the given entry seeds.
///
/// On a differential failure the error is re-attributed to the first
/// failing prefix of the sequence (so `error.pass` names the pass) before
/// being returned.
///
/// # Errors
///
/// The first failure found, structural or differential.
pub fn check_frame(
    frame: &Frame,
    passes: &[PassId],
    entry_seeds: &[u32],
) -> Result<CaseStats, CheckError> {
    let original = raw_frame(frame);
    let optimized = apply_passes(frame, passes)?;

    let mut stats = CaseStats {
        uops_removed: (original.uop_count() - optimized.uop_count()) as u64,
        ..CaseStats::default()
    };
    for &seed in entry_seeds {
        let entry = entry_state(seed);
        match verify_differential(&original, &optimized, &entry) {
            Ok(()) => {
                if completes(&original, &entry) {
                    stats.entries_completed += 1;
                } else {
                    stats.entries_aborted += 1;
                }
            }
            Err(e) => {
                let e = attribute(frame, passes, seed, e);
                return Err(CheckError::Verify(e));
            }
        }
    }
    Ok(stats)
}

/// True if the frame completes (commits) from `entry`.
fn completes(f: &OptFrame, entry: &MachineState) -> bool {
    let mut m = entry.clone();
    matches!(
        replay_core::exec_frame(f, &mut m),
        replay_core::FrameOutcome::Completed { .. }
    )
}

/// Locates the pass that introduced a differential failure by re-running
/// prefixes of the sequence, and attaches its name to the error. Falls
/// back to the full sequence's error unchanged if no prefix reproduces it
/// (which would indicate order sensitivity in the check itself).
fn attribute(
    frame: &Frame,
    passes: &[PassId],
    entry_seed: u32,
    full_error: VerifyError,
) -> VerifyError {
    let original = raw_frame(frame);
    let entry = entry_state(entry_seed);
    for len in 1..=passes.len() {
        match apply_passes(frame, &passes[..len]) {
            Ok(prefix_opt) => {
                if verify_differential(&original, &prefix_opt, &entry).is_err() {
                    return full_error.in_pass(passes[len - 1].name());
                }
            }
            // A structural failure mid-prefix: blame that pass.
            Err(CheckError::Invariant { pass, .. }) => {
                return full_error.in_pass(pass.name());
            }
            Err(CheckError::Verify(_)) => unreachable!("apply_passes returns Invariant only"),
        }
    }
    full_error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arb_frame;
    use replay_rng::SmallRng;

    #[test]
    fn canonical_pipeline_is_sound_on_random_frames() {
        let mut rng = SmallRng::seed_from_u64(0xABCD);
        for i in 0..100u32 {
            let frame = arb_frame(&mut rng);
            let seeds = [i, i ^ 0xffff, i.wrapping_mul(2654435761)];
            check_frame(&frame, &PassId::ALL, &seeds)
                .unwrap_or_else(|e| panic!("case {i}: {e}\n{}", raw_frame(&frame).listing()));
        }
    }

    #[test]
    fn single_passes_are_sound_on_random_frames() {
        let mut rng = SmallRng::seed_from_u64(0xEF01);
        for i in 0..70u32 {
            let frame = arb_frame(&mut rng);
            let pass = PassId::ALL[i as usize % 7];
            check_frame(&frame, &[pass], &[i, !i]).unwrap_or_else(|e| panic!("{pass}: {e}"));
        }
    }

    #[test]
    fn reversed_sequence_is_sound() {
        let mut rev = PassId::ALL;
        rev.reverse();
        let mut rng = SmallRng::seed_from_u64(0x7777);
        for i in 0..50u32 {
            let frame = arb_frame(&mut rng);
            check_frame(&frame, &rev, &[i]).unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }
}
