//! Mutation-style fault injection: deliberately corrupt an optimized
//! frame and assert that the differential oracle *catches* it.
//!
//! A property harness is only as good as its oracle; these mutations are
//! the oracle's own test. Each [`FaultKind`] models a plausible optimizer
//! bug (a pass dropping a store, fusing the wrong operands, reading stale
//! flags, …) expressed through the same `OptFrame` mutation API the real
//! passes use — so an injected frame is always structurally valid
//! ([`OptFrame::validate`] holds) and differs from the original only
//! semantically, exactly like a real miscompile would.

use replay_core::{FlagsSrc, Operand, OptFrame, Src};
use replay_rng::SmallRng;
use replay_uop::{ArchReg, Opcode};

/// A planted-bug species.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Remove a store (as if dead-store elimination were too eager).
    DropStore,
    /// Remove an assertion and its expectation (as if constant propagation
    /// "proved" a condition it didn't).
    DropAssert,
    /// Rewire an assert's flags input to the live-in flags (a stale-flags
    /// bug: the pass forgot an intervening flags writer).
    StaleFlags,
    /// Swap the operands of a non-commutative operation (a bad
    /// canonicalization during CSE/reassociation).
    SwapOperands,
    /// Perturb an immediate (an off-by-N in displacement folding).
    PerturbImm,
    /// Redirect all uses of a value to a live-in register (a wrong
    /// copy-propagation substitution).
    RedirectUse,
}

impl FaultKind {
    /// Every mutation kind.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::DropStore,
        FaultKind::DropAssert,
        FaultKind::StaleFlags,
        FaultKind::SwapOperands,
        FaultKind::PerturbImm,
        FaultKind::RedirectUse,
    ];

    /// The pass sequence to run before injecting this fault.
    ///
    /// Most kinds mutate the full pipeline's output. Stale-flags needs an
    /// assert that still *reads* a flags producer, so assert fusion (which
    /// rewrites `Cmp` + `Assert` into a self-contained `AssertCmp`) is
    /// skipped for it.
    pub fn passes(self) -> Vec<replay_core::PassId> {
        use replay_core::PassId;
        match self {
            FaultKind::StaleFlags => PassId::ALL
                .into_iter()
                .filter(|&p| p != PassId::AssertFuse)
                .collect(),
            _ => PassId::ALL.to_vec(),
        }
    }

    /// A short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropStore => "drop-store",
            FaultKind::DropAssert => "drop-assert",
            FaultKind::StaleFlags => "stale-flags",
            FaultKind::SwapOperands => "swap-operands",
            FaultKind::PerturbImm => "perturb-imm",
            FaultKind::RedirectUse => "redirect-use",
        }
    }
}

/// Opcodes for which operand order matters.
fn non_commutative(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Sub | Opcode::Shl | Opcode::Shr | Opcode::Sar | Opcode::Cmp
    )
}

/// True if the uop's immediate participates in its semantics.
fn imm_matters(u: &replay_core::OptUop) -> bool {
    match u.op {
        Opcode::MovImm | Opcode::Load | Opcode::Store | Opcode::Lea => true,
        // ALU/assert forms use the immediate only when src_b is absent.
        op if op.is_alu() => u.src_b.is_none(),
        Opcode::AssertCmp | Opcode::AssertTest => u.src_b.is_none(),
        _ => false,
    }
}

/// Applies one mutation of the given kind to `f`, choosing the site with
/// `rng`. Returns `false` if the frame has no applicable site (the caller
/// should try another frame). On success the frame is compacted and still
/// satisfies [`OptFrame::validate`].
pub fn inject(f: &mut OptFrame, kind: FaultKind, rng: &mut SmallRng) -> bool {
    let sites: Vec<u16> = f
        .iter_valid()
        .filter(|(_, u)| match kind {
            FaultKind::DropStore => u.is_store(),
            FaultKind::DropAssert => u.op.is_assert(),
            FaultKind::StaleFlags => matches!(u.flags_src, Some(FlagsSrc::Slot(_))),
            FaultKind::SwapOperands => {
                non_commutative(u.op)
                    && u.src_a.is_some()
                    && u.src_b.is_some()
                    && u.src_a != u.src_b
            }
            FaultKind::PerturbImm => imm_matters(u),
            FaultKind::RedirectUse => u.dst_arch.is_some(),
        })
        .filter(|&(s, _)| kind != FaultKind::RedirectUse || f.value_uses(s) > 0)
        .map(|(s, _)| s)
        .collect();
    let Some(&site) = (!sites.is_empty()).then(|| rng.choose(&sites)) else {
        return false;
    };
    let u = f.slot(site).clone();
    match kind {
        FaultKind::DropStore => f.invalidate(site),
        FaultKind::DropAssert => {
            f.remove_expectation_at(site);
            f.invalidate(site);
        }
        FaultKind::StaleFlags => f.rewrite_flags_src(site, Some(FlagsSrc::LiveIn)),
        FaultKind::SwapOperands => {
            f.rewrite_operand(site, Operand::A, u.src_b);
            f.rewrite_operand(site, Operand::B, u.src_a);
        }
        FaultKind::PerturbImm => {
            f.rewrite_operand_imm(site, Operand::B, u.src_b, u.imm ^ 4);
        }
        FaultKind::RedirectUse => {
            let reg = *rng.choose(&ArchReg::GPRS);
            f.redirect_value_uses(site, Src::LiveIn(reg));
        }
    }
    f.compact();
    debug_assert_eq!(f.validate(), Ok(()));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arb_frame;
    use crate::oracle::{apply_passes, raw_frame};
    use replay_core::PassId;

    #[test]
    fn injection_preserves_structural_validity() {
        let mut rng = SmallRng::seed_from_u64(0xFA01);
        for kind in FaultKind::ALL {
            let mut applied = 0;
            for _ in 0..60 {
                let frame = arb_frame(&mut rng);
                let Ok(mut opt) = apply_passes(&frame, &kind.passes()) else {
                    panic!("pipeline failed on generated frame");
                };
                if inject(&mut opt, kind, &mut rng) {
                    opt.validate()
                        .unwrap_or_else(|e| panic!("{} left an invalid frame: {e}", kind.name()));
                    applied += 1;
                }
            }
            assert!(applied > 0, "{} never found a site", kind.name());
        }
    }

    #[test]
    fn injected_frames_actually_differ() {
        // At least sometimes, an injected frame must produce a different
        // observable result than the original — otherwise the sensitivity
        // test upstream would be vacuous.
        let mut rng = SmallRng::seed_from_u64(0xFA02);
        let mut differed = 0;
        for i in 0..40u32 {
            let frame = arb_frame(&mut rng);
            let mut opt = apply_passes(&frame, &PassId::ALL).expect("pipeline");
            if !inject(&mut opt, FaultKind::PerturbImm, &mut rng) {
                continue;
            }
            let original = raw_frame(&frame);
            let entry = crate::gen::entry_state(i);
            if replay_verify::verify_differential(&original, &opt, &entry).is_err() {
                differed += 1;
            }
        }
        assert!(differed > 0, "perturb-imm was never observable");
    }
}
