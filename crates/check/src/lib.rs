//! # replay-check
//!
//! Property-based differential checking of the rePLay optimizer.
//!
//! The paper's whole premise (§5.1.3) is that an optimized frame is
//! architecturally equivalent to the original micro-op sequence — wrong
//! speculation fires an assertion instead of corrupting state. This crate
//! turns that premise into an executable property and hammers it with
//! generated inputs:
//!
//! * [`gen`] — random-but-valid frames and entry machine states, seeded by
//!   [`replay_rng::SmallRng`] (no external property-testing dependency);
//! * [`oracle`] — the differential check: any pass sequence (the canonical
//!   pipeline, single passes, arbitrary permutations and prefixes) must
//!   preserve semantics from every entry state, with
//!   [`replay_core::OptFrame::validate`] guarding structure after every
//!   pass and [`replay_verify::verify_differential`] guarding semantics;
//! * [`shrink`] — delta-debugging reduction of failures to minimal frames;
//! * [`corpus`] — a line-oriented text format persisting shrunk
//!   counterexamples under `tests/corpus/`, replayed by CI forever after;
//! * [`fault`] — mutation-style fault injection (drop a store, swap
//!   operands, stale flags, …) that tests the *oracle itself*: every
//!   planted bug species must be caught;
//! * [`harness`] — deterministic parallel batch execution: every case is a
//!   pure function of `(master seed, case index)` via
//!   [`replay_rng::SmallRng::split_stream`], so reports are bit-identical
//!   at any `--jobs` count.
//!
//! The CLI front end is `replay check`; see `TESTING.md` for the seed and
//! corpus workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fault;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod shrink;

pub use corpus::{from_text, replay, replay_dir, to_text, CorpusCase};
pub use fault::{inject, FaultKind};
pub use gen::{arb_frame, arb_uop, entry_state};
pub use harness::{
    probe_fault_sensitivity, run_check, CheckConfig, CheckReport, Counterexample, FaultProbe,
    PassSelection,
};
pub use oracle::{
    apply_passes, check_frame, check_plan_equivalence, raw_frame, CaseStats, CheckError,
};
pub use shrink::shrink;
