//! Random-but-valid frame and machine-state generation.
//!
//! The generator produces straight-line frames over a small register and
//! memory vocabulary chosen so that the optimizer's passes actually fire:
//! memory accesses reuse a handful of `ESP`/`ESI` slots (store forwarding,
//! redundant loads), immediates are small (constant folding), and compare +
//! assert pairs appear with moderate probability (assert fusion, assertion
//! outcomes in the oracle).
//!
//! `Div`/`Rem` are deliberately excluded: a dead faulting division is
//! legally removable by dead-code elimination (a `Faulted` outcome has no
//! architectural side effect in this model), so including them would flood
//! the differential oracle with benign outcome divergences. See
//! `TESTING.md`.

use replay_frame::{ControlExpectation, Frame, FrameId};
use replay_rng::SmallRng;
use replay_uop::{ArchReg, Cond, Flags, MachineState, Opcode, Uop};

/// Registers the generator draws from: the eight GPRs plus two
/// micro-architectural temporaries (temporaries are dead at frame exit,
/// which exercises dead-code elimination).
pub const GEN_REGS: [ArchReg; 10] = [
    ArchReg::Eax,
    ArchReg::Ecx,
    ArchReg::Edx,
    ArchReg::Ebx,
    ArchReg::Esp,
    ArchReg::Ebp,
    ArchReg::Esi,
    ArchReg::Edi,
    ArchReg::Et0,
    ArchReg::Et1,
];

/// ALU opcodes the generator emits (no `Div`/`Rem`; see module docs).
const ALU_OPS: [Opcode; 9] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Mul,
    Opcode::Neg,
];

/// Base registers for generated memory accesses. Two bases with small
/// displacement windows make address collisions (and thus memory
/// optimization opportunities) common.
const MEM_BASES: [ArchReg; 2] = [ArchReg::Esp, ArchReg::Esi];

/// A random register from [`GEN_REGS`].
pub fn arb_reg(rng: &mut SmallRng) -> ArchReg {
    *rng.choose(&GEN_REGS)
}

/// One random straight-line uop.
pub fn arb_uop(rng: &mut SmallRng) -> Uop {
    match rng.random_range(0..10u32) {
        // Register-register ALU.
        0 => {
            let op = *rng.choose(&ALU_OPS);
            if op == Opcode::Neg {
                let mut u = Uop::new(op);
                u.dst = Some(arb_reg(rng));
                u.src_a = Some(arb_reg(rng));
                u.writes_flags = true;
                u
            } else {
                Uop::alu(op, arb_reg(rng), arb_reg(rng), arb_reg(rng))
            }
        }
        // Register-immediate ALU.
        1 => Uop::alu_imm(
            *rng.choose(&ALU_OPS[..8]),
            arb_reg(rng),
            arb_reg(rng),
            rng.random_range(-64i32..64),
        ),
        // Moves.
        2 => Uop::mov(arb_reg(rng), arb_reg(rng)),
        3 => Uop::mov_imm(arb_reg(rng), rng.random_range(-1000i32..1000)),
        // Address arithmetic (never writes flags).
        4 => Uop::lea(
            arb_reg(rng),
            arb_reg(rng),
            None,
            1,
            rng.random_range(-32i32..32),
        ),
        // Loads and stores on a small window of stack/heap slots.
        5 => Uop::load(
            arb_reg(rng),
            *rng.choose(&MEM_BASES),
            rng.random_range(-4i32..4) * 4,
        ),
        6 | 7 => Uop::store(
            *rng.choose(&MEM_BASES),
            rng.random_range(-4i32..4) * 4,
            arb_reg(rng),
        ),
        // Compares and tests (flag producers).
        8 => Uop::cmp_imm(arb_reg(rng), rng.random_range(-16i32..16)),
        _ => Uop::cmp(arb_reg(rng), arb_reg(rng)),
    }
}

/// A random straight-line frame of 4–32 uops, optionally containing
/// compare + assert pairs (with matching control expectations) and a block
/// boundary.
pub fn arb_frame(rng: &mut SmallRng) -> Frame {
    let n = rng.random_range(4usize..32);
    let mut uops: Vec<Uop> = (0..n).map(|_| arb_uop(rng)).collect();

    // With moderate probability, plant one or two cmp+assert pairs: the
    // assertion-outcome half of the oracle (and assert fusion) needs them.
    if rng.random_bool(0.4) {
        for _ in 0..rng.random_range(1usize..=2) {
            let at = rng.random_range(0usize..=uops.len());
            let cc = *rng.choose(&Cond::ALL);
            uops.insert(at, Uop::assert_cc(cc));
            uops.insert(at, Uop::cmp_imm(arb_reg(rng), rng.random_range(-8i32..8)));
        }
    }

    let n = uops.len();
    for (i, u) in uops.iter_mut().enumerate() {
        u.x86_addr = 0x1000 + i as u32;
    }
    let expectations: Vec<ControlExpectation> = uops
        .iter()
        .enumerate()
        .filter(|(_, u)| u.op.is_assert())
        .map(|(i, u)| ControlExpectation {
            x86_addr: u.x86_addr,
            expected_next: 0x2000,
            uop_index: i,
        })
        .collect();

    // Occasionally split the frame into two blocks so block-scope state
    // (block_of) is exercised even though the oracle optimizes at frame
    // scope.
    let mut block_starts = vec![0];
    if n >= 8 && rng.random_bool(0.25) {
        block_starts.push(rng.random_range(2usize..n - 1));
    }

    Frame {
        id: FrameId(0),
        start_addr: 0x1000,
        x86_addrs: (0..n as u32).map(|i| 0x1000 + i).collect(),
        block_starts,
        expectations,
        exit_next: 0x2000,
        orig_uop_count: n,
        uops,
    }
}

/// A machine state derived deterministically from a 32-bit seed:
/// distinctive register values, random entry flags, and seeded, disjoint
/// stack/heap windows covering every address the generator can touch.
pub fn entry_state(seed: u32) -> MachineState {
    let mut m = MachineState::new();
    for (i, r) in ArchReg::GPRS.iter().enumerate() {
        m.set_reg(*r, seed.wrapping_mul(31).wrapping_add(i as u32 * 0x101));
    }
    m.set_reg(ArchReg::Esp, 0x0009_0000);
    m.set_reg(ArchReg::Esi, 0x000a_0000);
    m.set_flags(Flags::from_bits((seed >> 8) as u8 & 0x1f));
    for w in -8i32..8 {
        m.store32(
            0x0009_0000u32.wrapping_add((w * 4) as u32),
            seed ^ (w as u32),
        );
        m.store32(
            0x000a_0000u32.wrapping_add((w * 4) as u32),
            seed ^ 0x5555 ^ (w as u32),
        );
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_core::OptFrame;

    #[test]
    fn generated_frames_are_structurally_valid() {
        let mut rng = SmallRng::seed_from_u64(0x9e37);
        for _ in 0..200 {
            let frame = arb_frame(&mut rng);
            let f = OptFrame::from_frame(&frame);
            f.validate().expect("generated frame remaps cleanly");
            assert!(frame.uops.len() >= 4);
            assert!(!frame.block_starts.is_empty() && frame.block_starts[0] == 0);
            for e in &frame.expectations {
                assert!(frame.uops[e.uop_index].op.is_assert());
            }
        }
    }

    #[test]
    fn generator_never_emits_divisions() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let frame = arb_frame(&mut rng);
            assert!(frame
                .uops
                .iter()
                .all(|u| !matches!(u.op, Opcode::Div | Opcode::Rem)));
        }
    }

    #[test]
    fn entry_state_is_deterministic() {
        let a = entry_state(77);
        let b = entry_state(77);
        for r in ArchReg::GPRS {
            assert_eq!(a.reg(r), b.reg(r));
        }
        assert_eq!(a.flags(), b.flags());
        assert_eq!(a.load32(0x0009_0000), b.load32(0x0009_0000));
        // Different seeds give different states.
        let c = entry_state(78);
        assert_ne!(a.reg(ArchReg::Eax), c.reg(ArchReg::Eax));
    }
}
