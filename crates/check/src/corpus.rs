//! The regression corpus: shrunk counterexamples persisted as text files.
//!
//! Every failure the harness finds is reduced ([`crate::shrink`]) and
//! written as a `.case` file under `tests/corpus/`, and CI replays the
//! whole directory on every run — a bug found once by fuzzing is guarded
//! forever by a deterministic test.
//!
//! The format is deliberately line-oriented and diff-friendly:
//!
//! ```text
//! # free-form note (the original error)
//! seed 42
//! case 17
//! passes NOP,CP,RA,ASST,MEM,CSE,DCE
//! entries 3735928559,195894762
//! blocks 0
//! uop st dst=- a=ESP b=EAX imm=-8 scale=1 cc=- wf=0 expect=0
//! uop ld dst=ECX a=ESP b=- imm=-8 scale=1 cc=- wf=0 expect=0
//! ```
//!
//! `seed`/`case` record provenance (how the case was originally found);
//! `passes` and `entries` are what [`replay`] actually re-runs.

use crate::oracle::{check_frame, CheckError};
use replay_core::PassId;
use replay_frame::{ControlExpectation, Frame, FrameId};
use replay_uop::{ArchReg, Cond, Opcode, Uop};
use std::path::{Path, PathBuf};

/// One persisted counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// Free-form note (typically the original error message).
    pub note: String,
    /// Master seed of the run that found the case.
    pub seed: u64,
    /// Case index within that run.
    pub case_index: u64,
    /// The pass sequence that miscompiled the frame.
    pub passes: Vec<PassId>,
    /// Entry-state seeds to probe from.
    pub entry_seeds: Vec<u32>,
    /// The (shrunk) frame.
    pub frame: Frame,
}

fn reg_to_text(r: Option<ArchReg>) -> &'static str {
    r.map_or("-", |r| r.name())
}

fn reg_from_text(s: &str) -> Result<Option<ArchReg>, String> {
    if s == "-" {
        return Ok(None);
    }
    ArchReg::ALL
        .into_iter()
        .find(|r| r.name() == s)
        .map(Some)
        .ok_or_else(|| format!("unknown register {s:?}"))
}

fn opcode_from_text(s: &str) -> Result<Opcode, String> {
    Opcode::ALL
        .into_iter()
        .find(|o| o.mnemonic() == s)
        .ok_or_else(|| format!("unknown opcode {s:?}"))
}

fn cond_from_text(s: &str) -> Result<Option<Cond>, String> {
    if s == "-" {
        return Ok(None);
    }
    Cond::ALL
        .into_iter()
        .find(|c| c.mnemonic() == s)
        .map(Some)
        .ok_or_else(|| format!("unknown condition {s:?}"))
}

/// Renders a case in the corpus text format.
pub fn to_text(case: &CorpusCase) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for line in case.note.lines() {
        let _ = writeln!(s, "# {line}");
    }
    let _ = writeln!(s, "seed {}", case.seed);
    let _ = writeln!(s, "case {}", case.case_index);
    let _ = writeln!(
        s,
        "passes {}",
        case.passes
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = writeln!(
        s,
        "entries {}",
        case.entry_seeds
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = writeln!(
        s,
        "blocks {}",
        case.frame
            .block_starts
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let expect: Vec<usize> = case
        .frame
        .expectations
        .iter()
        .map(|e| e.uop_index)
        .collect();
    for (i, u) in case.frame.uops.iter().enumerate() {
        let _ = writeln!(
            s,
            "uop {} dst={} a={} b={} imm={} scale={} cc={} wf={} expect={}",
            u.op.mnemonic(),
            reg_to_text(u.dst),
            reg_to_text(u.src_a),
            reg_to_text(u.src_b),
            u.imm,
            u.scale,
            u.cc.map_or("-".to_string(), |c| c.mnemonic().to_string()),
            u.writes_flags as u8,
            expect.contains(&i) as u8,
        );
    }
    s
}

/// Parses the corpus text format back into a case.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn from_text(text: &str) -> Result<CorpusCase, String> {
    let mut note = String::new();
    let mut seed = 0u64;
    let mut case_index = 0u64;
    let mut passes: Vec<PassId> = Vec::new();
    let mut entry_seeds: Vec<u32> = Vec::new();
    let mut block_starts: Vec<usize> = vec![0];
    let mut uops: Vec<Uop> = Vec::new();
    let mut expectations: Vec<ControlExpectation> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("line {}: {m}", ln + 1);
        if let Some(rest) = line.strip_prefix('#') {
            if !note.is_empty() {
                note.push('\n');
            }
            note.push_str(rest.trim());
        } else if let Some(rest) = line.strip_prefix("seed ") {
            seed = rest
                .trim()
                .parse()
                .map_err(|e| err(format!("bad seed: {e}")))?;
        } else if let Some(rest) = line.strip_prefix("case ") {
            case_index = rest
                .trim()
                .parse()
                .map_err(|e| err(format!("bad case: {e}")))?;
        } else if let Some(rest) = line.strip_prefix("passes ") {
            passes = rest
                .split(',')
                .map(|p| {
                    PassId::from_name(p.trim()).ok_or_else(|| err(format!("unknown pass {p:?}")))
                })
                .collect::<Result<_, _>>()?;
        } else if let Some(rest) = line.strip_prefix("entries ") {
            entry_seeds = rest
                .split(',')
                .map(|e| {
                    e.trim()
                        .parse()
                        .map_err(|_| err(format!("bad entry {e:?}")))
                })
                .collect::<Result<_, _>>()?;
        } else if let Some(rest) = line.strip_prefix("blocks ") {
            block_starts = rest
                .split(',')
                .map(|b| {
                    b.trim()
                        .parse()
                        .map_err(|_| err(format!("bad block {b:?}")))
                })
                .collect::<Result<_, _>>()?;
        } else if let Some(rest) = line.strip_prefix("uop ") {
            let mut parts = rest.split_whitespace();
            let op = opcode_from_text(parts.next().ok_or_else(|| err("missing opcode".into()))?)
                .map_err(err)?;
            let mut u = Uop::new(op);
            u.x86_addr = 0x1000 + uops.len() as u32;
            let mut expect = false;
            for kv in parts {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| err(format!("malformed field {kv:?}")))?;
                match key {
                    "dst" => u.dst = reg_from_text(value).map_err(err)?,
                    "a" => u.src_a = reg_from_text(value).map_err(err)?,
                    "b" => u.src_b = reg_from_text(value).map_err(err)?,
                    "imm" => {
                        u.imm = value
                            .parse()
                            .map_err(|_| err(format!("bad imm {value:?}")))?
                    }
                    "scale" => {
                        u.scale = value
                            .parse()
                            .map_err(|_| err(format!("bad scale {value:?}")))?
                    }
                    "cc" => u.cc = cond_from_text(value).map_err(err)?,
                    "wf" => u.writes_flags = value == "1",
                    "expect" => expect = value == "1",
                    other => return Err(err(format!("unknown field {other:?}"))),
                }
            }
            if expect {
                expectations.push(ControlExpectation {
                    x86_addr: u.x86_addr,
                    expected_next: 0x2000,
                    uop_index: uops.len(),
                });
            }
            uops.push(u);
        } else {
            return Err(err(format!("unrecognized line {line:?}")));
        }
    }

    if uops.is_empty() {
        return Err("case has no uops".into());
    }
    if passes.is_empty() {
        return Err("case has no passes".into());
    }
    if entry_seeds.is_empty() {
        return Err("case has no entries".into());
    }
    let n = uops.len();
    block_starts.retain(|&b| b < n);
    if block_starts.first() != Some(&0) {
        block_starts.insert(0, 0);
    }
    Ok(CorpusCase {
        note,
        seed,
        case_index,
        passes,
        entry_seeds,
        frame: Frame {
            id: FrameId(0),
            start_addr: 0x1000,
            x86_addrs: (0..n as u32).map(|i| 0x1000 + i).collect(),
            block_starts,
            expectations,
            exit_next: 0x2000,
            orig_uop_count: n,
            uops,
        },
    })
}

/// Re-runs a corpus case through the oracle.
///
/// # Errors
///
/// The check failure, if the case still reproduces (i.e. the guarded bug
/// has regressed).
pub fn replay(case: &CorpusCase) -> Result<(), CheckError> {
    check_frame(&case.frame, &case.passes, &case.entry_seeds).map(|_| ())
}

/// Replays every `.case` file in a directory (sorted by file name, so
/// output order is stable). Returns the number of cases replayed.
///
/// A missing directory counts as an empty corpus. Unreadable or
/// unparsable files are reported as errors, not skipped — a corrupt
/// corpus must fail loudly.
///
/// # Errors
///
/// The first file that fails to parse or whose case reproduces a failure.
pub fn replay_dir(dir: &Path) -> Result<u64, (PathBuf, String)> {
    let mut files: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(_) => return Ok(0),
    };
    files.sort();
    let mut replayed = 0;
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| (path.clone(), format!("unreadable: {e}")))?;
        let case = from_text(&text).map_err(|e| (path.clone(), e))?;
        replay(&case).map_err(|e| (path.clone(), format!("regressed: {e}")))?;
        replayed += 1;
    }
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arb_frame;
    use replay_rng::SmallRng;

    #[test]
    fn roundtrips_generated_frames() {
        let mut rng = SmallRng::seed_from_u64(0xC0);
        for i in 0..50u64 {
            let frame = arb_frame(&mut rng);
            let case = CorpusCase {
                note: "synthetic roundtrip case".into(),
                seed: 42,
                case_index: i,
                passes: PassId::ALL.to_vec(),
                entry_seeds: vec![1, 2, 3],
                frame,
            };
            let text = to_text(&case);
            let back = from_text(&text).expect("parses");
            assert_eq!(back.seed, 42);
            assert_eq!(back.passes, case.passes);
            assert_eq!(back.entry_seeds, case.entry_seeds);
            assert_eq!(back.frame.uops, case.frame.uops);
            assert_eq!(back.frame.block_starts, case.frame.block_starts);
            assert_eq!(
                back.frame
                    .expectations
                    .iter()
                    .map(|e| e.uop_index)
                    .collect::<Vec<_>>(),
                case.frame
                    .expectations
                    .iter()
                    .map(|e| e.uop_index)
                    .collect::<Vec<_>>()
            );
            // And the reconstruction is checkable end to end.
            replay(&back).expect("sound pipeline on roundtripped frame");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("").is_err());
        assert!(from_text("seed 1\npasses NOP\nentries 1\nuop bogus").is_err());
        assert!(from_text("seed 1\npasses WAT\nentries 1\nuop nop").is_err());
        assert!(from_text("garbage line").is_err());
    }
}
