//! The batch harness: deterministic parallel execution of check cases.
//!
//! Every case is a pure function of `(master seed, case index)`: the
//! case's generator RNG is [`SmallRng::split_stream`]`(seed, index)`, so
//! results are independent of how cases are distributed over worker
//! threads — a batch at `--jobs 8` is bit-identical to `--jobs 1`. The
//! fan-out itself rides the simulator's [`replay_sim::parallel::par_map`]
//! pool, which returns results in submission order.

use crate::corpus::CorpusCase;
use crate::fault::{inject, FaultKind};
use crate::gen::{arb_frame, entry_state};
use crate::oracle::{apply_passes, check_frame, raw_frame, CheckError};
use crate::shrink::shrink;
use replay_core::PassId;
use replay_frame::Frame;
use replay_rng::SmallRng;
use replay_sim::parallel::par_map;
use replay_verify::verify_differential;
use std::collections::BTreeSet;
use std::fmt;

/// Which pass sequences a run exercises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassSelection {
    /// Rotate per case: canonical pipeline, each single pass, and random
    /// permutations/prefixes (the default; widest coverage).
    Mixed,
    /// The canonical seven-pass pipeline only.
    Pipeline,
    /// One fixed sequence for every case.
    Sequence(Vec<PassId>),
}

impl PassSelection {
    /// Parses a CLI argument: `all`/`mixed`, `pipeline`, or a
    /// comma-separated pass list such as `NOP,CP,DCE`.
    pub fn parse(s: &str) -> Result<PassSelection, String> {
        match s.to_ascii_lowercase().as_str() {
            "all" | "mixed" => Ok(PassSelection::Mixed),
            "pipeline" | "canonical" => Ok(PassSelection::Pipeline),
            _ => {
                let passes: Vec<PassId> = s
                    .split(',')
                    .map(|p| {
                        PassId::from_name(p.trim())
                            .ok_or_else(|| format!("unknown pass {:?}", p.trim()))
                    })
                    .collect::<Result<_, _>>()?;
                if passes.is_empty() {
                    return Err("empty pass list".into());
                }
                Ok(PassSelection::Sequence(passes))
            }
        }
    }
}

/// Configuration for one check run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Number of random cases.
    pub cases: u64,
    /// Master seed; every case derives from `(seed, index)`.
    pub seed: u64,
    /// Pass-sequence selection strategy.
    pub passes: PassSelection,
    /// Worker threads for the batch.
    pub jobs: usize,
    /// Entry states probed per case.
    pub entries_per_case: u32,
    /// Shrink counterexamples before reporting (disable for speed when
    /// iterating on the harness itself).
    pub shrink: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            cases: 1000,
            seed: 42,
            passes: PassSelection::Mixed,
            jobs: 1,
            entries_per_case: 4,
            shrink: true,
        }
    }
}

/// A failing case, shrunk and ready to persist.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The corpus form (frame already shrunk, provenance filled in).
    pub case: CorpusCase,
    /// The failure, re-checked on the shrunk frame.
    pub error: CheckError,
}

/// The outcome of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Cases run.
    pub cases: u64,
    /// Distinct pass sequences exercised.
    pub sequences: BTreeSet<Vec<PassId>>,
    /// Distinct non-canonical sequences (permutations/prefixes/singles).
    pub permutations: u64,
    /// Entry probes where both forms completed and agreed.
    pub entries_completed: u64,
    /// Entry probes where both forms rolled back (vacuous agreement).
    pub entries_aborted: u64,
    /// Total uops removed across all cases (a sanity signal that the
    /// passes actually fired on the generated population).
    pub uops_removed: u64,
    /// All failures found, in case-index order.
    pub failures: Vec<Counterexample>,
}

impl CheckReport {
    /// True if the batch found no failure.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checked {} cases over {} pass sequences ({} non-canonical)",
            self.cases,
            self.sequences.len(),
            self.permutations
        )?;
        writeln!(
            f,
            "entries: {} completed, {} aborted; {} uops removed total",
            self.entries_completed, self.entries_aborted, self.uops_removed
        )?;
        if self.failures.is_empty() {
            write!(f, "no failures")
        } else {
            write!(f, "{} FAILURES", self.failures.len())
        }
    }
}

/// The pass sequence case `index` runs under `selection`.
///
/// For [`PassSelection::Mixed`] the rotation is: case 0 (mod 3) → the
/// canonical pipeline; case 1 (mod 3) → a single pass (cycling through all
/// seven); case 2 (mod 3) → a shuffled permutation, sometimes truncated to
/// a prefix. Over N cases that yields roughly N/3 distinct random
/// permutations.
fn select_passes(selection: &PassSelection, index: u64, rng: &mut SmallRng) -> Vec<PassId> {
    match selection {
        PassSelection::Pipeline => PassId::ALL.to_vec(),
        PassSelection::Sequence(seq) => seq.clone(),
        PassSelection::Mixed => match index % 3 {
            0 => PassId::ALL.to_vec(),
            1 => vec![PassId::ALL[(index / 3) as usize % PassId::ALL.len()]],
            _ => {
                let mut seq = PassId::ALL.to_vec();
                rng.shuffle(&mut seq);
                if rng.random_bool(0.3) {
                    let keep = rng.random_range(3usize..=seq.len());
                    seq.truncate(keep);
                }
                seq
            }
        },
    }
}

/// Per-case result, aggregated by [`run_check`].
struct CaseOutcome {
    passes: Vec<PassId>,
    entries_completed: u64,
    entries_aborted: u64,
    uops_removed: u64,
    failure: Option<Counterexample>,
}

/// Runs one case: generate, optimize under the selected sequence, check,
/// and (on failure) shrink.
fn run_case(cfg: &CheckConfig, index: u64) -> CaseOutcome {
    let mut rng = SmallRng::split_stream(cfg.seed, index);
    let frame = arb_frame(&mut rng);
    let passes = select_passes(&cfg.passes, index, &mut rng);
    let entry_seeds: Vec<u32> = (0..cfg.entries_per_case).map(|_| rng.next_u32()).collect();

    match check_frame(&frame, &passes, &entry_seeds) {
        Ok(stats) => CaseOutcome {
            passes,
            entries_completed: stats.entries_completed,
            entries_aborted: stats.entries_aborted,
            uops_removed: stats.uops_removed,
            failure: None,
        },
        Err(first_error) => {
            let reproduces = |f: &Frame| check_frame(f, &passes, &entry_seeds).is_err();
            let minimal = if cfg.shrink {
                shrink(&frame, reproduces)
            } else {
                frame
            };
            // Re-derive the error on the shrunk frame (it may differ in
            // detail from the original failure, but it is the one the
            // corpus file will reproduce).
            let error = check_frame(&minimal, &passes, &entry_seeds)
                .err()
                .unwrap_or(first_error);
            CaseOutcome {
                passes: passes.clone(),
                entries_completed: 0,
                entries_aborted: 0,
                uops_removed: 0,
                failure: Some(Counterexample {
                    case: CorpusCase {
                        note: error.to_string(),
                        seed: cfg.seed,
                        case_index: index,
                        passes,
                        entry_seeds,
                        frame: minimal,
                    },
                    error,
                }),
            }
        }
    }
}

/// Runs a batch of `cfg.cases` random cases across `cfg.jobs` workers.
///
/// The report is bit-identical for any job count: cases derive all
/// randomness from `(seed, index)` and results are folded in index order.
pub fn run_check(cfg: &CheckConfig) -> CheckReport {
    let indices: Vec<u64> = (0..cfg.cases).collect();
    let outcomes = par_map(cfg.jobs, &indices, |&i| run_case(cfg, i));

    let mut report = CheckReport {
        cases: cfg.cases,
        sequences: BTreeSet::new(),
        permutations: 0,
        entries_completed: 0,
        entries_aborted: 0,
        uops_removed: 0,
        failures: Vec::new(),
    };
    let canonical = PassId::ALL.to_vec();
    for o in outcomes {
        if report.sequences.insert(o.passes.clone()) && o.passes != canonical {
            report.permutations += 1;
        }
        report.entries_completed += o.entries_completed;
        report.entries_aborted += o.entries_aborted;
        report.uops_removed += o.uops_removed;
        if let Some(f) = o.failure {
            report.failures.push(f);
        }
    }
    report
}

/// Result of probing the oracle's sensitivity to one fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProbe {
    /// The mutation kind planted.
    pub kind: FaultKind,
    /// Frames the mutation was applied to.
    pub injected: u64,
    /// Injected frames the differential oracle flagged.
    pub detected: u64,
}

/// Plants every [`FaultKind`] into optimized frames and measures how many
/// injections the differential oracle catches. Each kind is attempted on
/// up to `attempts` generated frames; detection of a single injection per
/// kind is the pass criterion (some individual injections are legitimately
/// unobservable — e.g. perturbing a dead immediate — so per-injection
/// detection is not required).
pub fn probe_fault_sensitivity(seed: u64, attempts: u32) -> Vec<FaultProbe> {
    FaultKind::ALL
        .iter()
        .map(|&kind| {
            let mut rng = SmallRng::split_stream(seed, kind as u64);
            let mut probe = FaultProbe {
                kind,
                injected: 0,
                detected: 0,
            };
            for _ in 0..attempts {
                let frame = arb_frame(&mut rng);
                let Ok(mut optimized) = apply_passes(&frame, &kind.passes()) else {
                    continue;
                };
                if !inject(&mut optimized, kind, &mut rng) {
                    continue;
                }
                probe.injected += 1;
                let original = raw_frame(&frame);
                let caught = (0..8).any(|k| {
                    let entry = entry_state(rng.next_u32().wrapping_add(k));
                    verify_differential(&original, &optimized, &entry).is_err()
                });
                if caught {
                    probe.detected += 1;
                }
            }
            probe
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_is_clean_and_deterministic() {
        let cfg = CheckConfig {
            cases: 60,
            seed: 7,
            jobs: 1,
            ..CheckConfig::default()
        };
        let a = run_check(&cfg);
        assert!(a.ok(), "failures: {:?}", a.failures);
        assert!(a.permutations > 0);
        assert!(a.uops_removed > 0, "passes never fired");
        let b = run_check(&cfg);
        assert_eq!(a, b, "same seed, same report");
    }

    #[test]
    fn job_count_does_not_change_the_report() {
        let mut cfg = CheckConfig {
            cases: 40,
            seed: 99,
            jobs: 1,
            ..CheckConfig::default()
        };
        let serial = run_check(&cfg);
        cfg.jobs = 8;
        let parallel = run_check(&cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_fault_kind_is_detected() {
        for probe in probe_fault_sensitivity(0xF00D, 120) {
            assert!(
                probe.injected > 0,
                "{}: no injection site in 120 frames",
                probe.kind.name()
            );
            assert!(
                probe.detected > 0,
                "{}: oracle caught none of {} injections",
                probe.kind.name(),
                probe.injected
            );
        }
    }

    #[test]
    fn pass_selection_parses() {
        assert_eq!(PassSelection::parse("all"), Ok(PassSelection::Mixed));
        assert_eq!(
            PassSelection::parse("pipeline"),
            Ok(PassSelection::Pipeline)
        );
        assert_eq!(
            PassSelection::parse("NOP,dce"),
            Ok(PassSelection::Sequence(vec![
                PassId::NopRemoval,
                PassId::Dce
            ]))
        );
        assert!(PassSelection::parse("NOP,WAT").is_err());
        assert!(PassSelection::parse("").is_err());
    }
}
