//! The profile fitter: seeded hill-climb over generator parameters.

use crate::{json_f64, params_json, profile_json, SCHEMA};
use replay_obs::Profile;
use replay_rng::SmallRng;
use replay_sim::{parallel, TraceStore};
use replay_trace::{workloads, GenParams, StatProfile, Suite, Workload};

/// Fitter configuration. Every field participates in the deterministic
/// search, so two runs with equal configs and equal targets produce the
/// identical [`FitResult`] (or the identical [`FitError`]) at any worker
/// count.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Master seed of the candidate generator (`split_stream(seed, iter)`
    /// derives each iteration's stream, so iterations are independent of
    /// one another and of the worker count).
    pub seed: u64,
    /// Maximum hill-climb iterations before the fit gives up.
    pub max_iters: usize,
    /// Convergence tolerance on the profile [`StatProfile::distance`].
    /// The documented default, `0.05`, is well under the typical
    /// inter-workload distance of the suite (gzip↔power ≈ 0.2).
    pub tolerance: f64,
    /// Dynamic x86 instructions per candidate evaluation trace.
    pub fit_scale: usize,
    /// Neighbor candidates generated (and evaluated in parallel) per
    /// iteration.
    pub candidates_per_iter: usize,
    /// Worker threads for candidate evaluation. Any value yields
    /// bit-identical results; more workers are just faster.
    pub jobs: usize,
}

impl Default for FitConfig {
    fn default() -> FitConfig {
        FitConfig {
            seed: 0x5eed_c10e,
            max_iters: 120,
            tolerance: 0.05,
            fit_scale: 6_000,
            candidates_per_iter: 8,
            jobs: 1,
        }
    }
}

/// A successful fit: a synthesized workload whose measured profile is
/// within tolerance of the target.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The synthesized workload (one segment, `fit_scale` default
    /// length). Its name is a deterministic function of the target and
    /// the seed.
    pub workload: Workload,
    /// The profile measured from the synthesized trace.
    pub measured: StatProfile,
    /// Final distance to the target (`<= tolerance`).
    pub distance: f64,
    /// Hill-climb iterations performed (0 when a start point already
    /// converged).
    pub iterations: usize,
    /// Candidate evaluations performed, start points included.
    pub evaluations: usize,
    /// Fitter observability counters (`clone.fit.*`).
    pub profile: Profile,
}

/// A fit that did not converge. The best-found parameters are *not*
/// returned: a nearest miss silently standing in for the requested
/// profile would defeat the point of a tolerance.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The hill-climb exhausted `max_iters` above tolerance.
    NotConverged {
        /// Best distance reached.
        best_distance: f64,
        /// The tolerance that was not met.
        tolerance: f64,
        /// Iterations performed.
        iterations: usize,
        /// Candidate evaluations performed.
        evaluations: usize,
        /// The profile dimension furthest from the target at the best
        /// point — the axis that resisted fitting.
        worst_component: &'static str,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotConverged {
                best_distance,
                tolerance,
                iterations,
                evaluations,
                worst_component,
            } => write!(
                f,
                "fit did not converge: best distance {best_distance:.4} > tolerance \
                 {tolerance:.4} after {iterations} iterations ({evaluations} evaluations); \
                 worst dimension: {worst_component}"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// Deterministic name of the clone a `(target, seed)` pair produces. The
/// name is stamped into the trace header, so it must be a pure function
/// of the fit inputs for synthesized trace files to be byte-identical
/// across runs.
fn clone_name(target: &StatProfile, seed: u64) -> String {
    let mut d = replay_store::Digest64::new();
    d.write_u64(seed);
    for (_, v) in target.components() {
        d.write_f64(v);
    }
    format!("clone-{:016x}", d.finish())
}

/// One candidate's synthesized workload (single segment at `fit_scale`).
fn candidate_workload(name: &str, fit_scale: usize, params: GenParams) -> Workload {
    Workload::custom(name.to_string(), Suite::SpecInt, 1, fit_scale, params)
}

/// Mutates one randomly-chosen parameter axis of `base` — the
/// hill-climb's neighbor move. Clamps keep every axis inside the range
/// the generator tolerates.
fn perturb(rng: &mut SmallRng, base: &GenParams) -> GenParams {
    let mut p = *base;
    let clamp = |v: f64, lo: f64, hi: f64| v.max(lo).min(hi);
    // Symmetric step in {-mag, ..., +mag} scaled to the axis.
    fn step(rng: &mut SmallRng, mag: f64) -> f64 {
        let grid = rng.random_range(0..=40i32) - 20;
        grid as f64 / 20.0 * mag
    }
    match rng.random_range(0..18u32) {
        axis @ 0..=12 => {
            let i = axis as usize;
            let delta = rng.random_range(1..4i32);
            let sign = if rng.random_bool(0.5) { 1 } else { -1 };
            p.weights[i] = (p.weights[i] as i32 + sign * delta).max(0) as u32;
            if p.weights.iter().sum::<u32>() == 0 {
                p.weights[i] = 1;
            }
        }
        13 => p.bias_frac = clamp(p.bias_frac + step(rng, 0.004), 0.90, 0.9995),
        14 => p.alias_rate = clamp(p.alias_rate + step(rng, 0.05), 0.0, 0.9),
        15 => p.switch_varied = clamp(p.switch_varied + step(rng, 0.05), 0.0, 0.9),
        16 => {
            let delta = rng.random_range(1..4usize);
            p.body_phrases = if rng.random_bool(0.5) {
                (p.body_phrases + delta).min(64)
            } else {
                p.body_phrases.saturating_sub(delta).max(8)
            };
        }
        _ => p.shared_callees = !p.shared_callees,
    }
    p
}

/// Fits a workload to `target` using the process-wide [`TraceStore`]
/// (memoized, and persistent when a cache directory is configured).
pub fn fit(target: &StatProfile, cfg: &FitConfig) -> Result<FitResult, FitError> {
    fit_with_store(target, cfg, TraceStore::global())
}

/// [`fit`] against an explicit trace store (tests use a private store to
/// observe cold/warm behavior in isolation).
pub fn fit_with_store(
    target: &StatProfile,
    cfg: &FitConfig,
    store: &TraceStore,
) -> Result<FitResult, FitError> {
    let name = clone_name(target, cfg.seed);
    let evaluate = |candidates: &[GenParams]| -> Vec<(f64, StatProfile)> {
        parallel::par_map(cfg.jobs, candidates, |p| {
            let w = candidate_workload(&name, cfg.fit_scale, *p);
            let trace = store.segment(&w, 0, cfg.fit_scale);
            let measured = StatProfile::measure(&trace);
            (measured.distance(target), measured)
        })
    };
    // Lowest distance wins; on exact ties the earliest candidate wins, so
    // the selection is independent of evaluation order (and job count).
    let best_of = |scored: &[(f64, StatProfile)]| -> usize {
        let mut best = 0;
        for (i, (d, _)) in scored.iter().enumerate() {
            if *d < scored[best].0 {
                best = i;
            }
        }
        best
    };

    // Start set: every suite workload's own generator parameters. A
    // target drawn from the suite therefore starts at (near-)zero
    // distance; foreign targets start from the closest archetype and the
    // hill-climb does the rest.
    let starts: Vec<GenParams> = workloads::all().iter().map(|w| *w.params()).collect();
    let mut evaluations = starts.len();
    let scored = evaluate(&starts);
    let i = best_of(&scored);
    let mut best_params = starts[i];
    let (mut best_dist, mut best_measured) = scored[i];

    let mut iterations = 0;
    while best_dist > cfg.tolerance && iterations < cfg.max_iters {
        let mut rng = SmallRng::split_stream(cfg.seed, iterations as u64);
        let neighbors: Vec<GenParams> = (0..cfg.candidates_per_iter)
            .map(|_| perturb(&mut rng, &best_params))
            .collect();
        let scored = evaluate(&neighbors);
        evaluations += neighbors.len();
        let i = best_of(&scored);
        if scored[i].0 < best_dist {
            best_params = neighbors[i];
            (best_dist, best_measured) = scored[i];
        }
        iterations += 1;
    }

    if best_dist > cfg.tolerance {
        return Err(FitError::NotConverged {
            best_distance: best_dist,
            tolerance: cfg.tolerance,
            iterations,
            evaluations,
            worst_component: best_measured.worst_component(target).0,
        });
    }

    let mut profile = Profile::new();
    profile.counter_add("clone.fit.iterations", iterations as u64);
    profile.counter_add("clone.fit.evaluations", evaluations as u64);
    profile.counter_add("clone.fit.converged", 1);
    profile.counter_add(
        "clone.fit.distance_milli",
        (best_dist * 1000.0).round() as u64,
    );
    Ok(FitResult {
        workload: candidate_workload(&name, cfg.fit_scale, best_params),
        measured: best_measured,
        distance: best_dist,
        iterations,
        evaluations,
        profile,
    })
}

/// Serializes a successful fit as a `replay-clone/v1` JSON artifact
/// (`"kind": "clone"`). Deliberately free of wall-clock fields: the
/// artifact is a pure function of `(target, cfg)`, so reruns
/// byte-compare equal.
pub fn clone_json(cfg: &FitConfig, target: &StatProfile, fit: &FitResult) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"kind\": \"clone\",\n"
    ));
    s.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    s.push_str(&format!("  \"fit_scale\": {},\n", cfg.fit_scale));
    s.push_str(&format!("  \"tolerance\": {},\n", json_f64(cfg.tolerance)));
    s.push_str(&format!("  \"name\": \"{}\",\n", fit.workload.name));
    s.push_str(&format!(
        "  \"spec_digest\": \"{:016x}\",\n",
        fit.workload.spec_digest()
    ));
    s.push_str(&format!("  \"distance\": {},\n", json_f64(fit.distance)));
    s.push_str(&format!("  \"iterations\": {},\n", fit.iterations));
    s.push_str(&format!("  \"evaluations\": {},\n", fit.evaluations));
    s.push_str(&format!("  \"target\": {},\n", profile_json(target)));
    s.push_str(&format!(
        "  \"measured\": {},\n",
        profile_json(&fit.measured)
    ));
    s.push_str(&format!(
        "  \"params\": {}\n}}\n",
        params_json(fit.workload.params())
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FitConfig {
        FitConfig {
            fit_scale: 2_000,
            max_iters: 6,
            candidates_per_iter: 4,
            ..FitConfig::default()
        }
    }

    #[test]
    fn suite_target_converges_immediately() {
        // The target's own generator parameters are in the start set, so
        // a suite-drawn target measured at fit_scale hits distance 0.
        let cfg = quick_cfg();
        let w = workloads::by_name("gzip").unwrap();
        let target = StatProfile::measure(&w.segment_trace(0, cfg.fit_scale));
        let store = TraceStore::new();
        let fit = fit_with_store(&target, &cfg, &store).expect("converges");
        assert_eq!(fit.iterations, 0);
        assert_eq!(fit.distance, 0.0);
        assert_eq!(fit.workload.params(), w.params());
        assert_eq!(fit.profile.counter("clone.fit.converged"), 1);
    }

    #[test]
    fn impossible_tolerance_is_a_typed_error() {
        // Tolerance 0 against a foreign-scale target cannot be met: the
        // fitter must say so, with the best distance it reached — never
        // return a nearest-miss workload.
        let cfg = FitConfig {
            tolerance: 0.0,
            max_iters: 2,
            candidates_per_iter: 2,
            fit_scale: 1_500,
            ..FitConfig::default()
        };
        let w = workloads::by_name("excel").unwrap();
        // Measure at a different scale so no start point is exact.
        let target = StatProfile::measure(&w.segment_trace(0, 3_000));
        let store = TraceStore::new();
        let err = fit_with_store(&target, &cfg, &store).expect_err("cannot converge");
        let FitError::NotConverged {
            best_distance,
            tolerance,
            iterations,
            evaluations,
            worst_component,
        } = err;
        assert!(best_distance > 0.0);
        assert_eq!(tolerance, 0.0);
        assert_eq!(iterations, 2);
        assert_eq!(evaluations, 14 + 2 * 2);
        assert!(!worst_component.is_empty());
    }

    #[test]
    fn fit_is_job_count_invariant() {
        let w = workloads::by_name("twolf").unwrap();
        // Perturbed target: forces at least some hill-climbing.
        let mut params = *w.params();
        params.weights[6] += 2; // alias_store
        params.alias_rate = 0.2;
        let twin = Workload::custom("t", w.suite, 1, 2_000, params);
        let target = StatProfile::measure(&twin.segment_trace(0, 2_000));
        let cfg1 = FitConfig {
            jobs: 1,
            ..quick_cfg()
        };
        let cfg8 = FitConfig {
            jobs: 8,
            ..quick_cfg()
        };
        let a = fit_with_store(&target, &cfg1, &TraceStore::new());
        let b = fit_with_store(&target, &cfg8, &TraceStore::new());
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.workload.spec_digest(), rb.workload.spec_digest());
                assert_eq!(ra.distance.to_bits(), rb.distance.to_bits());
                assert_eq!(ra.iterations, rb.iterations);
                assert_eq!(ra.evaluations, rb.evaluations);
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            (a, b) => panic!("jobs changed the outcome: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn clone_name_is_deterministic_and_target_sensitive() {
        let w = workloads::by_name("eon").unwrap();
        let t1 = StatProfile::measure(&w.segment_trace(0, 2_000));
        let t2 = StatProfile::measure(&w.segment_trace(0, 2_500));
        assert_eq!(clone_name(&t1, 7), clone_name(&t1, 7));
        assert_ne!(clone_name(&t1, 7), clone_name(&t1, 8), "seed-sensitive");
        assert_ne!(clone_name(&t1, 7), clone_name(&t2, 7), "target-sensitive");
    }

    #[test]
    fn perturb_changes_exactly_one_axis_and_respects_bounds() {
        let base = *workloads::by_name("sound").unwrap().params();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..500 {
            let p = perturb(&mut rng, &base);
            assert!(p.weights.iter().sum::<u32>() > 0);
            assert!((0.90..=0.9995).contains(&p.bias_frac));
            assert!((0.0..=0.9).contains(&p.alias_rate));
            assert!((0.0..=0.9).contains(&p.switch_varied));
            assert!((8..=64).contains(&p.body_phrases));
        }
    }
}
