//! Adversarial stress sweeps: walk generator parameters toward a
//! pathological corner and record where the RPO IPC gain collapses.

use crate::{json_f64, params_json, profile_json, SCHEMA};
use replay_sim::experiment::{gain_from, gain_specs, run_specs, GainPoint, SimSpec};
use replay_sim::{parallel, TraceStore};
use replay_trace::{GenParams, StatProfile, Suite, Workload};

/// A pathological corner of generator-parameter space. Each corner is a
/// straight-line trajectory from a benign base to an extreme point; the
/// sweep samples it at evenly-spaced steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corner {
    /// Branches stay biased enough to convert into assertions but fire
    /// often enough that recovery swamps the optimizer's winnings.
    AssertStorm,
    /// Stores increasingly alias the hot slot, defeating speculative
    /// store forwarding and triggering unsafe-store aborts.
    AliasHeavy,
    /// Unpredictable branch clusters and varied indirect jumps shred
    /// frame construction and the bias table.
    PredictorHostile,
}

impl Corner {
    /// Every corner, in sweep (and artifact) order.
    pub const ALL: [Corner; 3] = [
        Corner::AssertStorm,
        Corner::AliasHeavy,
        Corner::PredictorHostile,
    ];

    /// Stable corner name used in CLI arguments and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Corner::AssertStorm => "assert-storm",
            Corner::AliasHeavy => "alias-heavy",
            Corner::PredictorHostile => "predictor-hostile",
        }
    }

    /// Parses a corner name (as printed by [`Corner::name`]).
    pub fn parse(s: &str) -> Option<Corner> {
        Corner::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The benign end of this corner's trajectory: a SPECint-shaped
    /// program with strongly biased branches, little aliasing, and a mild
    /// optimizer-friendly mix — comfortably inside the regime where RPO
    /// wins (the paper's Figure 6 situation).
    fn base(&self) -> GenParams {
        // Close to `eon`'s tuning: strongly biased branches, no aliasing,
        // no coin-flip branches — the suite's most optimizer-friendly
        // shape (about +6 % RPO gain at the default sweep scale).
        GenParams {
            seed: 0, // overwritten with the sweep seed
            body_phrases: 30,
            //        LC RL SP AC BB UB AS TW SB NP DV SW BM
            weights: [4, 2, 1, 16, 5, 0, 0, 5, 2, 0, 2, 0, 2],
            bias_frac: 0.997,
            alias_rate: 0.0,
            shared_callees: false,
            switch_varied: 0.02,
            longflow: true,
        }
    }

    /// The pathological end of the trajectory.
    fn extreme(&self) -> GenParams {
        let mut p = self.base();
        match self {
            Corner::AssertStorm => {
                // More convertible branches, each firing its assertion
                // a few percent of the time: conversion still happens
                // (runs of ~20 dominant outcomes stay common) but every
                // fired assertion costs a pipeline flush and a replay.
                p.weights[4] = 24; // biased_branch
                p.weights[3] = 6; // arith_chain down: branches dominate
                p.bias_frac = 0.95;
            }
            Corner::AliasHeavy => {
                // Figure 10's excel pathology, amplified: most pointer
                // stores land on the hot slot, so speculative forwarding
                // and store-order optimizations backfire.
                p.weights[6] = 10; // alias_store
                p.weights[8] = 5; // store_burst
                p.weights[3] = 6;
                p.alias_rate = 0.65;
            }
            Corner::PredictorHostile => {
                // Coin-flip branch clusters and varied indirect targets:
                // frames die young, coverage collapses, and what frames
                // survive carry no convertible branches.
                p.weights[5] = 14; // unbiased_branch
                p.weights[12] = 16; // branch_maze
                p.weights[11] = 10; // switch_jump
                p.weights[4] = 0;
                p.weights[3] = 4;
                p.weights[1] = 0; // redundant_loads: nothing left to elide
                p.weights[10] = 0; // div_chain
                p.switch_varied = 0.8;
            }
        }
        p
    }

    /// The trajectory point at interpolation fraction `t` in `[0, 1]`.
    fn at(&self, t: f64, seed: u64) -> GenParams {
        let a = self.base();
        let b = self.extreme();
        let li = |x: u32, y: u32| (x as f64 + (y as f64 - x as f64) * t).round() as u32;
        let lf = |x: f64, y: f64| x + (y - x) * t;
        GenParams {
            seed,
            body_phrases: li(a.body_phrases as u32, b.body_phrases as u32) as usize,
            weights: {
                let mut w = [0u32; 13];
                for (i, slot) in w.iter_mut().enumerate() {
                    *slot = li(a.weights[i], b.weights[i]);
                }
                w
            },
            bias_frac: lf(a.bias_frac, b.bias_frac),
            alias_rate: lf(a.alias_rate, b.alias_rate),
            shared_callees: a.shared_callees,
            switch_varied: lf(a.switch_varied, b.switch_varied),
            longflow: a.longflow,
        }
    }
}

/// Sweep configuration. Like the fitter, every field participates in the
/// deterministic result.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seed stamped into every synthesized point's generator.
    pub seed: u64,
    /// Samples per corner trajectory (step 0 = base, last = extreme).
    pub steps: usize,
    /// Dynamic x86 instructions per trace.
    pub scale: usize,
    /// The RPO-over-RP gain (percent) below which a point counts as
    /// collapsed.
    pub gain_floor_pct: f64,
    /// Worker threads; any value yields the identical artifact.
    pub jobs: usize,
    /// Corners to sweep, in order.
    pub corners: Vec<Corner>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            // Pinned to a seed whose benign base point shows a healthy
            // positive RPO gain at the default scale, so collapse along a
            // trajectory is attributable to the stress axis, not the seed.
            seed: 0xe0e0,
            steps: 6,
            scale: 6_000,
            gain_floor_pct: 1.0,
            jobs: 1,
            corners: Corner::ALL.to_vec(),
        }
    }
}

/// One sampled point along a corner trajectory.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Corner name.
    pub corner: &'static str,
    /// Step index along the trajectory.
    pub step: usize,
    /// Interpolation fraction (`step / (steps - 1)`).
    pub frac: f64,
    /// Specification digest of the synthesized workload — enough, with
    /// the seed, to regenerate the exact trace.
    pub spec_digest: u64,
    /// The RP-vs-RPO measurement.
    pub gain: GainPoint,
    /// The point's measured statistical profile.
    pub profile: StatProfile,
}

/// One corner's full trajectory plus its discovered collapse point.
#[derive(Debug, Clone)]
pub struct CornerResult {
    /// Corner name.
    pub corner: &'static str,
    /// All sampled points, in step order.
    pub points: Vec<SweepPoint>,
    /// The first step whose gain fell below the floor, if any.
    pub collapse_step: Option<usize>,
}

/// A complete sweep: per-corner trajectories and the configuration that
/// produced them.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The configuration the sweep ran with (echoed into the artifact).
    pub config: SweepConfig,
    /// Per-corner results, in configuration order.
    pub corners: Vec<CornerResult>,
}

/// The synthesized workload of one sweep point.
fn point_workload(corner: Corner, step: usize, steps: usize, cfg: &SweepConfig) -> Workload {
    let frac = if steps <= 1 {
        0.0
    } else {
        step as f64 / (steps - 1) as f64
    };
    Workload::custom(
        format!("{}-{step}", corner.name()),
        Suite::SpecInt,
        1,
        cfg.scale,
        corner.at(frac, cfg.seed),
    )
}

/// Runs the sweep: every `(corner, step)` point is synthesized, profiled,
/// and simulated under RP and RPO — all points batched through one
/// order-preserving parallel map, so the artifact is bit-identical at any
/// `jobs`.
pub fn run_sweep(cfg: &SweepConfig) -> SweepResult {
    let steps = cfg.steps.max(2);
    let points: Vec<(Corner, usize)> = cfg
        .corners
        .iter()
        .flat_map(|c| (0..steps).map(move |s| (*c, s)))
        .collect();
    let workloads: Vec<Workload> = points
        .iter()
        .map(|&(c, s)| point_workload(c, s, steps, cfg))
        .collect();

    // Profiles first (this also warms the trace store for the specs).
    let profiles: Vec<StatProfile> = parallel::par_map(cfg.jobs, &workloads, |w| {
        StatProfile::measure(&TraceStore::global().segment(w, 0, cfg.scale))
    });

    // One batch: RP and RPO for every point.
    let specs: Vec<SimSpec> = workloads
        .iter()
        .flat_map(|w| gain_specs(w, cfg.scale))
        .collect();
    let results = run_specs(&specs, cfg.jobs);

    let mut corners: Vec<CornerResult> = Vec::new();
    for ((&(corner, step), w), (profile, pair)) in points
        .iter()
        .zip(&workloads)
        .zip(profiles.iter().zip(results.chunks_exact(2)))
    {
        let gain = gain_from(&pair[0], &pair[1]);
        if step == 0 {
            corners.push(CornerResult {
                corner: corner.name(),
                points: Vec::new(),
                collapse_step: None,
            });
        }
        let cr = corners.last_mut().expect("step 0 opened the corner");
        if cr.collapse_step.is_none() && gain.rpo_gain_pct < cfg.gain_floor_pct {
            cr.collapse_step = Some(step);
        }
        cr.points.push(SweepPoint {
            corner: corner.name(),
            step,
            frac: if steps <= 1 {
                0.0
            } else {
                step as f64 / (steps - 1) as f64
            },
            spec_digest: w.spec_digest(),
            gain,
            profile: *profile,
        });
    }
    SweepResult {
        config: SweepConfig {
            steps,
            ..cfg.clone()
        },
        corners,
    }
}

impl SweepResult {
    /// Serializes the sweep as a `replay-clone/v1` JSON artifact
    /// (`"kind": "sweep"`). No wall-clock or host fields: the bytes are a
    /// pure function of the configuration, so a golden artifact can be
    /// byte-compared in CI.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"kind\": \"sweep\",\n"
        ));
        s.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        s.push_str(&format!("  \"steps\": {},\n", self.config.steps));
        s.push_str(&format!("  \"scale\": {},\n", self.config.scale));
        s.push_str(&format!(
            "  \"gain_floor_pct\": {},\n",
            json_f64(self.config.gain_floor_pct)
        ));
        s.push_str("  \"corners\": [\n");
        for (ci, corner) in self.corners.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"corner\": \"{}\", \"collapse_step\": {},\n     \"points\": [\n",
                corner.corner,
                match corner.collapse_step {
                    Some(step) => step.to_string(),
                    None => "null".to_string(),
                }
            ));
            for (pi, p) in corner.points.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"step\": {}, \"frac\": {}, \"spec_digest\": \"{:016x}\", \
                     \"params\": {}, \"rp_ipc\": {}, \"rpo_ipc\": {}, \"rpo_gain_pct\": {}, \
                     \"coverage\": {}, \"assert_cycle_frac\": {}, \"profile\": {}}}{}\n",
                    p.step,
                    json_f64(p.frac),
                    p.spec_digest,
                    params_json(
                        point_workload(
                            Corner::parse(p.corner).expect("known corner"),
                            p.step,
                            self.config.steps,
                            &self.config
                        )
                        .params()
                    ),
                    json_f64(p.gain.rp_ipc),
                    json_f64(p.gain.rpo_ipc),
                    json_f64(p.gain.rpo_gain_pct),
                    json_f64(p.gain.coverage),
                    json_f64(p.gain.assert_cycle_frac),
                    profile_json(&p.profile),
                    if pi + 1 == corner.points.len() {
                        ""
                    } else {
                        ","
                    }
                ));
            }
            s.push_str(&format!(
                "    ]}}{}\n",
                if ci + 1 == self.corners.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg() -> SweepConfig {
        SweepConfig {
            steps: 3,
            scale: 1_500,
            corners: vec![Corner::AliasHeavy],
            ..SweepConfig::default()
        }
    }

    #[test]
    fn corner_names_round_trip() {
        for c in Corner::ALL {
            assert_eq!(Corner::parse(c.name()), Some(c));
        }
        assert_eq!(Corner::parse("nonesuch"), None);
    }

    #[test]
    fn trajectory_endpoints_match_base_and_extreme() {
        for c in Corner::ALL {
            let mut base = c.base();
            base.seed = 7;
            let mut extreme = c.extreme();
            extreme.seed = 7;
            assert_eq!(c.at(0.0, 7), base);
            assert_eq!(c.at(1.0, 7), extreme);
            // Every corner actually moves somewhere.
            assert_ne!(c.at(0.0, 7), c.at(1.0, 7), "{}", c.name());
        }
    }

    #[test]
    fn sweep_points_are_ordered_and_digest_distinct() {
        let r = run_sweep(&mini_cfg());
        assert_eq!(r.corners.len(), 1);
        let points = &r.corners[0].points;
        assert_eq!(points.len(), 3);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.step, i);
        }
        let mut digests: Vec<u64> = points.iter().map(|p| p.spec_digest).collect();
        digests.dedup();
        assert_eq!(digests.len(), 3, "each step is a distinct spec");
    }

    #[test]
    fn sweep_json_is_schema_tagged_and_job_invariant() {
        let a = run_sweep(&SweepConfig {
            jobs: 1,
            ..mini_cfg()
        })
        .to_json();
        let b = run_sweep(&SweepConfig {
            jobs: 4,
            ..mini_cfg()
        })
        .to_json();
        assert!(a.starts_with("{\n  \"schema\": \"replay-clone/v1\""));
        assert_eq!(a, b, "artifact is byte-identical across job counts");
    }
}
