//! # replay-clone
//!
//! Profile-fitted workload cloning and adversarial stress sweeps.
//!
//! The paper evaluates rePLay on a fixed fourteen-workload suite. This
//! crate inverts that: instead of hand-tuning generator parameters to hit
//! a target behavior, it *searches* the generator-parameter space
//! ([`replay_trace::GenParams`]) for a point whose synthesized trace
//! matches a target [`replay_trace::StatProfile`] within tolerance —
//! MicroGrad-style workload cloning. Two entry points:
//!
//! - [`fit`] — deterministic seeded hill-climb over phrase weights and
//!   behavioral probabilities. Every candidate generation draws from
//!   [`replay_rng::SmallRng::split_stream`] keyed by `(seed, iteration)`
//!   and candidates are evaluated via an order-preserving parallel map,
//!   so the result is bit-identical at any worker count. Non-convergence
//!   is a typed [`FitError`], never a silently-returned nearest miss.
//! - [`run_sweep`] — walks generator parameters from a benign base
//!   toward a pathological corner (assert-storm, alias-heavy,
//!   predictor-hostile), measures the RPO-over-RP IPC gain at every
//!   step, and records where the gain collapses below a floor. The
//!   result serializes as a deterministic `replay-clone/v1` JSON
//!   artifact (no wall-clock fields), byte-identical across runs, job
//!   counts, and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod sweep;

pub use fit::{clone_json, fit, fit_with_store, FitConfig, FitError, FitResult};
pub use sweep::{run_sweep, Corner, CornerResult, SweepConfig, SweepPoint, SweepResult};

/// The schema tag stamped on every JSON artifact this crate emits.
pub const SCHEMA: &str = "replay-clone/v1";

/// Formats an `f64` as a JSON number (Rust's shortest-roundtrip `{:?}`
/// output is valid JSON for every finite value).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Serializes a [`replay_trace::GenParams`] as a JSON object — enough to
/// regenerate the workload exactly.
pub(crate) fn params_json(p: &replay_trace::GenParams) -> String {
    let weights: Vec<String> = p.weights.iter().map(|w| w.to_string()).collect();
    format!(
        "{{\"seed\":{},\"body_phrases\":{},\"weights\":[{}],\"bias_frac\":{},\
         \"alias_rate\":{},\"shared_callees\":{},\"switch_varied\":{},\"longflow\":{}}}",
        p.seed,
        p.body_phrases,
        weights.join(","),
        json_f64(p.bias_frac),
        json_f64(p.alias_rate),
        p.shared_callees,
        json_f64(p.switch_varied),
        p.longflow,
    )
}

/// Serializes a [`replay_trace::StatProfile`] as a JSON object keyed by
/// dimension name.
pub(crate) fn profile_json(p: &replay_trace::StatProfile) -> String {
    let fields: Vec<String> = p
        .components()
        .iter()
        .map(|(name, v)| format!("\"{}\":{}", name.replace('.', "_"), json_f64(*v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}
