//! The on-disk artifact container: header, key echo, payload checksum.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"RPAS"
//!      4     4  container schema version (1)
//!      8     8  class digest (FNV-1a of the artifact class name)
//!     16     8  key (the content digest the artifact is addressed by)
//!     24     8  payload length in bytes
//!     32     8  payload checksum (FNV-1a of the payload bytes)
//!     40     …  payload
//! ```
//!
//! The class digest and key echo guard against a file renamed or copied
//! into the wrong slot; the checksum guards against truncation and bit
//! rot. Decoding never panics — any mismatch is reported as a typed
//! [`ArtifactError`] so the store can evict and regenerate.

use crate::digest::{digest_bytes, Digest64};
use crate::wire::Reader;
use std::fmt;

/// Container magic.
pub const MAGIC: [u8; 4] = *b"RPAS";

/// Container schema version. Bump on any header layout change; old
/// containers are then evicted as corrupt and regenerated.
pub const SCHEMA_VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 40;

/// Why an artifact failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// File shorter than the fixed header.
    Truncated,
    /// Magic bytes differ.
    BadMagic([u8; 4]),
    /// Schema version differs from [`SCHEMA_VERSION`].
    BadVersion(u32),
    /// Artifact belongs to a different class (file moved between slots).
    ClassMismatch {
        /// Digest stored in the header.
        found: u64,
        /// Digest of the class the caller asked for.
        expected: u64,
    },
    /// Key echo differs from the requested key (file renamed).
    KeyMismatch {
        /// Key stored in the header.
        found: u64,
        /// Key the caller asked for.
        expected: u64,
    },
    /// Announced payload length disagrees with the file size.
    LengthMismatch {
        /// Length stored in the header.
        announced: u64,
        /// Bytes actually present after the header.
        present: u64,
    },
    /// Payload bytes fail their checksum.
    ChecksumMismatch,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated => write!(f, "truncated header"),
            ArtifactError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ArtifactError::BadVersion(v) => {
                write!(f, "container version {v} (want {SCHEMA_VERSION})")
            }
            ArtifactError::ClassMismatch { found, expected } => {
                write!(f, "class digest {found:#018x} != {expected:#018x}")
            }
            ArtifactError::KeyMismatch { found, expected } => {
                write!(f, "key {found:#018x} != {expected:#018x}")
            }
            ArtifactError::LengthMismatch { announced, present } => {
                write!(f, "payload length {announced} but {present} bytes present")
            }
            ArtifactError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Digest of an artifact class name, as stored in the header.
pub fn class_digest(class: &str) -> u64 {
    digest_bytes(class.as_bytes())
}

/// Wraps a payload in the checksummed container.
pub fn encode(class: &str, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&class_digest(class).to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&digest_bytes(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a container and returns its payload slice.
///
/// Checks, in order: header presence, magic, schema version, class, key
/// echo, payload length, payload checksum. Tolerates any corruption —
/// truncated, bit-flipped, or forged input yields an error, never a panic
/// and never a silently wrong payload.
pub fn decode<'a>(bytes: &'a [u8], class: &str, key: u64) -> Result<&'a [u8], ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::Truncated);
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    let mut r = Reader::new(header);
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = r.get_u8("magic").expect("header sized above");
    }
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic(magic));
    }
    let version = r.get_u32("version").expect("header sized above");
    if version != SCHEMA_VERSION {
        return Err(ArtifactError::BadVersion(version));
    }
    let found_class = r.get_u64("class").expect("header sized above");
    let expected_class = class_digest(class);
    if found_class != expected_class {
        return Err(ArtifactError::ClassMismatch {
            found: found_class,
            expected: expected_class,
        });
    }
    let found_key = r.get_u64("key").expect("header sized above");
    if found_key != key {
        return Err(ArtifactError::KeyMismatch {
            found: found_key,
            expected: key,
        });
    }
    let announced = r.get_u64("payload length").expect("header sized above");
    if announced != payload.len() as u64 {
        return Err(ArtifactError::LengthMismatch {
            announced,
            present: payload.len() as u64,
        });
    }
    let checksum = r.get_u64("checksum").expect("header sized above");
    let mut d = Digest64::new();
    d.write(payload);
    if d.finish() != checksum {
        return Err(ArtifactError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let enc = encode("trace", 0xABCD, b"hello payload");
        assert_eq!(decode(&enc, "trace", 0xABCD).unwrap(), b"hello payload");
    }

    #[test]
    fn empty_payload_round_trips() {
        let enc = encode("frames", 7, b"");
        assert_eq!(decode(&enc, "frames", 7).unwrap(), b"");
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let enc = encode("trace", 1, b"some payload bytes");
        for cut in 0..enc.len() {
            assert!(
                decode(&enc[..cut], "trace", 1).is_err(),
                "cut at {cut} must not validate"
            );
        }
    }

    #[test]
    fn single_bit_flips_detected() {
        let enc = encode("trace", 1, b"payload under test");
        for byte in 0..enc.len() {
            let mut bad = enc.clone();
            bad[byte] ^= 0x10;
            assert!(
                decode(&bad, "trace", 1).is_err(),
                "flip in byte {byte} must not validate"
            );
        }
    }

    #[test]
    fn wrong_class_and_key_rejected() {
        let enc = encode("trace", 5, b"x");
        assert!(matches!(
            decode(&enc, "frames", 5),
            Err(ArtifactError::ClassMismatch { .. })
        ));
        assert!(matches!(
            decode(&enc, "trace", 6),
            Err(ArtifactError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn version_bump_rejected() {
        let mut enc = encode("trace", 5, b"x");
        enc[4..8].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode(&enc, "trace", 5),
            Err(ArtifactError::BadVersion(SCHEMA_VERSION + 1))
        );
    }
}
