//! The on-disk store: atomic writers, corruption-tolerant readers,
//! process-wide configuration.

use crate::artifact;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the cache directory. Setting it enables
/// the store for processes that never call [`Store::configure`] (tests,
/// library embedders); the CLI's `--cache-dir` takes precedence over it.
pub const CACHE_DIR_ENV: &str = "REPLAY_CACHE_DIR";

/// Environment variable that disables the store everywhere, overriding
/// both [`Store::configure`] and [`CACHE_DIR_ENV`].
pub const NO_STORE_ENV: &str = "REPLAY_NO_STORE";

/// A persistent, content-addressed artifact store rooted at one
/// directory.
///
/// Artifacts are addressed by `(class, key)` — a short class name
/// (`"trace"`, `"frames"`) and a stable 64-bit content digest of
/// everything that determines the artifact's bytes. Writers are
/// crash-safe (unique temp file, fsync, atomic rename — a loser of a
/// same-key race simply renames over identical content); readers tolerate
/// arbitrary corruption by evicting the damaged file and reporting a
/// miss, so the caller regenerates. All counters are process-lifetime
/// totals and safe to read concurrently.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    corrupt_evictions: AtomicU64,
    write_seq: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, class: &str, key: u64) -> PathBuf {
        self.root.join(format!("{class}-{key:016x}.rpa"))
    }

    /// Loads and validates an artifact's payload.
    ///
    /// Returns `None` — after evicting the file and counting a corrupt
    /// eviction — if the artifact is truncated, bit-flipped, mislabeled,
    /// or from a different container schema. Never panics on any file
    /// content.
    pub fn load(&self, class: &str, key: u64) -> Option<Vec<u8>> {
        let path = self.path_for(class, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match artifact::decode(&bytes, class, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            Err(e) => {
                self.evict_corrupt(class, key, &e.to_string());
                None
            }
        }
    }

    /// Removes a damaged artifact, warns, and counts the eviction (plus
    /// the miss the caller is about to regenerate).
    ///
    /// Also the escape hatch for the caller-side round-trip gate: when a
    /// payload passes the container checksum but fails its own decode or
    /// re-encode comparison, the caller evicts through here.
    pub fn evict_corrupt(&self, class: &str, key: u64, why: &str) {
        let path = self.path_for(class, key);
        let _ = fs::remove_file(&path);
        self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "warning: replay-store: evicting corrupt artifact {} ({why}); regenerating",
            path.display()
        );
    }

    /// Atomically persists an artifact: unique temp file, fsync, rename.
    ///
    /// Returns `false` (after cleaning up the temp file) if any I/O step
    /// fails — a full disk or permission problem degrades to a cold cache,
    /// never to a torn artifact, because the final name only ever appears
    /// via `rename`. Concurrent same-key writers each rename their own
    /// complete temp file; whichever loses simply overwrites identical
    /// content.
    pub fn save(&self, class: &str, key: u64, payload: &[u8]) -> bool {
        let bytes = artifact::encode(class, key, payload);
        let final_path = self.path_for(class, key);
        let seq = self.write_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(
            ".{class}-{key:016x}.tmp.{}.{seq}",
            std::process::id()
        ));
        let committed = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, &final_path)
        })();
        match committed {
            Ok(()) => {
                // Make the rename durable too (best effort — some
                // filesystems reject directory fsync).
                if let Ok(dir) = fs::File::open(&self.root) {
                    let _ = dir.sync_all();
                }
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.bytes_written
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                true
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                eprintln!(
                    "warning: replay-store: could not persist {}: {e}",
                    final_path.display()
                );
                false
            }
        }
    }

    /// Exports an artifact as raw container bytes for peer transport.
    ///
    /// The bytes are the on-disk `.rpa` container exactly — magic,
    /// version, class digest, key echo, payload, checksum — validated
    /// before export so a locally corrupted file is evicted here instead
    /// of being shipped to a peer. Counts as a hit (the read served).
    pub fn export(&self, class: &str, key: u64) -> Option<Vec<u8>> {
        let path = self.path_for(class, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match artifact::decode(&bytes, class, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                Some(bytes)
            }
            Err(e) => {
                self.evict_corrupt(class, key, &e.to_string());
                None
            }
        }
    }

    /// Imports raw container bytes received from a peer.
    ///
    /// The container is fully validated against the expected `(class,
    /// key)` — wrong class digest, wrong key echo, truncation, or a bad
    /// checksum is rejected without touching disk — then re-persisted
    /// through the same atomic [`Store::save`] path. Returns `false` on
    /// any validation or I/O failure; a hostile or damaged container can
    /// never poison the local store.
    pub fn import(&self, class: &str, key: u64, container: &[u8]) -> bool {
        let payload = match artifact::decode(container, class, key) {
            Ok(p) => p.to_vec(),
            Err(e) => {
                eprintln!("warning: replay-store: rejecting peer artifact {class}-{key:016x}: {e}");
                return false;
            }
        };
        self.save(class, key, &payload)
    }

    /// Validated artifact loads served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that found no (usable) artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Artifacts persisted.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Payload bytes served from validated artifacts.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Payload bytes persisted.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Damaged artifacts evicted (each also counts one miss).
    pub fn corrupt_evictions(&self) -> u64 {
        self.corrupt_evictions.load(Ordering::Relaxed)
    }

    /// Records the store counters into an [`replay_obs::Obs`] under
    /// `store.*`.
    pub fn observe_into(&self, obs: &mut replay_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.counter("store.hits", self.hits());
        obs.counter("store.misses", self.misses());
        obs.counter("store.writes", self.writes());
        obs.counter("store.bytes_read", self.bytes_read());
        obs.counter("store.bytes_written", self.bytes_written());
        obs.counter("store.corrupt_evictions", self.corrupt_evictions());
    }

    /// Configures the process-wide store before first use.
    ///
    /// `Some(dir)` enables it rooted at `dir` (unless [`NO_STORE_ENV`] is
    /// set, which always wins); `None` disables it. Returns `false` if the
    /// global store was already resolved — configuration must happen
    /// before the first [`Store::global`] call.
    pub fn configure(dir: Option<PathBuf>) -> bool {
        GLOBAL.set(resolve(dir)).is_ok()
    }

    /// The process-wide store, if one is enabled.
    ///
    /// Without an explicit [`Store::configure`] call the store is enabled
    /// only when [`CACHE_DIR_ENV`] names a directory — so `cargo test`
    /// and library embedders stay hermetic by default.
    pub fn global() -> Option<&'static Store> {
        GLOBAL
            .get_or_init(|| resolve(std::env::var_os(CACHE_DIR_ENV).map(PathBuf::from)))
            .as_ref()
    }
}

static GLOBAL: OnceLock<Option<Store>> = OnceLock::new();

fn resolve(dir: Option<PathBuf>) -> Option<Store> {
    if std::env::var_os(NO_STORE_ENV).is_some() {
        return None;
    }
    let dir = dir?;
    match Store::open(&dir) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!(
                "warning: replay-store: cannot open cache dir {}: {e}; store disabled",
                dir.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory under the target tmpdir.
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "replay-store-test-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_then_load_round_trips() {
        let store = Store::open(scratch("roundtrip")).unwrap();
        assert!(store.save("trace", 0x11, b"payload"));
        assert_eq!(store.load("trace", 0x11).unwrap(), b"payload");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.writes(), 1);
        assert_eq!(store.bytes_written(), 7);
        assert_eq!(store.bytes_read(), 7);
    }

    #[test]
    fn missing_artifact_is_a_plain_miss() {
        let store = Store::open(scratch("miss")).unwrap();
        assert!(store.load("trace", 0x22).is_none());
        assert_eq!(store.misses(), 1);
        assert_eq!(store.corrupt_evictions(), 0);
    }

    #[test]
    fn truncated_artifact_evicted_and_regenerable() {
        let store = Store::open(scratch("truncate")).unwrap();
        store.save("trace", 0x33, b"a payload long enough to truncate");
        let path = store.path_for("trace", 0x33);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        assert!(store.load("trace", 0x33).is_none());
        assert_eq!(store.corrupt_evictions(), 1);
        assert!(!path.exists(), "damaged file removed");
        // Regeneration path: a fresh save works and validates again.
        assert!(store.save("trace", 0x33, b"regenerated"));
        assert_eq!(store.load("trace", 0x33).unwrap(), b"regenerated");
    }

    #[test]
    fn bit_flip_evicted() {
        let store = Store::open(scratch("bitflip")).unwrap();
        store.save("frames", 0x44, b"sensitive bits");
        let path = store.path_for("frames", 0x44);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load("frames", 0x44).is_none());
        assert_eq!(store.corrupt_evictions(), 1);
    }

    #[test]
    fn export_import_round_trips_between_stores() {
        let a = Store::open(scratch("export-a")).unwrap();
        let b = Store::open(scratch("export-b")).unwrap();
        assert!(a.save("trace", 0x55, b"replicate me"));
        let container = a.export("trace", 0x55).expect("export warm artifact");
        assert!(a.export("trace", 0x99).is_none(), "cold export is a miss");
        assert!(b.import("trace", 0x55, &container));
        assert_eq!(b.load("trace", 0x55).unwrap(), b"replicate me");
    }

    #[test]
    fn import_rejects_wrong_class_key_and_corruption() {
        let a = Store::open(scratch("import-a")).unwrap();
        let b = Store::open(scratch("import-b")).unwrap();
        assert!(a.save("trace", 0x66, b"victim payload"));
        let container = a.export("trace", 0x66).unwrap();

        // Wrong class digest: a "trace" container cannot enter as "frames".
        assert!(!b.import("frames", 0x66, &container));
        // Wrong key echo.
        assert!(!b.import("trace", 0x67, &container));
        // Bit flip anywhere in the container.
        let mut flipped = container.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(!b.import("trace", 0x66, &flipped));
        // Truncation at every cut must be rejected, never a panic.
        for cut in 0..container.len() {
            assert!(!b.import("trace", 0x66, &container[..cut]), "cut {cut}");
        }
        // Nothing hostile reached disk.
        assert!(b.load("trace", 0x66).is_none());
        assert!(b.load("frames", 0x66).is_none());
    }

    #[test]
    fn export_evicts_locally_corrupt_artifact_instead_of_shipping_it() {
        let store = Store::open(scratch("export-corrupt")).unwrap();
        store.save("trace", 0x77, b"soon to be damaged");
        let path = store.path_for("trace", 0x77);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.export("trace", 0x77).is_none());
        assert_eq!(store.corrupt_evictions(), 1);
        assert!(!path.exists());
    }

    #[test]
    fn no_temp_files_left_behind() {
        let store = Store::open(scratch("tmpclean")).unwrap();
        for k in 0..8u64 {
            store.save("trace", k, &[k as u8; 128]);
        }
        let leftovers: Vec<_> = fs::read_dir(store.root())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files remain: {leftovers:?}");
    }
}
