//! Minimal little-endian byte-buffer codec shared by artifact payloads.
//!
//! Every multi-byte value is little-endian; variable-length sequences are
//! length-prefixed. The reader is total: any malformed input — truncation,
//! an out-of-range tag, an absurd length — surfaces as a [`WireError`],
//! never a panic, because artifact payloads come from disk and may be
//! arbitrarily corrupted.

use std::fmt;

/// A decode failure. The store treats any wire error as artifact
/// corruption: the artifact is evicted and its content regenerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced content did.
    UnexpectedEof {
        /// What was being read.
        what: &'static str,
    },
    /// An enum tag outside its valid range.
    BadTag {
        /// Which kind of tag.
        what: &'static str,
        /// The offending byte value.
        value: u64,
    },
    /// A length prefix larger than the remaining buffer could hold.
    BadLength {
        /// What the length prefixed.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// Bytes remained after the decoder consumed a complete value.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { what } => write!(f, "truncated {what}"),
            WireError::BadTag { what, value } => write!(f, "invalid {what} tag {value}"),
            WireError::BadLength { what, len } => write!(f, "oversized {what} length {len}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (caller handles any length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Consuming decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless every byte was consumed — a complete decode that
    /// leaves residue means the payload and decoder disagree about the
    /// format, which the store treats as corruption.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::UnexpectedEof { what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i32`.
    pub fn get_i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads `n` raw bytes (caller handles any length prefix, typically
    /// via [`Reader::get_len`] with `min_elem_size` 1).
    pub fn get_bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Reads a length prefix that must be payable by the remaining bytes
    /// at `min_elem_size` bytes per element — rejecting forged lengths
    /// *before* any allocation sized by them.
    pub fn get_len(
        &mut self,
        what: &'static str,
        min_elem_size: usize,
    ) -> Result<usize, WireError> {
        let len = self.get_u32(what)? as u64;
        let need = len.saturating_mul(min_elem_size.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(WireError::BadLength { what, len });
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i32(-42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.get_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i32("e").unwrap(), -42);
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn byte_slices_round_trip_with_length_prefix() {
        let mut w = Writer::new();
        w.put_u32(3);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let n = r.get_len("blob", 1).unwrap();
        assert_eq!(r.get_bytes(n, "blob").unwrap(), b"abc");
        assert_eq!(r.finish(), Ok(()));
        // Truncated payload surfaces as an error, not a panic.
        let mut r = Reader::new(&bytes[..5]);
        assert!(r.get_len("blob", 1).is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.get_u32("field"),
            Err(WireError::UnexpectedEof { what: "field" })
        );
    }

    #[test]
    fn forged_length_rejected_before_allocation() {
        // Claims 4 billion elements with a 6-byte buffer.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u16(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.get_len("slots", 4).unwrap_err();
        assert!(matches!(err, WireError::BadLength { what: "slots", .. }));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[0]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes));
    }
}
