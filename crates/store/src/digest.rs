//! Stable 64-bit content digests (FNV-1a).
//!
//! Artifact keys must be identical across processes, platforms, and Rust
//! versions, so the store does not use [`std::hash`] (whose `Hasher`
//! implementations are explicitly unstable and randomly seeded). FNV-1a
//! over explicitly little-endian field encodings is stable by
//! construction, one multiply per byte, and more than strong enough for
//! cache addressing — the store never treats a digest match as proof of
//! byte equality without the payload checksum alongside it.

/// An incremental FNV-1a 64-bit hasher over typed fields.
///
/// Multi-byte integers are folded in little-endian order; every `write_*`
/// helper is a thin wrapper over [`Digest64::write`] so two field
/// sequences collide only if their byte streams agree.
#[derive(Debug, Clone, Copy)]
pub struct Digest64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest64 {
    fn default() -> Digest64 {
        Digest64::new()
    }
}

impl Digest64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Digest64 {
        Digest64(FNV_OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `i32` (little-endian two's complement).
    pub fn write_i32(&mut self, v: i32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` by its IEEE-754 bit pattern (`-0.0 != 0.0`, and a
    /// NaN parameter — nonsensical but representable — still digests
    /// deterministically).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Folds a string as length + UTF-8 bytes (length-prefixing keeps
    /// `("ab","c")` and `("a","bc")` distinct).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot digest of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest64::new();
    d.write(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(digest_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_prefixing_disambiguates() {
        let mut a = Digest64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writes_match_byte_writes() {
        let mut a = Digest64::new();
        a.write_u32(0x0403_0201);
        let mut b = Digest64::new();
        b.write(&[1, 2, 3, 4]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = Digest64::new();
        a.write_f64(0.0);
        let mut b = Digest64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
