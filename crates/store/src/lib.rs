//! # replay-store
//!
//! A persistent, content-addressed artifact store for the rePLay engine.
//!
//! Synthesizing a workload trace and optimizing its frames are pure
//! functions of their inputs, yet before this crate every *process*
//! recomputed them from scratch — the in-memory memoization of
//! `replay_sim::TraceStore` dies with the process. This crate adds the
//! disk layer beneath it: artifacts cached under a directory (default
//! `.replay-cache/` for the CLI) keyed by a stable 64-bit content digest
//! of everything that determines their bytes, so warm runs skip synthesis
//! and optimization entirely.
//!
//! Three properties the implementation guarantees:
//!
//! * **Crash/concurrency safety** — writers stage to a unique temp file,
//!   fsync, then atomically rename. A racer that loses simply renames
//!   identical content over the winner; a crash leaves at most a stale
//!   temp file, never a torn artifact under the final name.
//! * **Corruption tolerance** — every artifact carries a header with
//!   magic, schema version, class digest, key echo, payload length, and
//!   payload checksum. A truncated, bit-flipped, mislabeled, or
//!   version-skewed artifact is evicted with a warning and counted in
//!   `store.corrupt_evictions`; the caller regenerates. Readers never
//!   panic on any file content and never return unvalidated bytes.
//! * **Observability** — hits, misses, writes, byte volumes, and corrupt
//!   evictions are process-lifetime counters surfaced through
//!   [`replay_obs`](replay_obs) under `store.*`.
//!
//! Digests are FNV-1a 64 over explicitly little-endian field encodings
//! ([`Digest64`]), stable across processes and platforms. A 64-bit digest
//! collision is the one silent-wrongness vector; at the store's scale
//! (dozens of artifacts) the birthday bound keeps that risk negligible,
//! and the payload checksum still rejects any *damaged* artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
mod digest;
mod store;
pub mod wire;

pub use artifact::ArtifactError;
pub use digest::{digest_bytes, Digest64};
pub use store::{Store, CACHE_DIR_ENV, NO_STORE_ENV};
pub use wire::{Reader, WireError, Writer};
