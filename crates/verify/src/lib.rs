//! # replay-verify
//!
//! The **State Verifier** of the simulation environment (paper §5.1.3).
//!
//! The verifier's job is two-fold:
//!
//! 1. check that decode flows are correct — every executed x86 instruction's
//!    register state changes and memory transactions must match the trace
//!    (this reproduction generates traces *from* the decode flows, so that
//!    direction is exercised by the `replay-x86` test suite), and
//! 2. validate the optimizer: an optimized frame, executed from the
//!    machine state at its fetch point, must transform architectural
//!    register state and memory exactly as the original instruction
//!    sequence does.
//!
//! Two checking styles are provided:
//!
//! * [`verify_against_records`] — the paper's construction: build an
//!   *initial memory map* (first-touch values per address) and a *final
//!   memory map* (last store per address) from the original trace records,
//!   execute the frame against the initial map, and require that (1) every
//!   load hits the initial map, (2) the final memory state matches, and
//!   (3) the architectural registers match at the frame boundary.
//! * [`verify_differential`] — run the unoptimized and optimized forms of
//!   a frame from the same machine state and compare outcomes and final
//!   states; usable as an always-on spot check inside the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod maps;
mod verifier;

pub use maps::MemoryMaps;
pub use verifier::{
    verify_against_records, verify_differential, Verifier, VerifyError, VerifyErrorKind,
    VerifyStats,
};
