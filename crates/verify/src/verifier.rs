//! Frame verification.

use crate::MemoryMaps;
use replay_core::{exec_frame, FlagsSrc, FrameOutcome, MemTransaction, OptFrame, Src};
use replay_trace::TraceRecord;
use replay_uop::{ArchReg, Flags, MachineState};
use std::fmt;

/// A verification failure: what went wrong, plus enough context to act on
/// a shrunk counterexample in one read — the uop (in the optimized,
/// compacted frame) the discrepancy traces back to, and the optimization
/// pass that introduced it when the caller knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The discrepancy itself.
    pub kind: VerifyErrorKind,
    /// Index of the uop in the optimized frame the failure traces back to:
    /// the live-out producer of a mismatched register, the last store to a
    /// mismatched address, the assertion that fired. `None` when no single
    /// uop can be blamed (e.g. a pass-through live-out).
    pub uop_index: Option<usize>,
    /// Short name of the pass whose output first failed the check, when
    /// the caller bisected it (the `replay-check` harness does).
    pub pass: Option<String>,
}

impl VerifyError {
    /// Wraps a discrepancy with no located uop or pass.
    pub fn new(kind: VerifyErrorKind) -> VerifyError {
        VerifyError {
            kind,
            uop_index: None,
            pass: None,
        }
    }

    /// Attaches the offending uop index.
    pub fn at_uop(mut self, index: usize) -> VerifyError {
        self.uop_index = Some(index);
        self
    }

    /// Attaches the name of the pass that introduced the failure.
    pub fn in_pass(mut self, pass: impl Into<String>) -> VerifyError {
        self.pass = Some(pass.into());
        self
    }
}

impl From<VerifyErrorKind> for VerifyError {
    fn from(kind: VerifyErrorKind) -> VerifyError {
        VerifyError::new(kind)
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(i) = self.uop_index {
            write!(f, " [uop {i}]")?;
        }
        if let Some(p) = &self.pass {
            write!(f, " [pass {p}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// The kinds of verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A general-purpose register differs at the frame boundary.
    RegisterMismatch {
        /// The register.
        reg: ArchReg,
        /// The reference value.
        expected: u32,
        /// The frame's value.
        got: u32,
    },
    /// The flags differ at the frame boundary.
    FlagsMismatch {
        /// The reference flags.
        expected: Flags,
        /// The frame's flags.
        got: Flags,
    },
    /// A memory location differs at the frame boundary.
    MemoryMismatch {
        /// The address.
        addr: u32,
        /// The reference value.
        expected: u32,
        /// The frame's value.
        got: u32,
    },
    /// A load in the optimized frame read a location that is not live in
    /// the trace span (the frame invented a memory access).
    LoadOutsideInitialMap {
        /// The offending address.
        addr: u32,
    },
    /// The frame did not complete (fired an assertion / aborted / faulted)
    /// even though the original execution followed the frame's path.
    UnexpectedOutcome {
        /// Debug rendering of the outcome.
        outcome: String,
    },
    /// The two forms of a frame disagreed on the outcome in a differential
    /// check.
    OutcomeMismatch {
        /// Outcome of the unoptimized form.
        original: String,
        /// Outcome of the optimized form.
        optimized: String,
    },
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyErrorKind::RegisterMismatch { reg, expected, got } => {
                write!(f, "register {reg}: expected {expected:#x}, got {got:#x}")
            }
            VerifyErrorKind::FlagsMismatch { expected, got } => {
                write!(f, "flags: expected {expected}, got {got}")
            }
            VerifyErrorKind::MemoryMismatch {
                addr,
                expected,
                got,
            } => write!(f, "memory {addr:#x}: expected {expected:#x}, got {got:#x}"),
            VerifyErrorKind::LoadOutsideInitialMap { addr } => {
                write!(f, "load from {addr:#x} outside the initial memory map")
            }
            VerifyErrorKind::UnexpectedOutcome { outcome } => {
                write!(f, "frame did not complete: {outcome}")
            }
            VerifyErrorKind::OutcomeMismatch {
                original,
                optimized,
            } => write!(
                f,
                "outcome mismatch: original {original}, optimized {optimized}"
            ),
        }
    }
}

/// The uop index the failure of register `reg` traces back to: the slot
/// producing the register's live-out binding, if the binding is in-frame.
fn blame_reg(frame: &OptFrame, reg: ArchReg) -> Option<usize> {
    frame.live_out().iter().find_map(|&(r, src)| match src {
        Src::Slot(s) if r == reg => Some(s as usize),
        _ => None,
    })
}

/// The uop index a flags mismatch traces back to (the flags-out producer).
fn blame_flags(frame: &OptFrame) -> Option<usize> {
    match frame.flags_out() {
        FlagsSrc::Slot(s) => Some(s as usize),
        FlagsSrc::LiveIn => None,
    }
}

/// The uop index of the last store the frame performed to `addr`.
fn blame_store(transactions: &[MemTransaction], addr: u32) -> Option<usize> {
    transactions
        .iter()
        .rev()
        .find(|t| t.is_store && t.addr == addr)
        .map(|t| t.uop_index)
}

/// The uop index a non-completing outcome points at, if any.
fn outcome_uop(outcome: &FrameOutcome) -> Option<usize> {
    match outcome {
        FrameOutcome::Completed { .. } => None,
        FrameOutcome::AssertFired { uop_index }
        | FrameOutcome::UnsafeConflict { uop_index, .. }
        | FrameOutcome::Faulted { uop_index } => Some(*uop_index),
    }
}

/// Attaches `uop_index` to `err` when one is known.
fn maybe_at_uop(err: VerifyError, uop_index: Option<usize>) -> VerifyError {
    match uop_index {
        Some(i) => err.at_uop(i),
        None => err,
    }
}

/// Applies a span of trace records to a machine (the reference execution).
fn apply_records(m: &mut MachineState, records: &[TraceRecord]) {
    for r in records {
        // Seed memory with observed load values (they reflect what memory
        // held), then apply stores and register results.
        for &(addr, value) in &r.mem_reads {
            m.store32(addr, value);
        }
        for &(addr, value) in &r.mem_writes {
            m.store32(addr, value);
        }
        for &(reg, value) in &r.reg_writes {
            if let Some(r) = ArchReg::from_index(reg as usize) {
                m.set_reg(r, value);
            }
        }
        m.set_flags(Flags::from_bits(r.flags_after));
    }
}

/// Verifies an optimized frame against the original trace records it
/// covers, starting from `entry` (the machine state at the fetch point).
///
/// Implements the paper's §5.1.3 procedure: the frame is valid only if
/// (1) all its loads hit locations live in the span's initial memory map,
/// (2) all memory state affected by the trace is equivalently affected by
/// the frame at the frame boundary, and (3) all architectural register
/// state is equivalent at the frame boundary.
///
/// # Errors
///
/// Returns the first discrepancy found.
pub fn verify_against_records(
    frame: &OptFrame,
    entry: &MachineState,
    records: &[TraceRecord],
) -> Result<(), VerifyError> {
    let maps = MemoryMaps::from_records(records);

    // Execute the frame on a copy of the entry state.
    let mut frame_machine = entry.clone();
    let outcome = exec_frame(frame, &mut frame_machine);
    let transactions = match outcome {
        FrameOutcome::Completed { transactions } => transactions,
        other => {
            let at = outcome_uop(&other);
            return Err(maybe_at_uop(
                VerifyError::new(VerifyErrorKind::UnexpectedOutcome {
                    outcome: format!("{other:?}"),
                }),
                at,
            ));
        }
    };

    // (1) Loads are a subset of the original loads' locations.
    for t in transactions.iter().filter(|t| !t.is_store) {
        if maps.initial(t.addr).is_none() {
            return Err(
                VerifyError::new(VerifyErrorKind::LoadOutsideInitialMap { addr: t.addr })
                    .at_uop(t.uop_index),
            );
        }
    }

    // Reference execution: apply the records to another copy.
    let mut reference = entry.clone();
    apply_records(&mut reference, records);

    // (3) Register equivalence.
    for r in ArchReg::GPRS {
        let expected = reference.reg(r);
        let got = frame_machine.reg(r);
        if expected != got {
            return Err(maybe_at_uop(
                VerifyError::new(VerifyErrorKind::RegisterMismatch {
                    reg: r,
                    expected,
                    got,
                }),
                blame_reg(frame, r),
            ));
        }
    }
    if reference.flags() != frame_machine.flags() {
        return Err(maybe_at_uop(
            VerifyError::new(VerifyErrorKind::FlagsMismatch {
                expected: reference.flags(),
                got: frame_machine.flags(),
            }),
            blame_flags(frame),
        ));
    }

    // (2) Memory equivalence over every location the trace touched, plus
    // every location the frame wrote.
    for addr in maps.final_addrs() {
        let expected = reference.load32(addr);
        let got = frame_machine.load32(addr);
        if expected != got {
            return Err(maybe_at_uop(
                VerifyError::new(VerifyErrorKind::MemoryMismatch {
                    addr,
                    expected,
                    got,
                }),
                blame_store(&transactions, addr),
            ));
        }
    }
    for t in transactions.iter().filter(|t| t.is_store) {
        let expected = reference.load32(t.addr);
        let got = frame_machine.load32(t.addr);
        if expected != got {
            return Err(VerifyError::new(VerifyErrorKind::MemoryMismatch {
                addr: t.addr,
                expected,
                got,
            })
            .at_uop(t.uop_index));
        }
    }
    Ok(())
}

/// Differentially checks the optimized form of a frame against its
/// unoptimized form from an arbitrary machine state.
///
/// If both forms complete, their final register, flags, and written-memory
/// states must agree. If either fires an assertion or aborts, both must
/// reach a non-completing outcome — except that the optimized frame may
/// legitimately abort *earlier* via an unsafe-store conflict where the
/// original would have fired a later assertion; the check therefore only
/// requires agreement on *whether* the frame completes.
///
/// # Errors
///
/// Returns the first discrepancy found.
pub fn verify_differential(
    original: &OptFrame,
    optimized: &OptFrame,
    entry: &MachineState,
) -> Result<(), VerifyError> {
    let mut m1 = entry.clone();
    let o1 = exec_frame(original, &mut m1);
    let mut m2 = entry.clone();
    let o2 = exec_frame(optimized, &mut m2);

    let completed1 = matches!(o1, FrameOutcome::Completed { .. });
    let completed2 = matches!(o2, FrameOutcome::Completed { .. });
    match (completed1, completed2) {
        (true, true) => {}
        (false, false) => return Ok(()), // both rolled back: nothing commits
        _ => {
            // An optimized frame may abort where the original completes
            // only through unsafe-store speculation; that is a performance
            // event, not a correctness violation (nothing commits).
            if matches!(o2, FrameOutcome::UnsafeConflict { .. }) {
                return Ok(());
            }
            // Blame the uop the optimized form stopped at, or (when the
            // original stopped and the optimized ran through) the uop the
            // original fired on — the optimizer lost that assertion.
            let at = outcome_uop(&o2).or_else(|| outcome_uop(&o1));
            return Err(maybe_at_uop(
                VerifyError::new(VerifyErrorKind::OutcomeMismatch {
                    original: format!("{o1:?}"),
                    optimized: format!("{o2:?}"),
                }),
                at,
            ));
        }
    }

    for r in ArchReg::GPRS {
        if m1.reg(r) != m2.reg(r) {
            return Err(maybe_at_uop(
                VerifyError::new(VerifyErrorKind::RegisterMismatch {
                    reg: r,
                    expected: m1.reg(r),
                    got: m2.reg(r),
                }),
                blame_reg(optimized, r),
            ));
        }
    }
    if m1.flags() != m2.flags() {
        return Err(maybe_at_uop(
            VerifyError::new(VerifyErrorKind::FlagsMismatch {
                expected: m1.flags(),
                got: m2.flags(),
            }),
            blame_flags(optimized),
        ));
    }
    // Compare memory over both frames' store footprints.
    let (addrs, opt_transactions): (Vec<u32>, &[MemTransaction]) = match (&o1, &o2) {
        (
            FrameOutcome::Completed { transactions: t1 },
            FrameOutcome::Completed { transactions: t2 },
        ) => (
            t1.iter()
                .chain(t2.iter())
                .filter(|t| t.is_store)
                .map(|t| t.addr)
                .collect(),
            t2,
        ),
        _ => unreachable!("both completed"),
    };
    for addr in addrs {
        if m1.load32(addr) != m2.load32(addr) {
            return Err(maybe_at_uop(
                VerifyError::new(VerifyErrorKind::MemoryMismatch {
                    addr,
                    expected: m1.load32(addr),
                    got: m2.load32(addr),
                }),
                blame_store(opt_transactions, addr),
            ));
        }
    }
    Ok(())
}

/// Running verification statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Frames checked.
    pub checked: u64,
    /// Checks that passed.
    pub passed: u64,
    /// Checks that failed.
    pub failed: u64,
    /// Checks skipped (frame did not complete from the probe state).
    pub skipped: u64,
}

/// A stateful verifier accumulating statistics, for in-simulator use.
#[derive(Debug, Default)]
pub struct Verifier {
    stats: VerifyStats,
    first_failure: Option<VerifyError>,
}

impl Verifier {
    /// Creates a verifier.
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// Differentially checks a frame pair, recording the result.
    pub fn check(
        &mut self,
        original: &OptFrame,
        optimized: &OptFrame,
        entry: &MachineState,
    ) -> bool {
        self.stats.checked += 1;
        match verify_differential(original, optimized, entry) {
            Ok(()) => {
                self.stats.passed += 1;
                true
            }
            Err(e) => {
                self.stats.failed += 1;
                if self.first_failure.is_none() {
                    self.first_failure = Some(e);
                }
                false
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VerifyStats {
        self.stats
    }

    /// The first failure observed, if any.
    pub fn first_failure(&self) -> Option<&VerifyError> {
        self.first_failure.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_core::{optimize, AliasProfile, OptConfig};
    use replay_frame::{Frame, FrameId};
    use replay_uop::{Opcode, Uop};

    fn mk_frame(uops: Vec<Uop>) -> Frame {
        let n = uops.len();
        Frame {
            id: FrameId(0),
            start_addr: 0x1000,
            uops,
            x86_addrs: vec![0x1000],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x2000,
            orig_uop_count: n,
        }
    }

    fn raw(frame: &Frame) -> OptFrame {
        let mut f = OptFrame::from_frame(frame);
        f.compact();
        f
    }

    fn entry_state() -> MachineState {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x9000);
        m.set_reg(ArchReg::Ebp, 0x1111);
        m.set_reg(ArchReg::Ebx, 0x2222);
        m.set_reg(ArchReg::Esi, 0x100);
        m.store32(0x100, 42);
        m
    }

    #[test]
    fn differential_passes_on_correct_optimization() {
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, 0),
            Uop::alu_imm(Opcode::Add, ArchReg::Ecx, ArchReg::Ecx, 1),
        ]);
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        assert!(stats.removed_uops() > 0);
        verify_differential(&raw(&frame), &opt, &entry_state()).expect("optimization is sound");
    }

    #[test]
    fn differential_catches_an_injected_bug() {
        let frame = mk_frame(vec![
            Uop::load(ArchReg::Ecx, ArchReg::Esi, 0),
            Uop::alu_imm(Opcode::Add, ArchReg::Ecx, ArchReg::Ecx, 1),
        ]);
        // "Optimize" by corrupting the immediate — the verifier must see
        // the register difference.
        let bugged = mk_frame(vec![
            Uop::load(ArchReg::Ecx, ArchReg::Esi, 0),
            Uop::alu_imm(Opcode::Add, ArchReg::Ecx, ArchReg::Ecx, 2),
        ]);
        let err = verify_differential(&raw(&frame), &raw(&bugged), &entry_state()).unwrap_err();
        assert!(matches!(
            err.kind,
            VerifyErrorKind::RegisterMismatch {
                reg: ArchReg::Ecx,
                ..
            }
        ));
        // Ecx is produced by the add at slot 1 of the bugged frame.
        assert_eq!(err.uop_index, Some(1));
    }

    #[test]
    fn differential_catches_memory_bug() {
        let good = mk_frame(vec![Uop::store(ArchReg::Esp, -4, ArchReg::Ebp)]);
        let bad = mk_frame(vec![Uop::store(ArchReg::Esp, -4, ArchReg::Ebx)]);
        let err = verify_differential(&raw(&good), &raw(&bad), &entry_state()).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::MemoryMismatch { .. }));
        // The bad store is the only uop in the frame.
        assert_eq!(err.uop_index, Some(0));
    }

    #[test]
    fn verifier_accumulates() {
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, -4),
        ]);
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let mut v = Verifier::new();
        assert!(v.check(&raw(&frame), &opt, &entry_state()));
        assert_eq!(v.stats().checked, 1);
        assert_eq!(v.stats().passed, 1);
        assert!(v.first_failure().is_none());
    }

    #[test]
    fn records_verification_happy_path() {
        use replay_x86::{Gpr, Inst};
        // Original span: one store + one load of the same slot, as records.
        let records = vec![
            TraceRecord {
                addr: 0x1000,
                len: 1,
                inst: Inst::PushR { src: Gpr::Ebp },
                next_pc: 0x1001,
                reg_writes: vec![(ArchReg::Esp.index() as u8, 0x9000 - 4)],
                mem_reads: vec![],
                mem_writes: vec![(0x9000 - 4, 0x1111)],
                flags_after: 0,
            },
            TraceRecord {
                addr: 0x1001,
                len: 3,
                inst: Inst::MovRM {
                    dst: Gpr::Ecx,
                    mem: replay_x86::MemOperand::base_disp(Gpr::Esp, 0),
                },
                next_pc: 0x1004,
                reg_writes: vec![(ArchReg::Ecx.index() as u8, 0x1111)],
                mem_reads: vec![(0x9000 - 4, 0x1111)],
                mem_writes: vec![],
                flags_after: 0,
            },
        ];
        // The equivalent frame (PUSH flow + load), optimized.
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, 0),
        ]);
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        assert!(stats.store_forwards >= 1);
        verify_against_records(&opt, &entry_state(), &records).expect("frame matches records");
    }

    #[test]
    fn records_verification_catches_wrong_final_memory() {
        use replay_x86::{Gpr, Inst};
        let records = vec![TraceRecord {
            addr: 0x1000,
            len: 1,
            inst: Inst::PushR { src: Gpr::Ebp },
            next_pc: 0x1001,
            reg_writes: vec![(ArchReg::Esp.index() as u8, 0x9000 - 4)],
            mem_writes: vec![(0x9000 - 4, 0xdead)], // trace says 0xdead
            mem_reads: vec![],
            flags_after: 0,
        }];
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp), // frame stores 0x1111
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
        ]);
        let err = verify_against_records(&raw(&frame), &entry_state(), &records).unwrap_err();
        assert!(
            matches!(err.kind, VerifyErrorKind::MemoryMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn records_verification_rejects_invented_loads() {
        let records = vec![]; // the span touches no memory
        let frame = mk_frame(vec![Uop::load(ArchReg::Ecx, ArchReg::Esi, 0)]);
        // The load reads 0x100 which is not live in the (empty) span; but
        // register ECX would also mismatch. Check the load error fires
        // first.
        let err = verify_against_records(&raw(&frame), &entry_state(), &records).unwrap_err();
        assert!(matches!(
            err.kind,
            VerifyErrorKind::LoadOutsideInitialMap { addr: 0x100 }
        ));
        assert_eq!(err.uop_index, Some(0));
    }

    #[test]
    fn error_display_includes_context() {
        let err = VerifyError::new(VerifyErrorKind::FlagsMismatch {
            expected: Flags::from_bits(0),
            got: Flags::from_bits(1),
        })
        .at_uop(7)
        .in_pass("CSE");
        let text = err.to_string();
        assert!(text.contains("[uop 7]"), "{text}");
        assert!(text.contains("[pass CSE]"), "{text}");
    }
}
