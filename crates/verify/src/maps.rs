//! Initial and final memory maps (paper §5.1.3).

use replay_trace::TraceRecord;
use std::collections::HashMap;

/// The memory-state summary of a span of original trace records.
///
/// Quoting the paper: "we commit to the initial map the first load and
/// store transactions from each live memory location in the trace. All
/// store transactions in the trace are committed to the final map which is
/// used to compare the memory state at the frame boundary."
#[derive(Debug, Clone, Default)]
pub struct MemoryMaps {
    initial: HashMap<u32, u32>,
    finals: HashMap<u32, u32>,
}

impl MemoryMaps {
    /// Builds the maps from the records a frame covers.
    pub fn from_records(records: &[TraceRecord]) -> MemoryMaps {
        let mut maps = MemoryMaps::default();
        for r in records {
            for &(addr, value) in &r.mem_reads {
                maps.initial.entry(addr).or_insert(value);
                // A read does not change the running (final) value unless a
                // store already set it; reads of untouched locations seed
                // the final map with the same value.
                maps.finals.entry(addr).or_insert(value);
            }
            for &(addr, value) in &r.mem_writes {
                maps.initial.entry(addr).or_insert(value);
                maps.finals.insert(addr, value);
            }
        }
        maps
    }

    /// The value a load of `addr` must observe at frame entry, if the
    /// location is live in the trace span.
    pub fn initial(&self, addr: u32) -> Option<u32> {
        self.initial.get(&addr).copied()
    }

    /// The value `addr` must hold at the frame boundary, if touched.
    pub fn final_value(&self, addr: u32) -> Option<u32> {
        self.finals.get(&addr).copied()
    }

    /// Addresses live at frame entry.
    pub fn initial_addrs(&self) -> impl Iterator<Item = u32> + '_ {
        self.initial.keys().copied()
    }

    /// Addresses with a defined final value.
    pub fn final_addrs(&self) -> impl Iterator<Item = u32> + '_ {
        self.finals.keys().copied()
    }

    /// Number of live locations.
    pub fn len(&self) -> usize {
        self.initial.len()
    }

    /// True when no memory was touched.
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_x86::{Gpr, Inst};

    fn rec(reads: Vec<(u32, u32)>, writes: Vec<(u32, u32)>) -> TraceRecord {
        TraceRecord {
            addr: 0,
            len: 1,
            inst: Inst::PushR { src: Gpr::Eax },
            next_pc: 1,
            reg_writes: vec![],
            mem_reads: reads,
            mem_writes: writes,
            flags_after: 0,
        }
    }

    #[test]
    fn first_touch_defines_initial() {
        let records = vec![
            rec(vec![(0x100, 7)], vec![]),
            rec(vec![], vec![(0x100, 9)]),
            rec(vec![(0x100, 9)], vec![]),
        ];
        let m = MemoryMaps::from_records(&records);
        assert_eq!(m.initial(0x100), Some(7), "first read wins");
        assert_eq!(m.final_value(0x100), Some(9), "last store wins");
    }

    #[test]
    fn store_first_location() {
        let records = vec![rec(vec![], vec![(0x200, 1)]), rec(vec![], vec![(0x200, 2)])];
        let m = MemoryMaps::from_records(&records);
        assert_eq!(m.initial(0x200), Some(1));
        assert_eq!(m.final_value(0x200), Some(2));
    }

    #[test]
    fn untouched_is_absent() {
        let m = MemoryMaps::from_records(&[rec(vec![(0x300, 5)], vec![])]);
        assert_eq!(m.initial(0x400), None);
        assert_eq!(m.final_value(0x300), Some(5));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert!(MemoryMaps::default().is_empty());
    }
}
