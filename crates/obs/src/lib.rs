//! Structured observability for the rePLay engine.
//!
//! Every figure in the paper is an *attribution* story — which pass removed
//! which uops, where the cycles went — so the simulator needs more than
//! end-of-run aggregates. This crate provides the plumbing: typed metrics
//! ([`Metric`]: monotonic counters, log2-bucketed histograms, and wall-time
//! spans) collected into a [`Profile`], recorded through a cheap [`Obs`]
//! handle that compiles down to almost nothing when disabled, and merged
//! across parallel workers by a [`Registry`] that combines per-worker shards
//! **in submission order** so the merged profile is bit-identical at any
//! `--jobs` count.
//!
//! Determinism contract: every metric payload is integer (`u64`), merging is
//! addition, and [`Profile`] iteration order is the key's lexicographic
//! order (a `BTreeMap`). The only nondeterministic quantity the crate can
//! hold is wall time, which is confined to [`Metric::DurationNs`]; renderers
//! exclude duration metrics unless explicitly asked (`--timings`), keeping
//! the default output byte-identical run to run.
//!
//! The crate is dependency-free by design (`std` only).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i` (1..=64) holds values `v` with
/// `bit_length(v) == i`, i.e. the half-open range `[2^(i-1), 2^i)`. All
/// payloads are integers, so merging two histograms is element-wise addition
/// and therefore deterministic regardless of merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist {
    /// Bucket index for a sample: 0 for 0, otherwise the bit length of `v`.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down; 0 if empty. Integer so rendering stays
    /// deterministic.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Occupied buckets as `(bucket_low_edge, count)` pairs, ascending.
    /// Bucket 0 reports low edge 0; bucket `i` reports `2^(i-1)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One typed metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A monotonic event count; merge = sum.
    Counter(u64),
    /// Accumulated wall time in nanoseconds; merge = sum. The only
    /// nondeterministic metric kind — renderers hide it by default.
    DurationNs(u64),
    /// A log2-bucketed sample distribution; merge = element-wise sum.
    /// Boxed so the common `Counter` variant stays word-sized in the map.
    Hist(Box<Hist>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::DurationNs(_) => "duration_ns",
            Metric::Hist(_) => "hist",
        }
    }

    fn merge(&mut self, other: &Metric) {
        match (self, other) {
            (Metric::Counter(a), Metric::Counter(b)) => *a += *b,
            (Metric::DurationNs(a), Metric::DurationNs(b)) => *a += *b,
            (Metric::Hist(a), Metric::Hist(b)) => a.merge(b),
            (mine, theirs) => panic!(
                "metric kind mismatch while merging: {} vs {}",
                mine.kind(),
                theirs.kind()
            ),
        }
    }
}

/// A named collection of metrics with deterministic (lexicographic) order.
///
/// Metric names are dot-separated paths (`opt.pass.NOP.removed_uops`,
/// `frame_cache.hits`). Merging two profiles merges matching names and
/// inserts the rest, so `merge` is associative and — because every payload
/// is an integer and a `BTreeMap` orders keys — the result is independent
/// of worker scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    metrics: BTreeMap<String, Metric>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// True if no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Adds `v` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            m => panic!("metric {name} is a {}, not a counter", m.kind()),
        }
    }

    /// Adds `ns` nanoseconds to the duration `name`.
    pub fn duration_add_ns(&mut self, name: &str, ns: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::DurationNs(0))
        {
            Metric::DurationNs(d) => *d += ns,
            m => panic!("metric {name} is a {}, not a duration", m.kind()),
        }
    }

    /// Records one sample into the histogram `name`.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Box::default()))
        {
            Metric::Hist(h) => h.record(v),
            m => panic!("metric {name} is a {}, not a histogram", m.kind()),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// The value of counter `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Iterates metrics in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another profile into this one (sum semantics per metric).
    ///
    /// # Panics
    /// If the same name carries different metric kinds in the two profiles.
    pub fn merge(&mut self, other: &Profile) {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                Some(mine) => mine.merge(theirs),
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
            }
        }
    }

    /// Renders the profile as an aligned two-column table. Duration metrics
    /// are nondeterministic wall time and are included only when
    /// `include_timings` is set, keeping the default rendering byte-identical
    /// across runs and job counts.
    pub fn render_table(&self, include_timings: bool) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(c) => rows.push((name.to_string(), c.to_string())),
                Metric::DurationNs(ns) => {
                    if include_timings {
                        rows.push((name.to_string(), format_ns(*ns)));
                    }
                }
                Metric::Hist(h) => rows.push((
                    name.to_string(),
                    format!(
                        "n={} sum={} min={} mean={} max={}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.mean(),
                        h.max()
                    ),
                )),
            }
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
        out
    }

    /// Serializes the profile as a stable JSON object:
    ///
    /// ```json
    /// { "schema": "replay-obs/v1",
    ///   "metrics": { "<name>": {"type":"counter","value":N}
    ///              | {"type":"duration_ns","value":N}
    ///              | {"type":"hist","count":N,"sum":N,"min":N,"max":N,
    ///                 "buckets":[[low_edge,count],...]} } }
    /// ```
    ///
    /// Keys appear in lexicographic order; duration metrics are included
    /// only when `include_timings` is set.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::from("{\"schema\":\"replay-obs/v1\",\"metrics\":{");
        let mut first = true;
        for (name, metric) in self.iter() {
            let body = match metric {
                Metric::Counter(c) => format!("{{\"type\":\"counter\",\"value\":{c}}}"),
                Metric::DurationNs(ns) => {
                    if !include_timings {
                        continue;
                    }
                    format!("{{\"type\":\"duration_ns\",\"value\":{ns}}}")
                }
                Metric::Hist(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .into_iter()
                        .map(|(lo, c)| format!("[{lo},{c}]"))
                        .collect();
                    format!(
                        "{{\"type\":\"hist\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        buckets.join(",")
                    )
                }
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_string(name), body);
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Human-readable nanoseconds (`1.234ms` style) for the timings table.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Recording handle threaded through the engine.
///
/// A disabled `Obs` (the default) skips all work including name formatting —
/// callers guard allocation-heavy label construction on [`Obs::enabled`].
/// An enabled one accumulates into an owned [`Profile`] that is harvested
/// with [`Obs::into_profile`] and merged across workers by a [`Registry`].
#[derive(Debug, Default)]
pub struct Obs {
    profile: Option<Profile>,
}

impl Obs {
    /// A disabled handle: every record call is a no-op.
    pub fn disabled() -> Obs {
        Obs { profile: None }
    }

    /// An enabled handle collecting into a fresh profile.
    pub fn collecting() -> Obs {
        Obs {
            profile: Some(Profile::new()),
        }
    }

    /// Whether recording is active. Guard `format!`-built metric names on
    /// this to keep the disabled path allocation-free.
    pub fn enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// Adds `v` to counter `name`.
    pub fn counter(&mut self, name: &str, v: u64) {
        if let Some(p) = &mut self.profile {
            p.counter_add(name, v);
        }
    }

    /// Records a histogram sample.
    pub fn hist(&mut self, name: &str, v: u64) {
        if let Some(p) = &mut self.profile {
            p.hist_record(name, v);
        }
    }

    /// Adds elapsed nanoseconds to duration `name`.
    pub fn duration_ns(&mut self, name: &str, ns: u64) {
        if let Some(p) = &mut self.profile {
            p.duration_add_ns(name, ns);
        }
    }

    /// Starts a span timer; resolve it with [`Obs::end_span`]. Returns
    /// `None` (and costs nothing) when disabled.
    pub fn start_span(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Accumulates the elapsed time of a span started with
    /// [`Obs::start_span`] into duration `name`.
    pub fn end_span(&mut self, name: &str, span: Option<Instant>) {
        if let (Some(p), Some(start)) = (&mut self.profile, span) {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            p.duration_add_ns(name, ns);
        }
    }

    /// Consumes the handle, returning the collected profile (empty if the
    /// handle was disabled).
    pub fn into_profile(self) -> Profile {
        self.profile.unwrap_or_default()
    }
}

/// Thread-safe collection point for per-worker profile shards.
///
/// Workers submit `(submission_index, shard)` pairs in whatever order they
/// finish; [`Registry::finish`] sorts by submission index and merges in that
/// order. Metric merging is commutative integer addition, so this ordering
/// is belt-and-braces — but it guarantees the merged profile is the *same
/// object* (not merely an equal one) no matter how the scheduler interleaved
/// the workers, which is what makes `--profile` output byte-identical at any
/// `--jobs` count.
#[derive(Debug, Default)]
pub struct Registry {
    shards: Mutex<Vec<(usize, Profile)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Submits one worker's shard under its submission index.
    pub fn submit(&self, index: usize, shard: Profile) {
        self.shards.lock().unwrap().push((index, shard));
    }

    /// Merges all submitted shards in ascending submission-index order.
    pub fn finish(self) -> Profile {
        let mut shards = self.shards.into_inner().unwrap();
        shards.sort_by_key(|(i, _)| *i);
        let mut merged = Profile::new();
        for (_, shard) in &shards {
            merged.merge(shard);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(255), 8);
        assert_eq!(Hist::bucket_of(256), 9);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn hist_stats() {
        let mut h = Hist::default();
        for v in [0, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 12);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert_eq!(h.mean(), 3);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 1), (8, 1)]);
    }

    #[test]
    fn profile_merge_sums() {
        let mut a = Profile::new();
        a.counter_add("x", 2);
        a.hist_record("h", 4);
        let mut b = Profile::new();
        b.counter_add("x", 3);
        b.counter_add("y", 1);
        b.hist_record("h", 4);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        match a.get("h") {
            Some(Metric::Hist(h)) => assert_eq!(h.count(), 2),
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let make = |n: u64| {
            let mut p = Profile::new();
            p.counter_add("c", n);
            p.hist_record("h", n);
            p
        };
        let r1 = Registry::new();
        r1.submit(0, make(1));
        r1.submit(1, make(2));
        r1.submit(2, make(3));
        let r2 = Registry::new();
        r2.submit(2, make(3));
        r2.submit(0, make(1));
        r2.submit(1, make(2));
        let p1 = r1.finish();
        let p2 = r2.finish();
        assert_eq!(p1, p2);
        assert_eq!(p1.to_json(false), p2.to_json(false));
        assert_eq!(p1.render_table(false), p2.render_table(false));
        assert_eq!(p1.counter("c"), 6);
    }

    #[test]
    fn disabled_obs_is_a_noop() {
        let mut o = Obs::disabled();
        o.counter("x", 1);
        o.hist("h", 2);
        let span = o.start_span();
        assert!(span.is_none());
        o.end_span("t", span);
        assert!(o.into_profile().is_empty());
    }

    #[test]
    fn enabled_obs_collects() {
        let mut o = Obs::collecting();
        o.counter("x", 1);
        o.counter("x", 2);
        o.hist("h", 7);
        let span = o.start_span();
        o.end_span("t.ns", span);
        let p = o.into_profile();
        assert_eq!(p.counter("x"), 3);
        assert!(matches!(p.get("t.ns"), Some(Metric::DurationNs(_))));
        // Timings excluded from default renderings.
        assert!(!p.to_json(false).contains("t.ns"));
        assert!(p.to_json(true).contains("t.ns"));
        assert!(!p.render_table(false).contains("t.ns"));
        assert!(p.render_table(true).contains("t.ns"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut p = Profile::new();
        p.counter_add("b.count", 1);
        p.counter_add("a.count", 2);
        let js = p.to_json(false);
        assert_eq!(
            js,
            "{\"schema\":\"replay-obs/v1\",\"metrics\":{\"a.count\":{\"type\":\"counter\",\"value\":2},\"b.count\":{\"type\":\"counter\",\"value\":1}}}"
        );
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_000_000), "2.000ms");
        assert_eq!(format_ns(3_456_000_000), "3.456s");
    }
}
