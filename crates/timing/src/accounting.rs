//! Fetch-centric cycle accounting (the paper's Figures 7/8 bins).

use std::fmt;
use std::ops::AddAssign;

/// The seven cycle categories of the paper's breakdown, in the paper's
/// priority order (§6.1): a cycle is classified by the fetch event that
/// occurred during it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleBin {
    /// Cycles between fetching a frame with a firing assertion and
    /// completing its recovery.
    Assert,
    /// Cycles waiting for a mispredicted branch (or BTB miss) to resolve.
    Mispredict,
    /// Frame-cache or ICache miss cycles.
    Miss,
    /// Cycles with a full downstream buffer (scheduling window).
    Stall,
    /// Turnaround cycles switching between frame cache and ICache fetch.
    Wait,
    /// Cycles spent fetching from the frame cache.
    Frame,
    /// Cycles spent fetching from the ICache.
    ICache,
}

impl CycleBin {
    /// All bins in the paper's priority/legend order.
    pub const ALL: [CycleBin; 7] = [
        CycleBin::Assert,
        CycleBin::Mispredict,
        CycleBin::Miss,
        CycleBin::Stall,
        CycleBin::Wait,
        CycleBin::Frame,
        CycleBin::ICache,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CycleBin::Assert => "assert",
            CycleBin::Mispredict => "mispred",
            CycleBin::Miss => "miss",
            CycleBin::Stall => "stall",
            CycleBin::Wait => "wait",
            CycleBin::Frame => "frame",
            CycleBin::ICache => "icache",
        }
    }
}

impl fmt::Display for CycleBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycle counts per bin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBins {
    counts: [u64; 7],
}

impl CycleBins {
    /// Creates zeroed bins.
    pub fn new() -> CycleBins {
        CycleBins::default()
    }

    /// Adds `cycles` to a bin.
    pub fn add(&mut self, bin: CycleBin, cycles: u64) {
        self.counts[Self::idx(bin)] += cycles;
    }

    /// The count in a bin.
    pub fn get(&self, bin: CycleBin) -> u64 {
        self.counts[Self::idx(bin)]
    }

    /// Total cycles across all bins.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The fraction of cycles in a bin (zero when no cycles recorded).
    pub fn fraction(&self, bin: CycleBin) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(bin) as f64 / t as f64
        }
    }

    fn idx(bin: CycleBin) -> usize {
        CycleBin::ALL
            .iter()
            .position(|b| *b == bin)
            .expect("bin in ALL")
    }

    /// Records every bin under `<prefix>.<label>` into an
    /// [`replay_obs::Obs`], plus `<prefix>.total`.
    pub fn observe_into(&self, prefix: &str, obs: &mut replay_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        for bin in CycleBin::ALL {
            obs.counter(&format!("{prefix}.{}", bin.label()), self.get(bin));
        }
        obs.counter(&format!("{prefix}.total"), self.total());
    }
}

impl AddAssign for CycleBins {
    fn add_assign(&mut self, o: CycleBins) {
        for (a, b) in self.counts.iter_mut().zip(o.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for CycleBins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for bin in CycleBin::ALL {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", bin.label(), self.get(bin))?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = CycleBins::new();
        b.add(CycleBin::Frame, 10);
        b.add(CycleBin::Assert, 2);
        b.add(CycleBin::Frame, 5);
        assert_eq!(b.get(CycleBin::Frame), 15);
        assert_eq!(b.total(), 17);
        assert!((b.fraction(CycleBin::Assert) - 2.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate() {
        let mut a = CycleBins::new();
        a.add(CycleBin::ICache, 3);
        let mut b = CycleBins::new();
        b.add(CycleBin::ICache, 4);
        b.add(CycleBin::Wait, 1);
        a += b;
        assert_eq!(a.get(CycleBin::ICache), 7);
        assert_eq!(a.get(CycleBin::Wait), 1);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = CycleBin::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            vec!["assert", "mispred", "miss", "stall", "wait", "frame", "icache"]
        );
    }

    #[test]
    fn display_lists_all_bins() {
        let mut b = CycleBins::new();
        b.add(CycleBin::Stall, 9);
        let s = b.to_string();
        assert!(s.contains("stall=9"));
        assert!(s.contains("icache=0"));
    }
}
