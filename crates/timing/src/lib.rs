//! # replay-timing
//!
//! The trace-driven timing model (§5.1.2 of the paper), parameterized by
//! the Table 2 processor configuration:
//!
//! * 8-wide fetch/issue/retire, 4 x86 decoders per cycle on the ICache
//!   path, 15 cycles minimum from branch fetch to branch resolution;
//! * 18-bit gshare predictor plus a BTB for taken/indirect targets;
//! * 512-entry scheduling window;
//! * 6 simple ALUs, 2 complex ALUs, 3 FPUs, 4 load/store units;
//! * 32 kB L1 data cache (2-cycle hit), 512 kB L2 (10-cycle), 50-cycle
//!   memory, and an 8 kB (or 64 kB) instruction cache.
//!
//! Two selectable execution-core models sit behind the [`PortScheduler`]
//! trait ([`CoreModel`]): the paper's class-banked unit pool above, and a
//! port- and latency-accurate model (`ports` module) with named issue
//! ports and uops.info-seeded per-opcode tables for re-evaluating the
//! paper's results on a modern port-constrained machine.
//!
//! The model is *fetch-centric*: every cycle is attributed to exactly one
//! of the seven bins of the paper's Figures 7/8 — `assert`, `mispred`,
//! `miss`, `stall`, `wait`, `frame`, `icache` — making the cycle-breakdown
//! figures directly reproducible ([`CycleBins`]).
//!
//! Wrong-path effects are not simulated (trace-driven, like the paper):
//! mispredicted branches charge resolution latency but fetch no wrong-path
//! instructions; the only wrong-path modeling is for asserting frames,
//! whose covered instructions are refetched from the ICache after a
//! pessimistic recovery (§6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod cache;
mod config;
mod pipeline;
mod pool;
mod ports;
mod predictor;

pub use accounting::{CycleBin, CycleBins};
pub use cache::{Cache, CacheConfig};
pub use config::TimingConfig;
pub use pipeline::{FetchPath, FrameFetch, Pipeline, PipelineStats, X86Fetch};
pub use pool::FuPool;
pub use ports::{
    CoreModel, GenericScheduler, Port, PortAccurateScheduler, PortBinding, PortConfigError,
    PortScheduler, PortSet, PortTable,
};
pub use predictor::{Btb, Gshare};
