//! Branch prediction: gshare and a BTB.

/// An 18-bit gshare conditional-branch predictor (paper Table 2).
///
/// Global history XORed with the branch PC indexes a table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u32,
    mask: u32,
    lookups: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Creates a predictor with `bits` of global history (table size
    /// `2^bits` two-bit counters).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    pub fn new(bits: u32) -> Gshare {
        assert!((1..=24).contains(&bits), "history bits out of range");
        Gshare {
            table: vec![1u8; 1 << bits], // weakly not-taken
            history: 0,
            mask: (1u32 << bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        // x86 branch PCs are byte-granular (instructions are variable
        // length), so the low PC bits carry real entropy. A RISC-style
        // `pc >> 2` here would alias branches 1–3 bytes apart onto one
        // counter and systematically inflate the mispredict rate.
        ((pc ^ self.history) & self.mask) as usize
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Predicts, updates the counter and history with the actual outcome,
    /// and returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        self.lookups += 1;
        let idx = self.index(pc);
        let predicted = self.table[idx] >= 2;
        let ctr = &mut self.table[idx];
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u32) & self.mask;
        if predicted != taken {
            self.mispredicts += 1;
        }
        predicted == taken
    }

    /// Fraction of mispredicted lookups (zero before any lookup).
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Total predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// A direct-mapped branch target buffer for taken and indirect branches.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u32, u32)>>, // (pc, target)
    mask: u32,
    lookups: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `2^bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 20.
    pub fn new(bits: u32) -> Btb {
        assert!((1..=20).contains(&bits), "BTB bits out of range");
        Btb {
            entries: vec![None; 1 << bits],
            mask: (1u32 << bits) - 1,
            lookups: 0,
            misses: 0,
        }
    }

    /// Looks up the predicted target for `pc`, then installs `actual`.
    /// Returns `true` if the prediction matched `actual`.
    pub fn predict_and_update(&mut self, pc: u32, actual: u32) -> bool {
        self.lookups += 1;
        // Byte-granular indexing, as for the gshare table: x86 branches
        // need their low address bits (see `Gshare::index`).
        let idx = (pc & self.mask) as usize;
        let hit = matches!(self.entries[idx], Some((p, t)) if p == pc && t == actual);
        if !hit {
            self.misses += 1;
        }
        self.entries[idx] = Some((pc, actual));
        hit
    }

    /// Fraction of lookups whose target was wrong or absent.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_branch() {
        let mut g = Gshare::new(10);
        // Warm up: always taken at one PC. The global history register
        // needs to saturate to all-ones before the steady-state index is
        // trained, so warm up past the history length.
        for _ in 0..24 {
            g.predict_and_update(0x40, true);
        }
        assert!(g.predict(0x40));
        assert!(g.predict_and_update(0x40, true));
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        let mut g = Gshare::new(10);
        // T,N,T,N ... with history the pattern becomes predictable.
        let mut correct_late = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let ok = g.predict_and_update(0x80, taken);
            if i >= 100 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late >= 95, "late accuracy {correct_late}/100");
    }

    #[test]
    fn mispredict_rate_counts() {
        let mut g = Gshare::new(8);
        g.predict_and_update(0, true);
        assert!(g.mispredict_rate() > 0.0, "cold predictor misses");
        assert_eq!(g.lookups(), 1);
    }

    #[test]
    fn btb_learns_targets() {
        let mut b = Btb::new(8);
        assert!(!b.predict_and_update(0x10, 0x100), "cold miss");
        assert!(b.predict_and_update(0x10, 0x100));
        // Target change mispredicts once.
        assert!(!b.predict_and_update(0x10, 0x200));
        assert!(b.predict_and_update(0x10, 0x200));
        assert!(b.miss_rate() < 0.6);
    }

    #[test]
    fn btb_conflicts_evict() {
        let mut b = Btb::new(1); // 2 entries; pcs 0x0 and 0x8 collide
        b.predict_and_update(0x0, 0x100);
        b.predict_and_update(0x8, 0x200);
        assert!(!b.predict_and_update(0x0, 0x100), "evicted by conflict");
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn zero_bits_rejected() {
        Gshare::new(0);
    }

    #[test]
    fn nearby_branches_train_independent_counters() {
        // x86 branch PCs are byte-granular: two branches 1–3 bytes apart
        // (same 4-byte word) must train *separate* counters. The old
        // RISC-style `pc >> 2` index aliased them onto one entry, so the
        // neighbor inherited the hot branch's training.
        for delta in [1u32, 2, 3] {
            let mut g = Gshare::new(12);
            for _ in 0..64 {
                g.predict_and_update(0x40A0, true);
            }
            assert!(g.predict(0x40A0), "trained branch predicts taken");
            assert!(
                !g.predict(0x40A0 + delta),
                "branch at +{delta} bytes must not inherit the neighbor's \
                 counter (still weakly not-taken)"
            );
        }
    }

    #[test]
    fn btb_keeps_entries_for_byte_adjacent_branches() {
        // Two taken branches in the same 4-byte word must occupy distinct
        // BTB entries. Under `pc >> 2` indexing, installing the second
        // evicted the first, forcing a target re-miss every alternation.
        for delta in [1u32, 2, 3] {
            let mut b = Btb::new(10);
            b.predict_and_update(0x40A0, 0x100);
            assert!(b.predict_and_update(0x40A0, 0x100), "trained");
            b.predict_and_update(0x40A0 + delta, 0x200);
            assert!(
                b.predict_and_update(0x40A0, 0x100),
                "entry survives a byte-adjacent install at +{delta}"
            );
            assert!(
                b.predict_and_update(0x40A0 + delta, 0x200),
                "and vice versa"
            );
        }
    }
}
