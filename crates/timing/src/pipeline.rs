//! The 8-wide, deeply pipelined, fetch-centric processor model.
//!
//! The model walks the dynamic stream in fetch order and computes, for
//! every uop, its fetch, issue, completion, and retirement cycles subject
//! to the Table 2 resources. It is *trace-driven with limited wrong-path
//! support* exactly as in the paper (§5.1): mispredicted branches charge
//! their resolution latency but no wrong-path instructions are simulated;
//! asserting frames charge a pessimistic recovery (rollback begins only
//! after the whole frame is ready to retire, §6.1) and the covered
//! instructions are then refetched from the ICache by the caller.

use crate::accounting::{CycleBin, CycleBins};
use crate::cache::Cache;
use crate::config::TimingConfig;
use crate::ports::{CoreModel, GenericScheduler, PortAccurateScheduler, PortScheduler};
use crate::predictor::{Btb, Gshare};
use replay_core::{FlagsSrc, OptFrame, Src};
use replay_uop::{Opcode, Uop, NUM_ARCH_REGS};
use std::collections::{HashMap, VecDeque};

/// Which structure fetch is streaming from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPath {
    /// The conventional instruction cache + x86 decoders.
    ICache,
    /// The frame (or trace) cache.
    Frame,
}

/// One x86 instruction presented to the ICache fetch path.
#[derive(Debug, Clone)]
pub struct X86Fetch<'a> {
    /// Instruction address.
    pub addr: u32,
    /// Its decode flow.
    pub uops: &'a [Uop],
    /// For conditional branches: the resolved direction.
    pub taken: Option<bool>,
    /// For indirect jumps: the resolved target.
    pub indirect_target: Option<u32>,
    /// True if control actually transferred away from fall-through (ends
    /// the fetch group).
    pub redirects_fetch: bool,
    /// Data address of the flow's load, if any.
    pub load_addr: Option<u32>,
    /// Data address of the flow's store, if any.
    pub store_addr: Option<u32>,
    /// Which structure delivers the instruction. A trace-cache hit streams
    /// decoded uops via the frame path (8-wide, no decoder limit) while
    /// keeping ordinary branch-prediction semantics.
    pub path: FetchPath,
}

/// A frame presented to the frame-cache fetch path.
#[derive(Debug, Clone)]
pub struct FrameFetch<'a> {
    /// The (possibly optimized) frame.
    pub frame: &'a OptFrame,
    /// Resolved data address per frame slot (`None` for non-memory uops).
    pub mem_addrs: &'a [Option<u32>],
    /// If the frame's execution fails, the slot at which it fails
    /// (assertion fire or unsafe-store conflict).
    pub fails_at: Option<usize>,
    /// For frames whose unique exit is a conditional branch: the resolved
    /// direction of this dynamic instance. The sequencer predicts it with
    /// the ordinary branch predictor.
    pub exit_taken: Option<bool>,
    /// For frames whose exit is an indirect jump: the resolved target.
    pub exit_indirect: Option<u32>,
}

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Retired x86 instructions (frames count their covered instructions).
    pub retired_x86: u64,
    /// Retired uops.
    pub retired_uops: u64,
    /// Conditional-branch mispredictions.
    pub mispredicts: u64,
    /// BTB target mispredictions.
    pub btb_misses: u64,
    /// Frames that fired an assertion / aborted.
    pub assert_events: u64,
    /// Frames fetched successfully.
    pub frames_fetched: u64,
    /// Cumulative fetch-to-resolution latency of frame-terminating
    /// branches (for the paper's branch-resolution-time observation).
    pub branch_resolution_cycles: u64,
    /// Number of branches contributing to `branch_resolution_cycles`.
    pub branches_resolved: u64,
}

impl PipelineStats {
    /// Records every counter under `<prefix>.<counter>` into an
    /// [`replay_obs::Obs`] — the predictor/fetch counters behind the
    /// paper's Figures 7–8.
    pub fn observe_into(&self, prefix: &str, obs: &mut replay_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.counter(&format!("{prefix}.retired_x86"), self.retired_x86);
        obs.counter(&format!("{prefix}.retired_uops"), self.retired_uops);
        obs.counter(&format!("{prefix}.mispredicts"), self.mispredicts);
        obs.counter(&format!("{prefix}.btb_misses"), self.btb_misses);
        obs.counter(&format!("{prefix}.assert_events"), self.assert_events);
        obs.counter(&format!("{prefix}.frames_fetched"), self.frames_fetched);
        obs.counter(
            &format!("{prefix}.branch_resolution_cycles"),
            self.branch_resolution_cycles,
        );
        obs.counter(
            &format!("{prefix}.branches_resolved"),
            self.branches_resolved,
        );
    }
}

/// The timing pipeline.
#[derive(Debug)]
pub struct Pipeline {
    cfg: TimingConfig,
    cycle: u64,
    cycle_bin: Option<CycleBin>,
    slot_uops: usize,
    slot_insts: usize,
    last_path: Option<FetchPath>,
    reg_ready: [u64; NUM_ARCH_REGS],
    flags_ready: u64,
    sched: Box<dyn PortScheduler>,
    retire_ring: VecDeque<u64>,
    retire_cycle: u64,
    retire_used: usize,
    /// Completion time of the youngest in-flight store per *aligned
    /// 4-byte word*: loads touching the same word must wait for the
    /// store's data (store-buffer forwarding). Every access in this ISA
    /// is a 32-bit word, so an access at `addr` covers the aligned words
    /// `addr & !3` and `(addr + 3) & !3` (one word when aligned, two when
    /// straddling). Keying by exact byte address would let a load
    /// overlapping a store at a nearby address miss the dependence.
    /// Without this map, removing a load via store forwarding would
    /// *lengthen* the modeled dependence chain instead of shortening the
    /// machine's work.
    store_ready: HashMap<u32, u64>,
    icache: Cache,
    l1d: Cache,
    l2: Cache,
    gshare: Gshare,
    btb: Btb,
    bins: CycleBins,
    stats: PipelineStats,
    /// Reusable per-frame scheduling buffers for [`Pipeline::fetch_frame`]:
    /// per-slot value/flag completion times and per-uop completion list.
    /// Kept on the pipeline so the frame-fetch hot path allocates nothing
    /// once warm.
    frame_slot_done: Vec<u64>,
    frame_slot_flags_done: Vec<u64>,
    frame_completions: Vec<u64>,
}

/// The aligned 4-byte words a 32-bit access at `addr` touches: one entry
/// when aligned, two when the access straddles a word boundary.
fn access_words(addr: u32) -> [u32; 2] {
    [addr & !3, addr.wrapping_add(3) & !3]
}

impl Pipeline {
    /// Creates a pipeline for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`TimingConfig::validate`] rejects the configuration
    /// (e.g. a port-accurate table with an unbound opcode).
    pub fn new(cfg: TimingConfig) -> Pipeline {
        if let Err(e) = cfg.validate() {
            panic!("invalid timing configuration: {e}");
        }
        let sched: Box<dyn PortScheduler> = match cfg.core_model {
            CoreModel::Generic => Box::new(GenericScheduler::new(&cfg)),
            CoreModel::PortAccurate => {
                Box::new(PortAccurateScheduler::new(cfg.port_table).expect("validated above"))
            }
        };
        Pipeline {
            icache: Cache::new(cfg.icache),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(12),
            sched,
            cycle: 0,
            cycle_bin: None,
            slot_uops: 0,
            slot_insts: 0,
            last_path: None,
            reg_ready: [0; NUM_ARCH_REGS],
            flags_ready: 0,
            retire_ring: VecDeque::new(),
            retire_cycle: 0,
            retire_used: 0,
            store_ready: HashMap::new(),
            bins: CycleBins::new(),
            stats: PipelineStats::default(),
            frame_slot_done: Vec::new(),
            frame_slot_flags_done: Vec::new(),
            frame_completions: Vec::new(),
            cfg,
        }
    }

    /// The cycle-accounting bins accumulated so far.
    pub fn bins(&self) -> CycleBins {
        self.bins
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Total cycles elapsed (equal to the sum of all bins).
    pub fn cycles(&self) -> u64 {
        self.bins.total()
    }

    /// Retired x86 instructions per cycle.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.stats.retired_x86 as f64 / c as f64
        }
    }

    // ---------------- fetch-clock helpers ----------------

    fn begin_cycle(&mut self, bin: CycleBin) {
        if self.cycle_bin.is_none() {
            self.bins.add(bin, 1);
            self.cycle_bin = Some(bin);
        }
    }

    fn next_cycle(&mut self) {
        self.cycle += 1;
        self.cycle_bin = None;
        self.slot_uops = 0;
        self.slot_insts = 0;
    }

    /// Stalls fetch until `target`, charging idle cycles to `bin`.
    fn stall_until(&mut self, target: u64, bin: CycleBin) {
        if target <= self.cycle {
            return;
        }
        // The current cycle, if not already classified as a fetch cycle,
        // is the first stall cycle.
        let mut remaining = target - self.cycle;
        if self.cycle_bin.is_none() {
            self.bins.add(bin, 1);
        }
        remaining -= 1;
        self.bins.add(bin, remaining);
        self.cycle = target;
        self.cycle_bin = None;
        self.slot_uops = 0;
        self.slot_insts = 0;
    }

    /// Charges the frame-cache ↔ ICache turnaround when the path changes.
    fn switch_path(&mut self, path: FetchPath) {
        if let Some(last) = self.last_path {
            if last != path && self.cfg.cache_switch_wait > 0 {
                let target =
                    self.cycle + self.cfg.cache_switch_wait + u64::from(self.cycle_bin.is_some());
                self.stall_until(target, CycleBin::Wait);
            }
        }
        self.last_path = Some(path);
    }

    /// Reserves one fetch slot on `path`, advancing the cycle when the
    /// group is full. Returns the fetch cycle of the slot.
    fn take_slot(&mut self, path: FetchPath) -> u64 {
        let (bin, uop_cap) = match path {
            FetchPath::Frame => (CycleBin::Frame, self.cfg.width),
            FetchPath::ICache => (CycleBin::ICache, self.cfg.width),
        };
        if self.slot_uops >= uop_cap {
            self.next_cycle();
        }
        self.begin_cycle(bin);
        self.slot_uops += 1;
        self.cycle
    }

    /// Enforces the scheduling-window occupancy limit before inserting a
    /// uop, stalling fetch until the oldest in-flight uop retires.
    fn reserve_window_slot(&mut self) {
        while self.retire_ring.len() >= self.cfg.window {
            let oldest = self.retire_ring.pop_front().expect("ring non-empty");
            self.stall_until(oldest, CycleBin::Stall);
        }
    }

    /// In-order retirement bookkeeping: returns the uop's retire cycle.
    fn retire(&mut self, complete: u64) -> u64 {
        let mut t = complete + 1;
        if t > self.retire_cycle {
            self.retire_cycle = t;
            self.retire_used = 0;
        } else {
            t = self.retire_cycle;
        }
        if self.retire_used >= self.cfg.width {
            self.retire_cycle += 1;
            self.retire_used = 0;
            t = self.retire_cycle;
        }
        self.retire_used += 1;
        self.retire_ring.push_back(t);
        self.stats.retired_uops += 1;
        t
    }

    fn dcache_latency(&mut self, addr: u32) -> u64 {
        if self.l1d.access(addr) {
            self.cfg.l1d_latency
        } else if self.l2.access(addr) {
            self.cfg.l1d_latency + self.cfg.l2_latency
        } else {
            self.cfg.l1d_latency + self.cfg.l2_latency + self.cfg.memory_latency
        }
    }

    fn icache_miss_latency(&mut self, addr: u32) -> Option<u64> {
        if self.icache.access(addr) {
            None
        } else if self.l2.access(addr) {
            Some(self.cfg.l2_latency)
        } else {
            Some(self.cfg.l2_latency + self.cfg.memory_latency)
        }
    }

    /// Schedules one uop given its fetch cycle and operand-ready time.
    /// Returns its completion time.
    ///
    /// The pipeline-depth floor is split per the `config.rs` contract:
    /// every uop waits at least `front_end_depth` cycles after fetch
    /// (decode/rename/schedule), while branch and assert uops wait the
    /// full `branch_resolution_depth` — the paper's "minimum cycles
    /// between fetching a branch and its earliest possible execution".
    fn execute(&mut self, op: Opcode, fetch: u64, ready: u64, mem_addr: Option<u32>) -> u64 {
        let depth = if op.is_branch() || op.is_assert() {
            self.cfg.branch_resolution_depth
        } else {
            self.cfg.front_end_depth
        };
        let earliest = ready.max(fetch + depth);
        let issue = self.sched.issue(op, earliest);
        let latency = match (op, mem_addr) {
            (Opcode::Load, Some(addr)) => self.dcache_latency(addr),
            (Opcode::Store, Some(addr)) => {
                // Fill the line (write-allocate); the store itself clears
                // in one cycle via the store buffer.
                let _ = self.dcache_latency(addr);
                1
            }
            _ => self.sched.op_latency(op),
        };
        issue + latency
    }

    /// Operand-ready floor imposed by in-flight stores overlapping a load
    /// at `addr` (word-granular; see `store_ready`).
    fn load_store_wait(&self, addr: u32) -> u64 {
        let [w0, w1] = access_words(addr);
        let mut t = self.store_ready.get(&w0).copied().unwrap_or(0);
        if w1 != w0 {
            t = t.max(self.store_ready.get(&w1).copied().unwrap_or(0));
        }
        t
    }

    /// Records a store's completion under every word it touches.
    fn record_store(&mut self, addr: u32, complete: u64) {
        let [w0, w1] = access_words(addr);
        self.store_ready.insert(w0, complete);
        if w1 != w0 {
            self.store_ready.insert(w1, complete);
        }
    }

    /// Records the selected core model's per-port pressure counters
    /// (`timing.port.*.issued` / `.contention_cycles`) into an
    /// [`replay_obs::Obs`]. The generic model has no ports and records
    /// nothing.
    pub fn observe_ports(&self, obs: &mut replay_obs::Obs) {
        self.sched.observe_into(obs);
    }

    // ---------------- ICache path ----------------

    /// Fetches one x86 instruction through the ICache and decoders,
    /// scheduling its whole uop flow.
    pub fn fetch_x86(&mut self, f: &X86Fetch<'_>) {
        self.switch_path(f.path);

        if f.path == FetchPath::ICache {
            if let Some(miss) = self.icache_miss_latency(f.addr) {
                let target = self.cycle + miss;
                self.stall_until(target, CycleBin::Miss);
            }
            // Decoder bandwidth: at most 4 x86 instructions per cycle.
            if self.slot_insts >= self.cfg.x86_decode_width {
                self.next_cycle();
            }
            self.slot_insts += 1;
        }

        let mut load_addr = f.load_addr;
        let mut store_addr = f.store_addr;
        let mut branch_complete: Option<u64> = None;

        for u in f.uops {
            self.reserve_window_slot();
            let fetch = self.take_slot(f.path);

            // Operand readiness from the architectural rename map.
            let mut ready = 0u64;
            for r in u.sources() {
                ready = ready.max(self.reg_ready[r.index()]);
            }
            if u.reads_flags() {
                ready = ready.max(self.flags_ready);
            }
            let mem = match u.op {
                Opcode::Load => load_addr.take(),
                Opcode::Store => store_addr.take(),
                _ => None,
            };
            if u.op == Opcode::Load {
                if let Some(addr) = mem {
                    ready = ready.max(self.load_store_wait(addr));
                }
            }
            let complete = self.execute(u.op, fetch, ready, mem);
            if u.op == Opcode::Store {
                if let Some(addr) = mem {
                    self.record_store(addr, complete);
                }
            }
            if let Some(d) = u.dst {
                self.reg_ready[d.index()] = complete;
            }
            if u.writes_flags {
                self.flags_ready = complete;
            }
            if u.op.is_branch() {
                branch_complete = Some(complete);
                self.stats.branch_resolution_cycles += complete.saturating_sub(fetch);
                self.stats.branches_resolved += 1;
            }
            self.retire(complete);
        }
        self.stats.retired_x86 += 1;

        // Prediction: a wrong direction or a wrong/missing target stalls
        // fetch until the branch resolves.
        let mut redirect = None;
        if let Some(taken) = f.taken {
            let correct = self.gshare.predict_and_update(f.addr, taken);
            if !correct {
                self.stats.mispredicts += 1;
                redirect = branch_complete;
            } else if taken {
                let target_known = self
                    .btb
                    .predict_and_update(f.addr, f.uops.last().map_or(0, |u| u.target));
                if !target_known {
                    self.stats.btb_misses += 1;
                    redirect = branch_complete;
                }
            }
        } else if let Some(actual) = f.indirect_target {
            let target_known = self.btb.predict_and_update(f.addr, actual);
            if !target_known {
                self.stats.btb_misses += 1;
                redirect = branch_complete;
            }
        }

        if let Some(resolve) = redirect {
            self.stall_until(resolve + 1, CycleBin::Mispredict);
        } else if f.redirects_fetch && f.path == FetchPath::ICache {
            // A correctly predicted taken transfer still ends the fetch
            // group on the ICache path (no fetching past a taken branch
            // within a cycle). Trace-cache lines embed taken branches and
            // stream straight through them — that is their reason to
            // exist.
            self.next_cycle();
        }
    }

    // ---------------- Frame path ----------------

    /// Fetches an entire frame from the frame cache.
    ///
    /// Returns `true` if the frame completed; `false` if it asserted (the
    /// caller must then refetch the covered x86 instructions through
    /// [`Pipeline::fetch_x86`] — the paper's recovery path).
    ///
    /// # Panics
    ///
    /// Panics if `mem_addrs` is shorter than the frame.
    pub fn fetch_frame(&mut self, f: &FrameFetch<'_>) -> bool {
        assert!(f.mem_addrs.len() >= f.frame.len(), "mem_addrs too short");
        self.switch_path(FetchPath::Frame);

        let n = f.frame.len();
        // Reusable scheduling buffers: clear + zero-fill recycles their
        // capacity, so a warm pipeline fetches frames without allocating.
        self.frame_slot_done.clear();
        self.frame_slot_done.resize(n, 0);
        self.frame_slot_flags_done.clear();
        self.frame_slot_flags_done.resize(n, 0);
        self.frame_completions.clear();
        let mut completions_max = 0u64;
        let mut exit_branch: Option<(u32, u32, u64)> = None; // (pc, target, complete)

        for (i, u) in f.frame.iter() {
            self.reserve_window_slot();
            let fetch = self.take_slot(FetchPath::Frame);
            let mut ready = 0u64;
            for src in [u.src_a, u.src_b].into_iter().flatten() {
                ready = ready.max(match src {
                    Src::LiveIn(r) => self.reg_ready[r.index()],
                    Src::Slot(s) => self.frame_slot_done[s as usize],
                });
            }
            if let Some(fs) = u.flags_src {
                ready = ready.max(match fs {
                    FlagsSrc::LiveIn => self.flags_ready,
                    FlagsSrc::Slot(s) => self.frame_slot_flags_done[s as usize],
                });
            }
            let mem = f.mem_addrs[i as usize];
            if u.op == Opcode::Load {
                if let Some(addr) = mem {
                    ready = ready.max(self.load_store_wait(addr));
                }
            }
            let complete = self.execute(u.op, fetch, ready, mem);
            if u.op == Opcode::Store {
                if let Some(addr) = mem {
                    self.record_store(addr, complete);
                }
            }
            self.frame_slot_done[i as usize] = complete;
            if u.writes_flags {
                self.frame_slot_flags_done[i as usize] = complete;
            }
            if u.op.is_branch() {
                exit_branch = Some((u.x86_addr, u.target, complete));
                self.stats.branch_resolution_cycles += complete.saturating_sub(fetch);
                self.stats.branches_resolved += 1;
            }
            self.frame_completions.push(complete);
            completions_max = completions_max.max(complete);
        }

        if f.fails_at.is_some() {
            // Pessimistic recovery (§6.1): rollback begins only once every
            // uop in the frame is ready for retirement.
            self.stats.assert_events += 1;
            self.stall_until(completions_max + 1, CycleBin::Assert);
            // Architectural state rolls back; timing-wise the machine
            // resynchronizes at the recovery point.
            self.reg_ready = [self.cycle; NUM_ARCH_REGS];
            self.flags_ready = self.cycle;
            // The in-flight frame drains.
            for j in 0..self.frame_completions.len() {
                let c = self.frame_completions[j];
                self.retire(c);
            }
            return false;
        }

        // Commit: live-out registers become ready at their producers'
        // completion; everything retires atomically, in order.
        for &(r, src) in f.frame.live_out() {
            self.reg_ready[r.index()] = match src {
                Src::LiveIn(other) => self.reg_ready[other.index()],
                Src::Slot(s) => self.frame_slot_done[s as usize],
            };
        }
        self.flags_ready = match f.frame.flags_out() {
            FlagsSrc::LiveIn => self.flags_ready,
            FlagsSrc::Slot(s) => self.frame_slot_flags_done[s as usize],
        };
        for j in 0..self.frame_completions.len() {
            let c = self.frame_completions[j];
            self.retire(c.max(completions_max));
        }
        self.stats.retired_x86 += f.frame.x86_count() as u64;
        self.stats.frames_fetched += 1;

        // The frame's exit: a final conditional branch or indirect jump is
        // predicted by the ordinary predictors, exactly like a decoder-path
        // branch; a wrong prediction stalls fetch until the exit resolves.
        if let Some((pc, target, complete)) = exit_branch {
            let mut redirect = None;
            if let Some(taken) = f.exit_taken {
                if !self.gshare.predict_and_update(pc, taken) {
                    self.stats.mispredicts += 1;
                    redirect = Some(complete);
                } else if taken && !self.btb.predict_and_update(pc, target) {
                    self.stats.btb_misses += 1;
                    redirect = Some(complete);
                }
            } else if let Some(actual) = f.exit_indirect {
                if !self.btb.predict_and_update(pc, actual) {
                    self.stats.btb_misses += 1;
                    redirect = Some(complete);
                }
            }
            if let Some(resolve) = redirect {
                self.stall_until(resolve + 1, CycleBin::Mispredict);
            } else {
                self.next_cycle();
            }
        }
        true
    }

    /// Charges the exit misprediction of a frame whose successor was not
    /// the frame's recorded exit (sequencer misprediction).
    pub fn frame_exit_mispredict(&mut self) {
        self.stats.mispredicts += 1;
        let resolve = self.cycle + self.cfg.branch_resolution_depth;
        self.stall_until(resolve + 1, CycleBin::Mispredict);
    }

    /// Drains the pipeline at end of simulation, charging the tail to
    /// `Stall`.
    pub fn finish(&mut self) {
        let drain = self.retire_cycle.max(self.cycle);
        self.stall_until(drain, CycleBin::Stall);
        if self.cycle_bin.is_none() && self.bins.total() == 0 {
            // Degenerate empty run.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_core::OptFrame;
    use replay_frame::{Frame, FrameId};
    use replay_uop::{ArchReg, Cond};

    fn cfg() -> TimingConfig {
        TimingConfig::paper_default()
    }

    fn alu_flow() -> Vec<Uop> {
        vec![Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1).ending_x86()]
    }

    fn plain_fetch<'a>(addr: u32, uops: &'a [Uop]) -> X86Fetch<'a> {
        X86Fetch {
            addr,
            uops,
            taken: None,
            indirect_target: None,
            redirects_fetch: false,
            load_addr: None,
            store_addr: None,
            path: FetchPath::ICache,
        }
    }

    #[test]
    fn decoder_width_limits_x86_per_cycle() {
        let mut p = Pipeline::new(cfg());
        let flow = alu_flow();
        // 8 single-uop instructions at 4 x86/cycle = 2 fetch cycles (plus
        // a cold icache miss stall first).
        for i in 0..8 {
            p.fetch_x86(&plain_fetch(0x1000 + i, &flow));
        }
        assert_eq!(p.bins().get(CycleBin::ICache), 2);
        assert!(p.bins().get(CycleBin::Miss) > 0, "cold miss charged");
        assert_eq!(p.stats().retired_x86, 8);
    }

    #[test]
    fn ipc_counts_cycles_consistently() {
        let mut p = Pipeline::new(cfg());
        let flow = alu_flow();
        for i in 0..100u32 {
            p.fetch_x86(&plain_fetch(0x1000 + (i % 16), &flow));
        }
        p.finish();
        assert_eq!(p.cycles(), p.bins().total(), "bins cover every cycle");
        assert!(p.ipc() > 0.5, "ipc {}", p.ipc());
    }

    #[test]
    fn mispredicted_branch_charges_resolution() {
        let mut p = Pipeline::new(cfg());
        let br = vec![Uop::br(Cond::Eq, 0x2000).ending_x86()];
        // A cold conditional branch that is taken: direction predictor is
        // weakly not-taken, so this mispredicts.
        p.fetch_x86(&X86Fetch {
            addr: 0x1000,
            uops: &br,
            taken: Some(true),
            indirect_target: None,
            redirects_fetch: true,
            load_addr: None,
            store_addr: None,
            path: FetchPath::ICache,
        });
        assert_eq!(p.stats().mispredicts, 1);
        assert!(
            p.bins().get(CycleBin::Mispredict) >= cfg().branch_resolution_depth,
            "resolution depth charged: {}",
            p.bins().get(CycleBin::Mispredict)
        );
    }

    #[test]
    fn load_miss_latency_longer_than_hit() {
        let mut p = Pipeline::new(cfg());
        let ld = vec![Uop::load(ArchReg::Eax, ArchReg::Esi, 0).ending_x86()];
        let mut f = plain_fetch(0x1000, &ld);
        f.load_addr = Some(0x9000);
        p.fetch_x86(&f);
        let cold = p.reg_ready[ArchReg::Eax.index()];
        // Re-load the same line: now an L1 hit; dependent chain grows by
        // only the hit latency.
        let mut f2 = plain_fetch(0x1001, &ld);
        f2.load_addr = Some(0x9004);
        p.fetch_x86(&f2);
        let warm = p.reg_ready[ArchReg::Eax.index()];
        assert!(cold > 0);
        assert!(
            warm < cold + cfg().l1d_latency + 5,
            "warm load completed near cold one: {warm} vs {cold}"
        );
    }

    fn tiny_frame(n_uops: usize) -> OptFrame {
        let uops = (0..n_uops)
            .map(|_| Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1))
            .collect::<Vec<_>>();
        let frame = Frame {
            id: FrameId(1),
            start_addr: 0x5000,
            x86_addrs: (0..n_uops as u32).map(|i| 0x5000 + i).collect(),
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x6000,
            orig_uop_count: n_uops,
            uops,
        };
        let mut f = OptFrame::from_frame(&frame);
        f.compact();
        f
    }

    #[test]
    fn frame_fetch_is_eight_wide() {
        let mut p = Pipeline::new(cfg());
        let f = tiny_frame(16);
        let addrs = vec![None; 16];
        let ok = p.fetch_frame(&FrameFetch {
            frame: &f,
            mem_addrs: &addrs,
            fails_at: None,
            exit_taken: None,
            exit_indirect: None,
        });
        assert!(ok);
        assert_eq!(p.bins().get(CycleBin::Frame), 2, "16 uops / 8 wide");
        assert_eq!(p.stats().retired_x86, 16);
        assert_eq!(p.stats().frames_fetched, 1);
    }

    #[test]
    fn asserting_frame_charges_assert_cycles_and_retires_nothing() {
        let mut p = Pipeline::new(cfg());
        let f = tiny_frame(8);
        let addrs = vec![None; 8];
        let ok = p.fetch_frame(&FrameFetch {
            frame: &f,
            mem_addrs: &addrs,
            fails_at: Some(7),
            exit_taken: None,
            exit_indirect: None,
        });
        assert!(!ok);
        assert_eq!(p.stats().assert_events, 1);
        assert_eq!(p.stats().retired_x86, 0);
        assert!(
            p.bins().get(CycleBin::Assert) >= cfg().branch_resolution_depth,
            "pessimistic recovery is at least the pipe depth"
        );
    }

    #[test]
    fn path_switch_charges_wait() {
        let mut p = Pipeline::new(cfg());
        let flow = alu_flow();
        p.fetch_x86(&plain_fetch(0x1000, &flow));
        let f = tiny_frame(8);
        let addrs = vec![None; 8];
        p.fetch_frame(&FrameFetch {
            frame: &f,
            mem_addrs: &addrs,
            fails_at: None,
            exit_taken: None,
            exit_indirect: None,
        });
        p.fetch_x86(&plain_fetch(0x1005, &flow));
        assert!(p.bins().get(CycleBin::Wait) >= 2, "two switches");
    }

    #[test]
    fn frame_dependencies_chain_across_live_outs() {
        // A frame whose live-out feeds a subsequent icache instruction.
        let mut p = Pipeline::new(cfg());
        let f = tiny_frame(8);
        let addrs = vec![None; 8];
        p.fetch_frame(&FrameFetch {
            frame: &f,
            mem_addrs: &addrs,
            fails_at: None,
            exit_taken: None,
            exit_indirect: None,
        });
        let eax_ready = p.reg_ready[ArchReg::Eax.index()];
        assert!(eax_ready > 0, "live-out EAX carries a completion time");
    }

    #[test]
    fn window_fills_under_a_long_dependence_chain() {
        let mut small = cfg();
        small.window = 16;
        let mut p = Pipeline::new(small);
        // A long chain of dependent loads to distinct cold lines keeps
        // completions slow while fetch runs ahead -> window stalls.
        let mut flows = Vec::new();
        for _ in 0..64u32 {
            flows.push(vec![Uop::load(ArchReg::Eax, ArchReg::Eax, 0).ending_x86()]);
        }
        for (i, flow) in flows.iter().enumerate() {
            let mut f = plain_fetch(0x1000 + i as u32, flow);
            f.load_addr = Some(0x10_0000 + (i as u32) * 4096);
            p.fetch_x86(&f);
        }
        assert!(
            p.bins().get(CycleBin::Stall) > 0,
            "window stalls appear: {}",
            p.bins()
        );
    }

    #[test]
    fn store_to_load_dependence_is_modeled() {
        // A load that reads a just-stored word must wait for the store's
        // data chain; an unrelated load must not.
        let mut p = Pipeline::new(cfg());
        // Long-latency producer: dependent loads to cold lines.
        let mut fl = Vec::new();
        for i in 0..4u32 {
            fl.push(vec![
                Uop::load(ArchReg::Eax, ArchReg::Eax, i as i32).ending_x86()
            ]);
        }
        for (i, flow) in fl.iter().enumerate() {
            let mut f = plain_fetch(0x1000 + i as u32, flow);
            f.load_addr = Some(0x20_0000 + (i as u32) * 8192);
            p.fetch_x86(&f);
        }
        let chain_done = p.reg_ready[ArchReg::Eax.index()];
        // Store the chained value, then load it back.
        let st = vec![Uop::store(ArchReg::Esi, 0, ArchReg::Eax).ending_x86()];
        let mut f = plain_fetch(0x2000, &st);
        f.store_addr = Some(0x30_0000);
        p.fetch_x86(&f);
        let ld = vec![Uop::load(ArchReg::Ebx, ArchReg::Esi, 0).ending_x86()];
        let mut f = plain_fetch(0x2001, &ld);
        f.load_addr = Some(0x30_0000);
        p.fetch_x86(&f);
        assert!(
            p.reg_ready[ArchReg::Ebx.index()] > chain_done,
            "forwarded load waits for the store's data ({} vs {})",
            p.reg_ready[ArchReg::Ebx.index()],
            chain_done
        );
        // An unrelated cold load does not.
        let mut f = plain_fetch(0x2002, &ld);
        f.load_addr = Some(0x40_0000);
        p.fetch_x86(&f);
        assert!(p.reg_ready[ArchReg::Ebx.index()] < chain_done + 100);
    }

    #[test]
    fn branch_resolution_floor_applies_only_to_branch_and_assert_uops() {
        // Regression: the 15-cycle branch-resolution floor used to apply
        // to *every* uop, contradicting the config contract. A plain ALU
        // uop must now be schedulable after the shallower front-end depth,
        // while a branch still waits the full resolution depth.
        let c = cfg();
        let mut p = Pipeline::new(c.clone());
        let flow = alu_flow();
        p.fetch_x86(&plain_fetch(0x1000, &flow));
        let alu_done = p.reg_ready[ArchReg::Eax.index()];
        assert_eq!(
            alu_done,
            p.cycle + c.front_end_depth + 1,
            "ALU uop floored by front-end depth only"
        );
        assert!(alu_done < p.cycle + c.branch_resolution_depth);

        // A correctly predicted not-taken branch: its resolution time is
        // recorded without any mispredict stall.
        let br = vec![Uop::br(Cond::Eq, 0x2000).ending_x86()];
        p.fetch_x86(&X86Fetch {
            addr: 0x1004,
            uops: &br,
            taken: Some(false),
            indirect_target: None,
            redirects_fetch: false,
            load_addr: None,
            store_addr: None,
            path: FetchPath::ICache,
        });
        assert_eq!(p.stats().branches_resolved, 1);
        assert!(
            p.stats().branch_resolution_cycles >= c.branch_resolution_depth,
            "branch still floored by resolution depth: {}",
            p.stats().branch_resolution_cycles
        );
    }

    #[test]
    fn store_forwarding_is_word_granular() {
        // A load overlapping a store at a *nearby* byte address (same
        // aligned word) must see the dependence; keying by exact byte
        // address used to miss it.
        let mut p = Pipeline::new(cfg());
        // Slow producer chain feeding the store's data.
        let mut fl = Vec::new();
        for i in 0..4u32 {
            fl.push(vec![
                Uop::load(ArchReg::Eax, ArchReg::Eax, i as i32).ending_x86()
            ]);
        }
        for (i, flow) in fl.iter().enumerate() {
            let mut f = plain_fetch(0x1000 + i as u32, flow);
            f.load_addr = Some(0x20_0000 + (i as u32) * 8192);
            p.fetch_x86(&f);
        }
        let chain_done = p.reg_ready[ArchReg::Eax.index()];
        let st = vec![Uop::store(ArchReg::Esi, 0, ArchReg::Eax).ending_x86()];
        let mut f = plain_fetch(0x2000, &st);
        f.store_addr = Some(0x30_0000);
        p.fetch_x86(&f);
        // Load two bytes into the stored word: overlapping, not equal.
        let ld = vec![Uop::load(ArchReg::Ebx, ArchReg::Esi, 0).ending_x86()];
        let mut f = plain_fetch(0x2001, &ld);
        f.load_addr = Some(0x30_0002);
        p.fetch_x86(&f);
        assert!(
            p.reg_ready[ArchReg::Ebx.index()] > chain_done,
            "overlapping load waits for the store's data ({} vs {})",
            p.reg_ready[ArchReg::Ebx.index()],
            chain_done
        );
        // A load in the next word (beyond the straddle range) does not.
        let mut f = plain_fetch(0x2002, &ld);
        f.load_addr = Some(0x30_0008);
        p.fetch_x86(&f);
        assert!(p.reg_ready[ArchReg::Ebx.index()] < chain_done + 100);
    }

    #[test]
    fn port_model_pipeline_runs_and_counts_port_pressure() {
        let mut c = cfg();
        c.core_model = crate::ports::CoreModel::PortAccurate;
        let mut p = Pipeline::new(c);
        let flow = alu_flow();
        for i in 0..32u32 {
            p.fetch_x86(&plain_fetch(0x1000 + i, &flow));
        }
        p.finish();
        assert_eq!(p.stats().retired_x86, 32);
        assert_eq!(p.cycles(), p.bins().total());
        let mut obs = replay_obs::Obs::collecting();
        p.observe_ports(&mut obs);
        let profile = obs.into_profile();
        let issued: u64 = ["p0", "p1", "p23", "p5"]
            .iter()
            .map(|l| profile.counter(&format!("timing.port.{l}.issued")))
            .sum();
        assert_eq!(issued, 32, "every uop issued to exactly one port");
    }

    #[test]
    fn generic_model_records_no_port_counters() {
        let mut p = Pipeline::new(cfg());
        let flow = alu_flow();
        p.fetch_x86(&plain_fetch(0x1000, &flow));
        let mut obs = replay_obs::Obs::collecting();
        p.observe_ports(&mut obs);
        assert!(
            obs.into_profile().is_empty(),
            "generic model emits no timing.port.* keys"
        );
    }

    #[test]
    fn dcache_hierarchy_latencies_order() {
        let mut p = Pipeline::new(cfg());
        // Cold access: L1 + L2 + memory.
        let cold = p.dcache_latency(0x50_0000);
        // L2-resident now? No: a cold miss fills both levels, so the next
        // access to the same line is an L1 hit.
        let warm = p.dcache_latency(0x50_0000);
        assert_eq!(
            cold,
            cfg().l1d_latency + cfg().l2_latency + cfg().memory_latency
        );
        assert_eq!(warm, cfg().l1d_latency);
        assert!(cold > warm);
    }

    #[test]
    fn frame_exit_branch_prediction_learns() {
        // A frame whose exit branch always resolves the same way should
        // stop paying misprediction after warm-up.
        let mut p = Pipeline::new(cfg());
        let frame = {
            let mut uops: Vec<Uop> = (0..7)
                .map(|_| Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1))
                .collect();
            let mut br = Uop::br(replay_uop::Cond::Eq, 0x9000);
            br.x86_addr = 0x5007;
            uops.push(br);
            let f = Frame {
                id: FrameId(2),
                start_addr: 0x5000,
                x86_addrs: (0..8).map(|i| 0x5000 + i).collect(),
                block_starts: vec![0],
                expectations: vec![],
                exit_next: 0x9000,
                orig_uop_count: 8,
                uops,
            };
            let mut f = OptFrame::from_frame(&f);
            f.compact();
            f
        };
        let addrs = vec![None; 8];
        for _ in 0..40 {
            p.fetch_frame(&FrameFetch {
                frame: &frame,
                mem_addrs: &addrs,
                fails_at: None,
                exit_taken: Some(true),
                exit_indirect: None,
            });
        }
        let early = p.stats().mispredicts + p.stats().btb_misses;
        for _ in 0..40 {
            p.fetch_frame(&FrameFetch {
                frame: &frame,
                mem_addrs: &addrs,
                fails_at: None,
                exit_taken: Some(true),
                exit_indirect: None,
            });
        }
        let late = p.stats().mispredicts + p.stats().btb_misses - early;
        assert!(
            late == 0,
            "steady exit predicts perfectly ({late} late misses)"
        );
    }

    #[test]
    fn retire_bandwidth_is_respected() {
        // 64 independent single-cycle uops cannot retire in fewer than
        // 64/8 = 8 retire cycles.
        let mut p = Pipeline::new(cfg());
        let flow: Vec<Uop> = (0..1)
            .map(|_| Uop::mov_imm(ArchReg::Eax, 1).ending_x86())
            .collect();
        for i in 0..64u32 {
            p.fetch_x86(&plain_fetch(0x1000 + i, &flow));
        }
        p.finish();
        // retire_cycle advanced at least 8 cycles beyond the first
        // completion.
        assert!(p.retire_cycle >= 8, "retire cycle {}", p.retire_cycle);
    }

    #[test]
    fn bins_sum_to_cycles_with_frames_and_asserts() {
        let mut p = Pipeline::new(cfg());
        let flow = alu_flow();
        let f = tiny_frame(12);
        let addrs = vec![None; 12];
        for round in 0..10 {
            p.fetch_x86(&plain_fetch(0x1000 + round, &flow));
            p.fetch_frame(&FrameFetch {
                frame: &f,
                mem_addrs: &addrs,
                fails_at: (round % 4 == 3).then_some(5),
                exit_taken: None,
                exit_indirect: None,
            });
        }
        p.finish();
        assert_eq!(p.cycles(), p.bins().total());
        assert!(p.bins().get(CycleBin::Assert) > 0);
        assert!(p.bins().get(CycleBin::Frame) > 0);
        assert!(p.bins().get(CycleBin::ICache) > 0);
    }
}
