//! Processor configuration (paper Table 2).

use crate::cache::CacheConfig;
use crate::ports::{CoreModel, PortConfigError, PortTable};

/// The timing model's processor parameters.
///
/// Defaults reproduce Table 2 of the paper; named constructors give the
/// ICache-only reference configuration its larger instruction cache.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Fetch/issue/retire width in uops (paper: 8).
    pub width: usize,
    /// Maximum x86 instructions decoded per cycle on the ICache path
    /// (paper: 4).
    pub x86_decode_width: usize,
    /// Minimum cycles between fetching a branch (or assert) and its
    /// earliest possible execution (paper: 15). Applies only to
    /// branch/assert uops; other uops are floored by the shallower
    /// [`TimingConfig::front_end_depth`].
    pub branch_resolution_depth: u64,
    /// Front-end pipeline depth: minimum cycles between fetching *any*
    /// uop and its earliest possible execution (fetch → decode → rename →
    /// schedule). The paper specifies only the branch-resolution number;
    /// 8 models a front end roughly half that deep.
    pub front_end_depth: u64,
    /// Scheduling-window capacity in uops (paper: 512).
    pub window: usize,
    /// Number of single-cycle integer ALUs (paper: 6).
    pub simple_alus: usize,
    /// Number of multi-cycle integer units (paper: 2).
    pub complex_alus: usize,
    /// Number of floating-point units (paper: 3). The integer-only uop
    /// ISA never routes to them, so neither core model instantiates an
    /// FPU bank; the count is retained as Table 2 bookkeeping.
    pub fpus: usize,
    /// Number of load/store units (paper: 4).
    pub ldst_units: usize,
    /// gshare global-history length in bits (paper: 18).
    pub gshare_bits: u32,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 data hit latency (paper: 2).
    pub l1d_latency: u64,
    /// L2 hit latency (paper: 10).
    pub l2_latency: u64,
    /// Memory latency (paper: 50).
    pub memory_latency: u64,
    /// Frame/trace cache capacity in uops (paper: 16K ≈ 64 kB).
    pub frame_cache_uops: usize,
    /// Idle cycle charged when fetch switches between the frame cache and
    /// the ICache (the paper's Wait cycles).
    pub cache_switch_wait: u64,
    /// Latency of a complex integer op (`IMUL`).
    pub mul_latency: u64,
    /// Latency of `DIV`/`REM`.
    pub div_latency: u64,
    /// Which execution-core model schedules uops (see the `ports`
    /// module). `Generic` reproduces the paper's Table 2 unit pool.
    pub core_model: CoreModel,
    /// Per-opcode port bindings and latencies used when `core_model` is
    /// [`CoreModel::PortAccurate`].
    pub port_table: PortTable,
}

impl TimingConfig {
    /// The paper's rePLay / Trace-Cache configuration: 8 kB ICache next to
    /// a 16K-uop frame cache.
    pub fn paper_default() -> TimingConfig {
        TimingConfig {
            width: 8,
            x86_decode_width: 4,
            window: 512,
            simple_alus: 6,
            complex_alus: 2,
            fpus: 3,
            ldst_units: 4,
            gshare_bits: 18,
            icache: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                assoc: 2,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                assoc: 4,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                assoc: 8,
            },
            l1d_latency: 2,
            l2_latency: 10,
            memory_latency: 50,
            frame_cache_uops: 16 * 1024,
            cache_switch_wait: 1,
            mul_latency: 3,
            div_latency: 12,
            branch_resolution_depth: 15,
            front_end_depth: 8,
            core_model: CoreModel::Generic,
            port_table: PortTable::uops_info(),
        }
    }

    /// The paper's ICache-only reference configuration: a 64 kB ICache and
    /// no frame/trace cache.
    pub fn icache_reference() -> TimingConfig {
        TimingConfig {
            icache: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                assoc: 2,
            },
            frame_cache_uops: 0,
            ..TimingConfig::paper_default()
        }
    }

    /// Validates the configuration for the selected core model: under
    /// [`CoreModel::PortAccurate`], every opcode must bind at least one
    /// issue port with non-zero latency and occupancy (the generic model's
    /// unit counts are checked at pool construction).
    pub fn validate(&self) -> Result<(), PortConfigError> {
        match self.core_model {
            CoreModel::Generic => Ok(()),
            CoreModel::PortAccurate => self.port_table.validate(),
        }
    }
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = TimingConfig::paper_default();
        assert_eq!(c.width, 8);
        assert_eq!(c.x86_decode_width, 4);
        assert_eq!(c.branch_resolution_depth, 15);
        assert_eq!(c.window, 512);
        assert_eq!(
            (c.simple_alus, c.complex_alus, c.fpus, c.ldst_units),
            (6, 2, 3, 4)
        );
        assert_eq!(c.gshare_bits, 18);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d_latency, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2_latency, 10);
        assert_eq!(c.memory_latency, 50);
        assert_eq!(c.frame_cache_uops, 16 * 1024);
        assert_eq!(c.icache.size_bytes, 8 * 1024);
        assert_eq!(c.core_model, CoreModel::Generic);
        assert!(c.front_end_depth < c.branch_resolution_depth);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn port_model_validates_its_table() {
        let mut c = TimingConfig::paper_default();
        c.core_model = CoreModel::PortAccurate;
        assert!(c.validate().is_ok());
        c.port_table.set_binding(
            replay_uop::Opcode::Load,
            crate::ports::PortBinding {
                ports: crate::ports::PortSet::NONE,
                latency: 1,
                occupancy: 1,
            },
        );
        assert_eq!(
            c.validate(),
            Err(PortConfigError::UnboundOpcode(replay_uop::Opcode::Load))
        );
    }

    #[test]
    fn icache_reference_differs_only_in_fetch_path() {
        let c = TimingConfig::icache_reference();
        assert_eq!(c.icache.size_bytes, 64 * 1024);
        assert_eq!(c.frame_cache_uops, 0);
        assert_eq!(c.window, 512);
    }
}
