//! Set-associative cache model.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

/// A set-associative, true-LRU cache with hit/miss counters.
///
/// Tags only — the model tracks presence, not contents (values come from
/// the trace / functional machine).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<(u32, u64)>>, // (tag, last_use) per way
    set_shift: u32,
    set_mask: u32,
    assoc: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or capacity not divisible by `line × assoc`).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes > 0);
        assert!(cfg.assoc > 0 && cfg.size_bytes > 0);
        let lines = cfg.size_bytes / cfg.line_bytes;
        assert!(
            cfg.assoc <= lines,
            "associativity {} exceeds the {} line(s) the capacity holds \
             ({} B / {} B lines)",
            cfg.assoc,
            lines,
            cfg.size_bytes,
            cfg.line_bytes
        );
        assert!(
            lines.is_multiple_of(cfg.assoc),
            "capacity must divide evenly"
        );
        let n_sets = (lines / cfg.assoc).max(1);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(cfg.assoc); n_sets],
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u32,
            assoc: cfg.assoc,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`, filling on miss.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.clock += 1;
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|(t, _)| *t == tag) {
            way.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if ways.len() >= self.assoc {
            let victim = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            ways.swap_remove(victim);
        }
        ways.push((tag, self.clock));
        false
    }

    /// Probes without filling or updating LRU. Returns `true` if resident.
    pub fn probe(&self, addr: u32) -> bool {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.sets[set].iter().any(|(t, _)| *t == tag)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]` (zero before any access).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert!(!c.access(0x1040), "next line");
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_within_set() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines * 64B
        // = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a);
        c.access(b);
        c.access(a); // b is now LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = small();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
        assert!(c.probe(0x40));
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        assert_eq!(c.miss_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for i in 0..4u32 {
            assert!(!c.access(i * 64));
        }
        for i in 0..4u32 {
            assert!(c.access(i * 64), "line {i} still resident");
        }
    }

    #[test]
    #[should_panic(expected = "associativity 4 exceeds the 2 line(s)")]
    fn assoc_exceeding_lines_panics_with_a_clear_message() {
        // 128 B / 64 B lines = 2 lines cannot host 4 ways.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            assoc: 4,
        });
    }

    #[test]
    fn single_set_cache_distinguishes_all_lines_by_tag() {
        // Fully associative degenerate geometry: 4 ways, 1 set. With
        // set_mask == 0 every address maps to set 0 and the *whole* line
        // number is the tag — distinct lines must never be confused.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            assoc: 4,
        });
        for i in 0..4u32 {
            assert!(!c.access(i * 64), "cold line {i}");
        }
        for i in 0..4u32 {
            assert!(c.access(i * 64), "line {i} resident, tag exact");
            assert!(c.probe(i * 64), "probe agrees");
        }
        // A line differing only above the (empty) index field must miss.
        assert!(!c.probe(4 * 64));
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 4);
    }

    #[test]
    fn probe_after_eviction_agrees_with_access_accounting() {
        let mut c = small();
        // Fill one set (2 ways) then overflow it; set stride is 256 B.
        let (a, b, d) = (0x0000, 0x0100, 0x0200);
        c.access(a);
        c.access(b);
        c.access(d); // evicts a (LRU)
        assert!(!c.probe(a), "evicted line gone");
        assert!(c.probe(b) && c.probe(d), "survivors resident");
        let misses_before = c.misses();
        // probe never fills and never counts: re-accessing the evicted
        // line must be a genuine miss, and the survivors genuine hits.
        assert!(!c.access(a));
        assert_eq!(c.misses(), misses_before + 1, "probe did not pre-fill");
        let hits_before = c.hits();
        assert!(c.access(d));
        assert_eq!(c.hits(), hits_before + 1, "probe did not disturb LRU state");
    }
}
