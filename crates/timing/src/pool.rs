//! Functional-unit pool (the generic core model's execution resources).

use replay_uop::OpcodeClass;

/// Tracks per-unit busy times for the integer execution resources of
/// Table 2: simple ALUs, complex ALUs, and load/store units.
///
/// Assertion uops execute on simple ALUs; loads and stores occupy a
/// load/store unit for one cycle (the cache latency is modeled separately
/// as result latency, the unit itself is pipelined).
///
/// The paper's 3 FPUs are *not* instantiated: the integer-only uop ISA
/// has no opcode class that routes to them, so an FPU bank would be dead
/// configuration (`TimingConfig::fpus` documents the Table 2 count). The
/// port-accurate model (`ports` module) likewise binds every opcode to
/// real integer/memory ports and makes an unbound opcode a typed error.
#[derive(Debug, Clone)]
pub struct FuPool {
    simple: Vec<u64>,
    complex: Vec<u64>,
    ldst: Vec<u64>,
}

impl FuPool {
    /// Creates a pool with the given unit counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(simple: usize, complex: usize, ldst: usize) -> FuPool {
        assert!(
            simple > 0 && complex > 0 && ldst > 0,
            "unit counts must be positive"
        );
        FuPool {
            simple: vec![0; simple],
            complex: vec![0; complex],
            ldst: vec![0; ldst],
        }
    }

    fn bank(&mut self, class: OpcodeClass) -> &mut Vec<u64> {
        match class {
            OpcodeClass::ComplexAlu => &mut self.complex,
            OpcodeClass::Load | OpcodeClass::Store => &mut self.ldst,
            // SimpleAlu, Branch, Assert, Other share the simple ALUs.
            _ => &mut self.simple,
        }
    }

    /// Reserves a unit of the class at or after `earliest`, occupying it
    /// for `occupy` cycles. Returns the actual issue time.
    pub fn issue(&mut self, class: OpcodeClass, earliest: u64, occupy: u64) -> u64 {
        let bank = self.bank(class);
        let (idx, &free) = bank
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("non-empty bank");
        let start = earliest.max(free);
        bank[idx] = start + occupy.max(1);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_delays_issue() {
        let mut p = FuPool::new(2, 1, 1);
        assert_eq!(p.issue(OpcodeClass::SimpleAlu, 10, 1), 10);
        assert_eq!(p.issue(OpcodeClass::SimpleAlu, 10, 1), 10, "second unit");
        assert_eq!(p.issue(OpcodeClass::SimpleAlu, 10, 1), 11, "both busy");
    }

    #[test]
    fn classes_are_independent() {
        let mut p = FuPool::new(1, 1, 1);
        assert_eq!(p.issue(OpcodeClass::SimpleAlu, 5, 10), 5);
        assert_eq!(p.issue(OpcodeClass::Load, 5, 1), 5, "LSU not blocked");
        assert_eq!(p.issue(OpcodeClass::ComplexAlu, 5, 1), 5);
    }

    #[test]
    fn long_occupancy_blocks_complex_unit() {
        let mut p = FuPool::new(1, 1, 1);
        assert_eq!(p.issue(OpcodeClass::ComplexAlu, 0, 12), 0);
        assert_eq!(p.issue(OpcodeClass::ComplexAlu, 0, 12), 12);
    }

    #[test]
    fn branch_and_assert_use_simple_alus() {
        let mut p = FuPool::new(1, 1, 1);
        assert_eq!(p.issue(OpcodeClass::Branch, 0, 1), 0);
        assert_eq!(p.issue(OpcodeClass::Assert, 0, 1), 1);
        assert_eq!(p.issue(OpcodeClass::SimpleAlu, 0, 1), 2);
    }

    #[test]
    #[should_panic(expected = "unit counts")]
    fn zero_units_rejected() {
        FuPool::new(0, 1, 1);
    }
}
