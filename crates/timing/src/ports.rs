//! Issue-port core model: named ports, per-opcode bindings, and measured
//! latency/occupancy tables.
//!
//! The paper evaluates rePLay on a generic 2003-era functional-unit mix
//! (Table 2: 6 simple ALUs, 2 complex, 3 FPUs, 4 load/store units, every
//! ALU op single-cycle). Modern cores instead schedule uops onto a small
//! number of *issue ports* with heterogeneous capabilities, and per-opcode
//! latencies measured by uops.info (Abel & Reineke, "uops.info:
//! Characterizing Latency, Throughput, and Port Usage of Instructions on
//! Intel Microarchitectures") differ markedly from the uniform model.
//! This module adds a second, selectable core model in that style so the
//! paper's profit ranking can be re-evaluated on a port-constrained
//! machine.
//!
//! The port layout follows the Nehalem shape used by Sniper's
//! `DynamicMicroOpNehalem` (see SNIPPETS.md): three ALU-capable ports
//! ([`Port::P0`], [`Port::P1`], [`Port::P5`]) with asymmetric extras
//! (shift/divide on P0, multiply/LEA on P1, branches on P5) and a unified
//! memory port bank [`Port::P23`] with two address-generation pipes.
//! Latencies are seeded from uops.info Nehalem measurements, embedded as a
//! zero-dependency static table ([`PortTable::uops_info`]); deviations are
//! documented per opcode and in `DESIGN.md` ("Core models").
//!
//! Occupancy models reciprocal throughput: an occupancy of 1 means the
//! port accepts a new uop of that kind every cycle; occupancy equal to
//! latency means the operation is not pipelined and blocks its port for
//! the full duration (the divider).
//!
//! Both core models sit behind the [`PortScheduler`] trait so the timing
//! pipeline dispatches identically through either; the generic
//! ([`GenericScheduler`]) path reproduces the class-banked `FuPool`
//! computation bit-for-bit.

use crate::config::TimingConfig;
use crate::pool::FuPool;
use replay_uop::Opcode;
use std::fmt;

/// Which execution-core model schedules uops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreModel {
    /// The paper's Table 2 class-banked functional-unit pool with uniform
    /// single-cycle ALU latency (`mul`/`div` excepted).
    #[default]
    Generic,
    /// Named issue ports with per-opcode bindings and uops.info-seeded
    /// latencies (see [`PortTable`]).
    PortAccurate,
}

impl CoreModel {
    /// Short CLI/report label: `generic` or `port`.
    pub fn label(self) -> &'static str {
        match self {
            CoreModel::Generic => "generic",
            CoreModel::PortAccurate => "port",
        }
    }

    /// Parses a CLI label (case insensitive): `generic` or `port`.
    pub fn from_label(s: &str) -> Option<CoreModel> {
        match s.to_ascii_lowercase().as_str() {
            "generic" => Some(CoreModel::Generic),
            "port" => Some(CoreModel::PortAccurate),
            _ => None,
        }
    }
}

/// A named issue port of the port-accurate model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Port {
    /// ALU, shifts, and the (unpipelined) divider.
    P0,
    /// ALU, multiply, and LEA address arithmetic.
    P1,
    /// The memory port bank: loads, stores, and fences, with two
    /// address-generation pipes.
    P23,
    /// ALU and branch/assert resolution.
    P5,
}

impl Port {
    /// Every port, in canonical (tie-breaking) order.
    pub const ALL: [Port; 4] = [Port::P0, Port::P1, Port::P23, Port::P5];

    /// The port's lower-case label, as used in `timing.port.*` counters.
    pub fn label(self) -> &'static str {
        match self {
            Port::P0 => "p0",
            Port::P1 => "p1",
            Port::P23 => "p23",
            Port::P5 => "p5",
        }
    }

    /// Number of identical pipes behind the port (P23 models a load AGU
    /// and a store AGU as two interchangeable pipes).
    pub fn pipes(self) -> usize {
        match self {
            Port::P23 => 2,
            _ => 1,
        }
    }

    fn bit(self) -> u8 {
        match self {
            Port::P0 => 1 << 0,
            Port::P1 => 1 << 1,
            Port::P23 => 1 << 2,
            Port::P5 => 1 << 3,
        }
    }
}

/// A set of ports a uop may issue to (uops.info's port-usage notation:
/// `p015` means any of P0/P1/P5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortSet(u8);

impl PortSet {
    /// The empty set (binds nothing; rejected by validation).
    pub const NONE: PortSet = PortSet(0);
    /// Only P0.
    pub const P0: PortSet = PortSet(1 << 0);
    /// Only P1.
    pub const P1: PortSet = PortSet(1 << 1);
    /// Only the memory bank.
    pub const P23: PortSet = PortSet(1 << 2);
    /// Only P5.
    pub const P5: PortSet = PortSet(1 << 3);
    /// P0 or P1 (`p01`).
    pub const P01: PortSet = PortSet(1 | 2);
    /// P0 or P5 (`p05`).
    pub const P05: PortSet = PortSet(1 | 8);
    /// Any ALU port (`p015`).
    pub const P015: PortSet = PortSet(1 | 2 | 8);

    /// True if `port` is a member.
    pub fn contains(self, port: Port) -> bool {
        self.0 & port.bit() != 0
    }

    /// True if no port is a member.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of member ports.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

/// One opcode's scheduling contract in the port-accurate model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortBinding {
    /// Ports the uop may issue to (at least one; validated).
    pub ports: PortSet,
    /// Result latency in cycles (memory ops take the cache hierarchy's
    /// latency instead; this field then covers only address generation).
    pub latency: u64,
    /// Cycles the chosen port pipe stays busy (reciprocal throughput);
    /// equal to `latency` for unpipelined ops such as the divider.
    pub occupancy: u64,
}

/// Typed misconfiguration error for the port-accurate model: a bound
/// opcode whose table entry could never issue would otherwise starve
/// silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortConfigError {
    /// An opcode's binding names no port at all.
    UnboundOpcode(Opcode),
    /// An opcode's occupancy is zero (its port would never cycle).
    ZeroOccupancy(Opcode),
    /// An opcode's latency is zero (its result would precede its issue).
    ZeroLatency(Opcode),
}

impl fmt::Display for PortConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortConfigError::UnboundOpcode(op) => {
                write!(f, "opcode {} binds no issue port", op.mnemonic())
            }
            PortConfigError::ZeroOccupancy(op) => {
                write!(f, "opcode {} has zero port occupancy", op.mnemonic())
            }
            PortConfigError::ZeroLatency(op) => {
                write!(f, "opcode {} has zero latency", op.mnemonic())
            }
        }
    }
}

impl std::error::Error for PortConfigError {}

/// The per-opcode port/latency/occupancy table, indexed by [`Opcode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortTable {
    bindings: [PortBinding; Opcode::ALL.len()],
}

impl PortTable {
    /// The default table, seeded from uops.info Nehalem measurements
    /// (matching the Sniper port layout this model follows):
    ///
    /// * single-cycle integer ALU ops issue to any of `p015`;
    /// * LEA uses the address-arithmetic units on `p01`;
    /// * shifts are `p05`;
    /// * `IMUL r32` is 3 cycles, pipelined, on `p1`;
    /// * `DIV/IDIV r32` is 21 cycles, unpipelined, on `p0`;
    /// * loads/stores/fences use the two-pipe memory bank `p23`
    ///   (cache-hierarchy latency modeled separately);
    /// * branches resolve on `p5`; assert uops behave like (macro-fused)
    ///   compare-and-branch checks and also bind `p5`;
    /// * `Nop` nominally needs no execution port — it is bound to `p015`
    ///   at 1 cycle so every opcode in the table is schedulable (documented
    ///   deviation).
    pub fn uops_info() -> PortTable {
        let mut bindings = [PortBinding {
            ports: PortSet::NONE,
            latency: 1,
            occupancy: 1,
        }; Opcode::ALL.len()];
        for op in Opcode::ALL {
            let b = match op {
                Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Not
                | Opcode::Neg
                | Opcode::Mov
                | Opcode::MovImm
                | Opcode::Cmp
                | Opcode::Test
                | Opcode::Nop => (PortSet::P015, 1, 1),
                Opcode::Lea => (PortSet::P01, 1, 1),
                Opcode::Shl | Opcode::Shr | Opcode::Sar => (PortSet::P05, 1, 1),
                Opcode::Mul => (PortSet::P1, 3, 1),
                // The divider is not pipelined: it blocks P0 for the full
                // latency.
                Opcode::Div | Opcode::Rem => (PortSet::P0, 21, 21),
                Opcode::Load | Opcode::Store | Opcode::Fence => (PortSet::P23, 1, 1),
                Opcode::Jmp | Opcode::JmpInd | Opcode::Br => (PortSet::P5, 1, 1),
                Opcode::Assert | Opcode::AssertCmp | Opcode::AssertTest => (PortSet::P5, 1, 1),
            };
            bindings[op as usize] = PortBinding {
                ports: b.0,
                latency: b.1,
                occupancy: b.2,
            };
        }
        PortTable { bindings }
    }

    /// The binding for an opcode.
    pub fn binding(&self, op: Opcode) -> PortBinding {
        self.bindings[op as usize]
    }

    /// Replaces an opcode's binding (for experiments and tests).
    pub fn set_binding(&mut self, op: Opcode, binding: PortBinding) {
        self.bindings[op as usize] = binding;
    }

    /// Checks every opcode binds at least one port with sane latency and
    /// occupancy, returning the first violation as a typed error.
    pub fn validate(&self) -> Result<(), PortConfigError> {
        for op in Opcode::ALL {
            let b = self.binding(op);
            if b.ports.is_empty() {
                return Err(PortConfigError::UnboundOpcode(op));
            }
            if b.occupancy == 0 {
                return Err(PortConfigError::ZeroOccupancy(op));
            }
            if b.latency == 0 {
                return Err(PortConfigError::ZeroLatency(op));
            }
        }
        Ok(())
    }
}

impl Default for PortTable {
    fn default() -> PortTable {
        PortTable::uops_info()
    }
}

/// Scheduling interface the timing pipeline dispatches uop execution
/// through: both core models implement it, so selecting a model never
/// changes the pipeline's control flow.
pub trait PortScheduler: fmt::Debug {
    /// Reserves an execution resource for `op` at or after `earliest`;
    /// returns the actual issue cycle.
    fn issue(&mut self, op: Opcode, earliest: u64) -> u64;

    /// Result latency of a non-memory op (memory ops take the cache
    /// hierarchy's latency, modeled by the pipeline).
    fn op_latency(&self, op: Opcode) -> u64;

    /// Records per-port pressure counters (`timing.port.*`). The generic
    /// model has no ports and records nothing, keeping its reports
    /// byte-identical with or without the port model compiled in.
    fn observe_into(&self, obs: &mut replay_obs::Obs);
}

/// The paper's class-banked scheduler: wraps [`FuPool`] and reproduces
/// the uniform-latency computation exactly.
#[derive(Debug)]
pub struct GenericScheduler {
    pool: FuPool,
    mul_latency: u64,
    div_latency: u64,
}

impl GenericScheduler {
    /// Builds the Table 2 unit pool from a configuration.
    pub fn new(cfg: &TimingConfig) -> GenericScheduler {
        GenericScheduler {
            pool: FuPool::new(cfg.simple_alus, cfg.complex_alus, cfg.ldst_units),
            mul_latency: cfg.mul_latency,
            div_latency: cfg.div_latency,
        }
    }
}

impl PortScheduler for GenericScheduler {
    fn issue(&mut self, op: Opcode, earliest: u64) -> u64 {
        let occupancy = match op {
            // The divider is not pipelined.
            Opcode::Div | Opcode::Rem => self.div_latency,
            _ => 1,
        };
        self.pool.issue(op.class(), earliest, occupancy)
    }

    fn op_latency(&self, op: Opcode) -> u64 {
        match op {
            Opcode::Mul => self.mul_latency,
            Opcode::Div | Opcode::Rem => self.div_latency,
            _ => 1,
        }
    }

    fn observe_into(&self, _obs: &mut replay_obs::Obs) {}
}

/// The port-accurate scheduler: per-pipe busy times over the named ports,
/// choosing the least-busy bound pipe (first in canonical order on ties,
/// mirroring `FuPool`'s deterministic `min_by_key`).
#[derive(Debug)]
pub struct PortAccurateScheduler {
    table: PortTable,
    /// Busy-until time per pipe, indexed `[port][pipe]`.
    busy: [Vec<u64>; Port::ALL.len()],
    issued: [u64; Port::ALL.len()],
    contention: [u64; Port::ALL.len()],
}

impl PortAccurateScheduler {
    /// Builds a scheduler over a validated table.
    ///
    /// # Errors
    ///
    /// Returns the table's [`PortConfigError`] if any opcode could never
    /// issue (the typed alternative to silent starvation).
    pub fn new(table: PortTable) -> Result<PortAccurateScheduler, PortConfigError> {
        table.validate()?;
        Ok(PortAccurateScheduler {
            table,
            busy: [
                vec![0; Port::P0.pipes()],
                vec![0; Port::P1.pipes()],
                vec![0; Port::P23.pipes()],
                vec![0; Port::P5.pipes()],
            ],
            issued: [0; Port::ALL.len()],
            contention: [0; Port::ALL.len()],
        })
    }

    /// Uops issued per port, in [`Port::ALL`] order.
    pub fn issued(&self) -> [u64; Port::ALL.len()] {
        self.issued
    }
}

impl PortScheduler for PortAccurateScheduler {
    fn issue(&mut self, op: Opcode, earliest: u64) -> u64 {
        let b = self.table.binding(op);
        let mut best: Option<(usize, usize, u64)> = None;
        for (pi, port) in Port::ALL.into_iter().enumerate() {
            if !b.ports.contains(port) {
                continue;
            }
            for (qi, &busy) in self.busy[pi].iter().enumerate() {
                if best.is_none_or(|(_, _, t)| busy < t) {
                    best = Some((pi, qi, busy));
                }
            }
        }
        let (pi, qi, busy) = best.expect("validated binding names at least one port");
        let start = earliest.max(busy);
        self.busy[pi][qi] = start + b.occupancy.max(1);
        self.issued[pi] += 1;
        self.contention[pi] += start - earliest;
        start
    }

    fn op_latency(&self, op: Opcode) -> u64 {
        self.table.binding(op).latency
    }

    fn observe_into(&self, obs: &mut replay_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        for (pi, port) in Port::ALL.into_iter().enumerate() {
            let label = port.label();
            obs.counter(&format!("timing.port.{label}.issued"), self.issued[pi]);
            obs.counter(
                &format!("timing.port.{label}.contention_cycles"),
                self.contention[pi],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_validates_and_binds_every_opcode() {
        let t = PortTable::uops_info();
        assert_eq!(t.validate(), Ok(()));
        for op in Opcode::ALL {
            let b = t.binding(op);
            assert!(!b.ports.is_empty(), "{op:?} bound");
            assert!(b.occupancy >= 1 && b.latency >= 1, "{op:?} sane");
        }
    }

    #[test]
    fn zero_port_binding_is_a_typed_error() {
        let mut t = PortTable::uops_info();
        t.set_binding(
            Opcode::Mul,
            PortBinding {
                ports: PortSet::NONE,
                latency: 3,
                occupancy: 1,
            },
        );
        assert_eq!(
            t.validate(),
            Err(PortConfigError::UnboundOpcode(Opcode::Mul))
        );
        assert!(PortAccurateScheduler::new(t).is_err());
    }

    #[test]
    fn divider_blocks_its_port_for_full_latency() {
        let t = PortTable::uops_info();
        let occ = t.binding(Opcode::Div).occupancy;
        assert_eq!(occ, t.binding(Opcode::Div).latency, "unpipelined");
        let mut s = PortAccurateScheduler::new(t).unwrap();
        assert_eq!(s.issue(Opcode::Div, 0), 0);
        assert_eq!(s.issue(Opcode::Div, 0), occ, "second div waits");
        // P0 is busy, but an ALU op can still take P1 or P5.
        assert_eq!(s.issue(Opcode::Add, 0), 0);
    }

    #[test]
    fn memory_bank_has_two_pipes() {
        let mut s = PortAccurateScheduler::new(PortTable::uops_info()).unwrap();
        assert_eq!(s.issue(Opcode::Load, 0), 0);
        assert_eq!(s.issue(Opcode::Store, 0), 0, "second pipe");
        assert_eq!(s.issue(Opcode::Load, 0), 1, "both pipes busy");
    }

    #[test]
    fn alu_ops_spread_across_three_ports() {
        let mut s = PortAccurateScheduler::new(PortTable::uops_info()).unwrap();
        assert_eq!(s.issue(Opcode::Add, 0), 0);
        assert_eq!(s.issue(Opcode::Add, 0), 0);
        assert_eq!(s.issue(Opcode::Add, 0), 0);
        assert_eq!(s.issue(Opcode::Add, 0), 1, "p015 all busy");
        let issued = s.issued();
        assert_eq!(issued.iter().sum::<u64>(), 4);
    }

    #[test]
    fn branches_contend_on_p5() {
        let mut s = PortAccurateScheduler::new(PortTable::uops_info()).unwrap();
        assert_eq!(s.issue(Opcode::Br, 0), 0);
        assert_eq!(s.issue(Opcode::Assert, 0), 1, "asserts share P5");
    }

    #[test]
    fn generic_scheduler_matches_fu_pool_computation() {
        let cfg = TimingConfig::paper_default();
        let mut s = GenericScheduler::new(&cfg);
        let mut pool = FuPool::new(cfg.simple_alus, cfg.complex_alus, cfg.ldst_units);
        for (op, earliest) in [
            (Opcode::Add, 0),
            (Opcode::Div, 2),
            (Opcode::Div, 2),
            (Opcode::Load, 5),
            (Opcode::Mul, 1),
            (Opcode::Br, 9),
        ] {
            let occ = match op {
                Opcode::Div | Opcode::Rem => cfg.div_latency,
                _ => 1,
            };
            assert_eq!(s.issue(op, earliest), pool.issue(op.class(), earliest, occ));
        }
        assert_eq!(s.op_latency(Opcode::Mul), cfg.mul_latency);
        assert_eq!(s.op_latency(Opcode::Div), cfg.div_latency);
        assert_eq!(s.op_latency(Opcode::Add), 1);
    }

    #[test]
    fn core_model_labels_round_trip() {
        for m in [CoreModel::Generic, CoreModel::PortAccurate] {
            assert_eq!(CoreModel::from_label(m.label()), Some(m));
        }
        assert_eq!(CoreModel::from_label("PORT"), Some(CoreModel::PortAccurate));
        assert_eq!(CoreModel::from_label("fast"), None);
    }
}
