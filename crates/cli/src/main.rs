//! `replay` — command-line driver for the rePLay reproduction.
//!
//! ```text
//! replay workloads                          list the synthetic workload suite
//! replay gen <workload> -o FILE [-n N] [-s SEG]
//!                                           generate a trace file
//! replay sim <workload|FILE> [-c CFG] [-n N] [--verify]
//!                                           simulate one configuration
//! replay compare <workload|FILE> [-n N]     all four configurations side by side
//! replay report <workload|FILE> --json FILE emit the structured profile artifact
//! replay frames <workload> [-n N] [--top K] inspect the most-optimized frames
//! replay check [--cases N] [--seed S] [--passes all|pipeline|<list>]
//!                                           property-check the optimizer
//! ```

use replay_core::{optimize, AliasProfile, OptConfig};
use replay_frame::{ConstructorConfig, FrameConstructor, RetireEvent};
use replay_sim::experiment::{self, SimSpec};
use replay_sim::{parallel, simulate, ConfigKind, Injector, SimConfig, TraceStore};
use replay_timing::CycleBin;
use replay_trace::{read_trace, workloads, write_trace, Trace};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("bench-parallel") => cmd_bench_parallel(&args[1..]),
        Some("frames") => cmd_frames(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try `replay help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "replay — Dynamic Optimization of Micro-Operations (HPCA 2003) reproduction

USAGE:
  replay workloads                           list the synthetic workload suite
  replay gen <workload> -o FILE [-n N] [-s SEG]
                                             generate and save a trace
  replay sim <workload|FILE> [-c CFG] [-n N] [--verify] [--profile [--timings]]
                                             simulate one configuration
                                             (CFG: IC, TC, RP, RPO; default RPO)
  replay compare <workload|FILE> [-n N] [--jobs N] [--profile [--timings]]
                                             all four configurations side by side
  replay report <workload|FILE> [--json FILE] [-n N] [--jobs N] [--timings]
                                             run all four configurations and emit the
                                             structured observability profile
                                             (replay-report/v1 JSON; stdout or FILE)
  replay bench-parallel [-n N] [--jobs N] [--out FILE]
                                             time the serial vs parallel experiment
                                             engine and record BENCH_parallel.json
  replay frames <workload> [-n N] [--top K]  show the most-optimized frames
  replay info <workload|FILE> [-n N]         trace statistics (mix, branches, footprint)
  replay disasm <workload> [-s SEG]          disassemble a workload's program image
  replay check [--cases N] [--seed S] [--passes all|pipeline|<CSV>]
               [--corpus DIR] [--entries K] [--jobs N] [--no-shrink]
                                             differential property check of the
                                             optimizer; replays tests/corpus/ and
                                             persists shrunk counterexamples there
  replay check --faults [--cases N] [--seed S]
                                             plant known bug species and verify
                                             the oracle detects every kind

Parallelism: --jobs/--threads N (or the REPLAY_JOBS environment variable)
sets the worker count; the default is the machine's available parallelism
and 1 forces the legacy serial path. Results are identical at any count.

Persistent store: sim, compare, report, and bench-parallel cache
synthesized traces and optimized frames under .replay-cache/ so warm
reruns skip that work with bit-identical results. --cache-dir DIR (or
REPLAY_CACHE_DIR) moves the cache; --no-store (or REPLAY_NO_STORE)
disables it. Corrupt cache artifacts are evicted and regenerated."
    );
}

/// One option in a subcommand's vocabulary: every accepted spelling
/// (without leading dashes; one-character names are `-x` short options)
/// and whether the option consumes a value.
struct FlagSpec {
    names: &'static [&'static str],
    takes_value: bool,
}

const fn flag(names: &'static [&'static str], takes_value: bool) -> FlagSpec {
    FlagSpec { names, takes_value }
}

/// The shared `--jobs N` / `--threads N` / `-j N` worker-count option.
const JOBS_FLAG: FlagSpec = flag(&["jobs", "threads", "j"], true);

/// The shared persistent-store options: `--cache-dir DIR` overrides the
/// default `.replay-cache` artifact directory, `--no-store` disables the
/// store for this invocation.
const CACHE_DIR_FLAG: FlagSpec = flag(&["cache-dir"], true);
const NO_STORE_FLAG: FlagSpec = flag(&["no-store"], false);

/// A subcommand's full option vocabulary. [`Opts::parse`] rejects any
/// option outside it, naming the valid set — a misspelled flag (`--case`
/// for `--cases`) is an error, never a silent no-op.
struct CmdSpec {
    name: &'static str,
    flags: &'static [FlagSpec],
}

impl CmdSpec {
    fn lookup(&self, name: &str) -> Option<&FlagSpec> {
        self.flags.iter().find(|f| f.names.contains(&name))
    }

    /// Human-readable rendering of every accepted option, for error
    /// messages: `--jobs/--threads/-j N, --profile, ...`.
    fn valid_set(&self) -> String {
        if self.flags.is_empty() {
            return "none".into();
        }
        self.flags
            .iter()
            .map(|f| {
                let spellings: Vec<String> = f
                    .names
                    .iter()
                    .map(|n| {
                        if n.len() == 1 {
                            format!("-{n}")
                        } else {
                            format!("--{n}")
                        }
                    })
                    .collect();
                let mut s = spellings.join("/");
                if f.takes_value {
                    s.push_str(" VALUE");
                }
                s
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn unknown(&self, given: &str) -> String {
        format!(
            "unknown option {given:?} for `replay {}` (valid options: {})",
            self.name,
            self.valid_set()
        )
    }
}

const SPEC_WORKLOADS: CmdSpec = CmdSpec {
    name: "workloads",
    flags: &[],
};
const SPEC_GEN: CmdSpec = CmdSpec {
    name: "gen",
    flags: &[
        flag(&["o", "out"], true),
        flag(&["n"], true),
        flag(&["s"], true),
    ],
};
const SPEC_SIM: CmdSpec = CmdSpec {
    name: "sim",
    flags: &[
        flag(&["c"], true),
        flag(&["n"], true),
        flag(&["verify"], false),
        flag(&["profile"], false),
        flag(&["timings"], false),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_COMPARE: CmdSpec = CmdSpec {
    name: "compare",
    flags: &[
        flag(&["n"], true),
        JOBS_FLAG,
        flag(&["profile"], false),
        flag(&["timings"], false),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_BENCH_PARALLEL: CmdSpec = CmdSpec {
    name: "bench-parallel",
    flags: &[
        flag(&["n"], true),
        JOBS_FLAG,
        flag(&["out", "o"], true),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_FRAMES: CmdSpec = CmdSpec {
    name: "frames",
    flags: &[flag(&["n"], true), flag(&["top", "t"], true)],
};
const SPEC_CHECK: CmdSpec = CmdSpec {
    name: "check",
    flags: &[
        flag(&["cases"], true),
        flag(&["seed"], true),
        flag(&["passes"], true),
        flag(&["corpus"], true),
        flag(&["entries"], true),
        JOBS_FLAG,
        flag(&["faults"], false),
        flag(&["no-shrink"], false),
    ],
};
const SPEC_INFO: CmdSpec = CmdSpec {
    name: "info",
    flags: &[flag(&["n"], true)],
};
const SPEC_DISASM: CmdSpec = CmdSpec {
    name: "disasm",
    flags: &[flag(&["s"], true)],
};
const SPEC_REPORT: CmdSpec = CmdSpec {
    name: "report",
    flags: &[
        flag(&["n"], true),
        JOBS_FLAG,
        flag(&["json"], true),
        flag(&["timings"], false),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};

/// Parsed options: positionals plus a flag lookup, validated against a
/// [`CmdSpec`].
#[derive(Debug)]
struct Opts<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Opts<'a> {
    fn parse(args: &'a [String], spec: &CmdSpec) -> Result<Opts<'a>, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                let (key, inline) = match name.split_once('=') {
                    Some((k, v)) => (k, Some(v)),
                    None => (name, None),
                };
                let f = spec.lookup(key).ok_or_else(|| spec.unknown(a))?;
                // Store under the canonical (first) spelling so lookups by
                // canonical name see every alias.
                let canon = f.names[0];
                if f.takes_value {
                    match inline {
                        Some(v) => {
                            flags.push((canon, Some(v)));
                            i += 1;
                        }
                        None => {
                            let v = args
                                .get(i + 1)
                                .map(String::as_str)
                                .ok_or_else(|| format!("option --{key} requires a value"))?;
                            flags.push((canon, Some(v)));
                            i += 2;
                        }
                    }
                } else {
                    if inline.is_some() {
                        return Err(format!("option --{key} does not take a value"));
                    }
                    flags.push((canon, None));
                    i += 1;
                }
            } else if let Some(name) = a.strip_prefix('-').filter(|n| !n.is_empty()) {
                let f = spec.lookup(name).ok_or_else(|| spec.unknown(a))?;
                let canon = f.names[0];
                if f.takes_value {
                    let v = args
                        .get(i + 1)
                        .map(String::as_str)
                        .ok_or_else(|| format!("option -{name} requires a value"))?;
                    flags.push((canon, Some(v)));
                    i += 2;
                } else {
                    flags.push((canon, None));
                    i += 1;
                }
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn count(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("bad -{name} value {v:?}")),
            None => Ok(default),
        }
    }

    /// The worker count: `--jobs`/`--threads`/`-j`, else `REPLAY_JOBS`,
    /// else the machine's available parallelism. `1` forces the legacy
    /// serial path (no worker threads at all).
    fn jobs(&self) -> Result<usize, String> {
        for name in ["jobs", "threads", "j"] {
            if let Some(v) = self.get(name) {
                return match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(n),
                    _ => Err(format!(
                        "bad --{name} value {v:?} (want a positive integer)"
                    )),
                };
            }
        }
        Ok(parallel::job_count())
    }
}

fn cmd_workloads(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_WORKLOADS)?;
    if !opts.positional.is_empty() {
        return Err("usage: replay workloads".into());
    }
    println!(
        "{:10} {:8} {:>9} {:>14}   (Table 1 of the paper)",
        "name", "suite", "segments", "default x86"
    );
    for w in workloads::all() {
        println!(
            "{:10} {:8} {:>9} {:>14}",
            w.name,
            match w.suite {
                replay_trace::Suite::SpecInt => "SPECint",
                replay_trace::Suite::Desktop => "desktop",
            },
            w.segments,
            w.segments * w.default_segment_len,
        );
    }
    Ok(())
}

/// Applies the persistent-store options before the first trace or frame
/// lookup. `--no-store` disables the artifact store for this invocation;
/// otherwise the cache root is `--cache-dir DIR`, then the
/// `REPLAY_CACHE_DIR` environment variable, then `.replay-cache`. The
/// `REPLAY_NO_STORE` environment variable always wins (it is honored
/// inside [`replay_store::Store::configure`]).
fn configure_store(opts: &Opts) {
    if opts.has("no-store") {
        replay_store::Store::configure(None);
        return;
    }
    let dir = opts
        .get("cache-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| std::env::var_os(replay_store::CACHE_DIR_ENV).map(std::path::PathBuf::from))
        .unwrap_or_else(|| std::path::PathBuf::from(".replay-cache"));
    replay_store::Store::configure(Some(dir));
}

/// Loads a trace by workload name or from a trace file. Workload traces
/// come from the process-wide [`TraceStore`], so repeated requests (e.g.
/// the four configurations of `compare`) synthesize the trace only once.
fn load_trace(source: &str, n: usize, segment: usize) -> Result<Arc<Trace>, String> {
    if let Some(w) = workloads::by_name(source) {
        if segment >= w.segments {
            return Err(format!("{source} has {} segments", w.segments));
        }
        return Ok(TraceStore::global().segment(&w, segment, n));
    }
    let file =
        std::fs::File::open(source).map_err(|e| format!("no workload or file {source:?}: {e}"))?;
    read_trace(std::io::BufReader::new(file))
        .map(Arc::new)
        .map_err(|e| format!("reading {source:?}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_GEN)?;
    let [name] = opts.positional[..] else {
        return Err("usage: replay gen <workload> -o FILE [-n N] [-s SEG]".into());
    };
    let out = opts.get("o").ok_or("missing -o FILE")?;
    let n = opts.count("n", 100_000)?;
    let seg = opts.count("s", 0)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = w.segment_trace(seg, n);
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out:?}: {e}"))?;
    write_trace(std::io::BufWriter::new(file), &trace).map_err(|e| e.to_string())?;
    println!(
        "wrote {} records of `{}` segment {seg} to {out}",
        trace.len(),
        name
    );
    Ok(())
}

fn config_by_label(label: &str) -> Result<ConfigKind, String> {
    ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| format!("unknown configuration {label:?} (IC, TC, RP, RPO)"))
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_SIM)?;
    let [source] = opts.positional[..] else {
        return Err("usage: replay sim <workload|FILE> [-c CFG] [-n N] [--verify]".into());
    };
    let n = opts.count("n", 30_000)?;
    let kind = config_by_label(opts.get("c").unwrap_or("RPO"))?;
    configure_store(&opts);
    let trace = load_trace(source, n, 0)?;
    let mut cfg = SimConfig::new(kind);
    if !opts.has("verify") {
        cfg = cfg.without_verify();
    }
    let r = simulate(&trace, &cfg);
    println!("trace `{}`: {} x86 instructions", trace.name, trace.len());
    println!(
        "configuration {kind}: {} cycles, IPC {:.3}",
        r.cycles,
        r.ipc()
    );
    if kind.uses_frames() {
        println!(
            "coverage {:.1}%  |  uops removed {:.1}%  loads removed {:.1}%  |  aborts {}",
            r.coverage * 100.0,
            r.uop_removal() * 100.0,
            r.load_removal() * 100.0,
            r.assert_events
        );
        if r.verify.checked > 0 {
            println!(
                "verifier: {} checked, {} failed",
                r.verify.checked, r.verify.failed
            );
        }
    }
    println!("cycle breakdown:");
    for bin in CycleBin::ALL {
        println!(
            "  {:8} {:10} ({:5.1}%)",
            bin.label(),
            r.bins.get(bin),
            r.bins.fraction(bin) * 100.0
        );
    }
    if opts.has("profile") {
        println!("profile [{}]:", kind.label());
        print!("{}", r.profile.render_table(opts.has("timings")));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_COMPARE)?;
    let [source] = opts.positional[..] else {
        return Err("usage: replay compare <workload|FILE> [-n N] [--jobs N]".into());
    };
    let n = opts.count("n", 30_000)?;
    let jobs = opts.jobs()?;
    configure_store(&opts);
    let trace = load_trace(source, n, 0)?;
    println!(
        "trace `{}`: {} x86 instructions ({} worker{})",
        trace.name,
        trace.len(),
        jobs,
        if jobs == 1 { "" } else { "s" }
    );
    // One spec per configuration over the shared trace: the four
    // simulations run concurrently and print in ConfigKind::ALL order.
    let specs: Vec<SimSpec> = ConfigKind::ALL
        .into_iter()
        .map(|kind| SimSpec {
            name: trace.name.clone(),
            traces: vec![Arc::clone(&trace)],
            cfg: SimConfig::new(kind).without_verify(),
        })
        .collect();
    let results = experiment::run_specs(&specs, jobs);
    println!(
        "{:5} {:>9} {:>7} {:>7} {:>9} {:>8}",
        "cfg", "cycles", "IPC", "cov%", "removed%", "aborts"
    );
    let mut rp = 0.0;
    let mut rpo = 0.0;
    for (kind, r) in ConfigKind::ALL.into_iter().zip(&results) {
        println!(
            "{:5} {:>9} {:>7.3} {:>7.1} {:>9.1} {:>8}",
            kind.label(),
            r.cycles,
            r.ipc(),
            r.coverage * 100.0,
            r.uop_removal() * 100.0,
            r.assert_events
        );
        match kind {
            ConfigKind::Replay => rp = r.ipc(),
            ConfigKind::ReplayOpt => rpo = r.ipc(),
            _ => {}
        }
    }
    if rp > 0.0 {
        println!("optimization gain: {:+.1}%", (rpo / rp - 1.0) * 100.0);
    }
    if opts.has("profile") {
        // The profile section is deterministic: counters only (timings are
        // wall clock and stay hidden unless --timings), merged shards in
        // submission order — byte-identical at any --jobs count.
        let timings = opts.has("timings");
        for (kind, r) in ConfigKind::ALL.into_iter().zip(&results) {
            println!("profile [{}]:", kind.label());
            print!("{}", r.profile.render_table(timings));
        }
    }
    Ok(())
}

/// Builds the merged cross-configuration profile for a `report` run: the
/// per-spec profiles are submitted to a [`replay_obs::Registry`] in
/// submission (spec) order and merged deterministically. Cache-layer
/// counters live in the separate `store` section ([`store_profile`]) —
/// they describe *this process's* cache luck, not the simulated machines,
/// and folding them in here would break the cold-vs-warm byte identity of
/// `combined`.
fn combined_profile(results: &[replay_sim::SimResult]) -> replay_obs::Profile {
    let registry = replay_obs::Registry::new();
    for (i, r) in results.iter().enumerate() {
        registry.submit(i, r.profile.clone());
    }
    registry.finish()
}

/// The cache-effectiveness profile of this process: in-memory trace
/// memoization (`tracestore.*`) and, when the persistent store is
/// enabled, on-disk artifact traffic (`store.*`). Deliberately segregated
/// from the simulation profiles — these counters differ between cold and
/// warm runs by design.
fn store_profile() -> replay_obs::Profile {
    let mut obs = replay_obs::Obs::collecting();
    TraceStore::global().observe_into(&mut obs);
    if let Some(store) = replay_store::Store::global() {
        store.observe_into(&mut obs);
    }
    obs.into_profile()
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_REPORT)?;
    let [source] = opts.positional[..] else {
        return Err(
            "usage: replay report <workload|FILE> [--json FILE] [-n N] [--jobs N] [--timings]"
                .into(),
        );
    };
    let n = opts.count("n", 30_000)?;
    let jobs = opts.jobs()?;
    let timings = opts.has("timings");
    configure_store(&opts);
    let trace = load_trace(source, n, 0)?;
    let specs: Vec<SimSpec> = ConfigKind::ALL
        .into_iter()
        .map(|kind| SimSpec {
            name: trace.name.clone(),
            traces: vec![Arc::clone(&trace)],
            cfg: SimConfig::new(kind).without_verify(),
        })
        .collect();
    let results = experiment::run_specs(&specs, jobs);

    // Stable machine-readable schema: per-configuration profiles plus the
    // deterministic cross-configuration merge. Worker count and wall time
    // are intentionally absent (unless --timings) so the artifact is
    // byte-identical run to run at any --jobs.
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"replay-report/v1\",\n");
    json.push_str(&format!("  \"workload\": \"{}\",\n", trace.name));
    json.push_str(&format!("  \"scale\": {},\n", trace.len()));
    json.push_str("  \"configs\": {\n");
    for (i, (kind, r)) in ConfigKind::ALL.into_iter().zip(&results).enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    \"{}\": {}",
            kind.label(),
            r.profile.to_json(timings)
        ));
    }
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"combined\": {},\n",
        combined_profile(&results).to_json(timings)
    ));
    // The one intentionally non-reproducible section: cache effectiveness
    // for this process (zero hits on a cold run, nonzero on a warm one).
    // Consumers comparing reports should strip it first.
    json.push_str(&format!(
        "  \"store\": {}\n}}\n",
        store_profile().to_json(timings)
    ));

    match opts.get("json") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path:?}: {e}"))?;
            println!(
                "trace `{}`: {} x86 instructions ({} worker{})",
                trace.name,
                trace.len(),
                jobs,
                if jobs == 1 { "" } else { "s" }
            );
            for (kind, r) in ConfigKind::ALL.into_iter().zip(&results) {
                println!(
                    "  {:4} dyn uops removed {:>9} / {:>9}",
                    kind.label(),
                    r.dyn_uops_removed,
                    r.dyn_uops_total
                );
            }
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// Formats an `f64` as a JSON number (Rust's shortest-roundtrip `{:?}`
/// output is valid JSON for every finite value).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn cmd_bench_parallel(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_BENCH_PARALLEL)?;
    if !opts.positional.is_empty() {
        return Err("usage: replay bench-parallel [-n N] [--jobs N] [--out FILE]".into());
    }
    let scale = opts.count("n", 6_000)?;
    let jobs = opts.jobs()?;
    configure_store(&opts);
    let out = opts
        .get("out")
        .or_else(|| opts.get("o"))
        .unwrap_or("BENCH_parallel.json");

    // Warm the trace store first so both timed runs measure simulation,
    // not trace synthesis.
    let ws = workloads::all();
    let store = TraceStore::global();
    let t = Instant::now();
    store.prefetch(&ws, scale, jobs);
    let synth_secs = t.elapsed().as_secs_f64();
    let generations = store.generations();
    let disk_hits = store.disk_hits();
    let segments: usize = ws.iter().map(|w| w.segments).sum();
    println!(
        "prepared {segments} trace segments (scale {scale}) in {synth_secs:.2}s on {jobs} workers \
         ({generations} synthesized, {disk_hits} from the persistent store)"
    );

    println!("running the Figure 6 grid (14 workloads x 4 configurations) serially...");
    let t = Instant::now();
    let serial = experiment::ipc_comparison_jobs(scale, 1);
    let serial_secs = t.elapsed().as_secs_f64();
    println!("  serial:   {serial_secs:.2}s");

    println!("running the same grid on {jobs} workers...");
    let t = Instant::now();
    let par = experiment::ipc_comparison_jobs(scale, jobs);
    let par_secs = t.elapsed().as_secs_f64();
    println!("  parallel: {par_secs:.2}s");

    if store.generations() != generations {
        return Err(format!(
            "trace store regenerated traces during simulation ({} -> {})",
            generations,
            store.generations()
        ));
    }
    if generations + disk_hits != segments as u64 {
        return Err(format!(
            "trace accounting broken: {generations} synthesized + {disk_hits} disk hits \
             != {segments} segments"
        ));
    }

    // Every row must be bit-identical between the serial and parallel runs.
    let identical = serial.len() == par.len()
        && serial.iter().zip(&par).all(|(a, b)| {
            a.name == b.name
                && a.ipc
                    .iter()
                    .zip(&b.ipc)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
                && a.rpo_gain_pct.to_bits() == b.rpo_gain_pct.to_bits()
                && a.coverage.to_bits() == b.coverage.to_bits()
                && a.assert_cycle_frac.to_bits() == b.assert_cycle_frac.to_bits()
        });
    if !identical {
        return Err("parallel results diverge from the serial reference".into());
    }
    let speedup = if par_secs > 0.0 {
        serial_secs / par_secs
    } else {
        0.0
    };
    println!("speedup: {speedup:.2}x, outputs bit-identical");

    let mut rows = String::new();
    for (i, r) in serial.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let ipc: Vec<String> = r.ipc.iter().map(|&v| json_f64(v)).collect();
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"ipc\": [{}], \"rpo_gain_pct\": {}, \"coverage\": {}}}",
            r.name,
            ipc.join(", "),
            json_f64(r.rpo_gain_pct),
            json_f64(r.coverage)
        ));
    }
    let cores = parallel::available_jobs();
    let json = format!(
        "{{\n  \"experiment\": \"fig6 ipc grid, serial vs parallel\",\n  \"scale\": {scale},\n  \"jobs\": {jobs},\n  \"available_cores\": {cores},\n  \"trace_segments\": {segments},\n  \"trace_generations\": {generations},\n  \"trace_disk_hits\": {disk_hits},\n  \"trace_synthesis_secs\": {},\n  \"serial_secs\": {},\n  \"parallel_secs\": {},\n  \"speedup\": {},\n  \"identical_output\": {identical},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        json_f64(synth_secs),
        json_f64(serial_secs),
        json_f64(par_secs),
        json_f64(speedup)
    );
    std::fs::write(out, json).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    use replay_check::{probe_fault_sensitivity, run_check, to_text, CheckConfig, PassSelection};

    let opts = Opts::parse(args, &SPEC_CHECK)?;
    if !opts.positional.is_empty() {
        return Err("usage: replay check [--cases N] [--seed S] [--passes P] [--faults]".into());
    }
    let cases = match opts.get("cases") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --cases value {v:?}"))?,
        None => 1000,
    };
    let seed = match opts.get("seed") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --seed value {v:?}"))?,
        None => 42,
    };

    if opts.has("faults") {
        // Sensitivity mode: plant every known bug species into optimized
        // frames and require that the differential oracle catches each one.
        let attempts = cases.min(10_000) as u32;
        println!(
            "planting faults into optimized frames ({attempts} attempts per kind, seed {seed})"
        );
        println!("{:14} {:>9} {:>9}", "fault", "injected", "detected");
        let mut missed = Vec::new();
        for probe in probe_fault_sensitivity(seed, attempts) {
            println!(
                "{:14} {:>9} {:>9}",
                probe.kind.name(),
                probe.injected,
                probe.detected
            );
            if probe.injected == 0 || probe.detected == 0 {
                missed.push(probe.kind.name());
            }
        }
        return if missed.is_empty() {
            println!("every fault kind detected");
            Ok(())
        } else {
            Err(format!(
                "oracle blind to fault kinds: {}",
                missed.join(", ")
            ))
        };
    }

    let passes = PassSelection::parse(opts.get("passes").unwrap_or("all"))?;
    let corpus = std::path::PathBuf::from(opts.get("corpus").unwrap_or("tests/corpus"));
    let entries_per_case = opts.count("entries", 4)? as u32;
    let jobs = opts.jobs()?;

    // Replay the persisted corpus first: previously-found bugs must stay
    // fixed before we go looking for new ones.
    match replay_check::replay_dir(&corpus) {
        Ok(0) => println!("corpus {}: empty", corpus.display()),
        Ok(n) => println!("corpus {}: {n} case(s) replayed clean", corpus.display()),
        Err((path, e)) => return Err(format!("corpus case {}: {e}", path.display())),
    }

    let cfg = CheckConfig {
        cases,
        seed,
        passes,
        jobs,
        entries_per_case: entries_per_case.max(1),
        shrink: !opts.has("no-shrink"),
    };
    let t = Instant::now();
    let report = run_check(&cfg);
    println!(
        "{report} (seed {seed}, {jobs} worker{}, {:.2}s)",
        if jobs == 1 { "" } else { "s" },
        t.elapsed().as_secs_f64()
    );
    if report.ok() {
        return Ok(());
    }
    // Persist every shrunk counterexample so the corpus replay above
    // guards the bug from now on.
    std::fs::create_dir_all(&corpus).map_err(|e| format!("creating {}: {e}", corpus.display()))?;
    for cex in &report.failures {
        let path = corpus.join(format!(
            "seed{}-case{}.case",
            cex.case.seed, cex.case.case_index
        ));
        std::fs::write(&path, to_text(&cex.case))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  {} ({} uops): {}",
            path.display(),
            cex.case.frame.uop_count(),
            cex.error
        );
    }
    Err(format!(
        "{} counterexample(s) written to {}",
        report.failures.len(),
        corpus.display()
    ))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_INFO)?;
    let [source] = opts.positional[..] else {
        return Err("usage: replay info <workload|FILE> [-n N]".into());
    };
    let n = opts.count("n", 30_000)?;
    let trace = load_trace(source, n, 0)?;
    println!("trace `{}`", trace.name);
    print!("{}", replay_trace::TraceStats::of(&trace).report());
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_DISASM)?;
    let [name] = opts.positional[..] else {
        return Err("usage: replay disasm <workload> [-s SEG]".into());
    };
    let seg = opts.count("s", 0)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let (program, _) = w.segment_program(seg);
    for line in program.disasm() {
        match line {
            Ok(l) => println!("{:#010x}: {}", l.addr, l.inst),
            Err(e) => return Err(format!("disassembly failed: {e}")),
        }
    }
    Ok(())
}

fn cmd_frames(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_FRAMES)?;
    let [name] = opts.positional[..] else {
        return Err("usage: replay frames <workload> [-n N] [--top K]".into());
    };
    let n = opts.count("n", 20_000)?;
    let top = opts.count("top", 3)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = w.segment_trace(0, n);
    let mut injector = Injector::new();
    injector.preseed(&trace);
    let mut constructor = FrameConstructor::new(ConstructorConfig::default());
    let mut best: Vec<(u64, replay_frame::Frame)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for r in trace.records() {
        let flow = injector.flow(r);
        let ev = RetireEvent {
            addr: r.addr,
            uops: &flow,
            next_pc: r.next_pc,
            fallthrough: r.fallthrough(),
        };
        if let Some(frame) = constructor.retire(&ev) {
            if seen.insert(frame.start_addr) {
                let (_, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
                best.push((stats.removed_uops(), frame));
            }
        }
        injector.apply(r);
    }
    best.sort_by_key(|(removed, _)| std::cmp::Reverse(*removed));
    println!(
        "{} distinct frames constructed from {} instructions of `{}`",
        best.len(),
        trace.len(),
        name
    );
    for (removed, frame) in best.into_iter().take(top) {
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        println!(
            "\n=== frame at {:#x}: {} x86 instrs, {} -> {} uops ({removed} removed, {} loads) ===",
            frame.start_addr,
            frame.x86_count(),
            stats.uops_before,
            stats.uops_after,
            stats.removed_loads()
        );
        println!("--- before ---\n{}", frame.listing());
        println!("--- after ---\n{}", opt.listing());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn known_flags_parse() {
        let args = argv(&["gzip", "-n", "4000", "--jobs=8", "--profile"]);
        let opts = Opts::parse(&args, &SPEC_COMPARE).unwrap();
        assert_eq!(opts.positional, vec!["gzip"]);
        assert_eq!(opts.count("n", 0).unwrap(), 4000);
        assert_eq!(opts.jobs().unwrap(), 8);
        assert!(opts.has("profile"));
        assert!(!opts.has("timings"));
    }

    #[test]
    fn aliases_normalize_to_canonical() {
        let args = argv(&["--threads", "3"]);
        let opts = Opts::parse(&args, &SPEC_COMPARE).unwrap();
        assert_eq!(opts.jobs().unwrap(), 3);
        let args = argv(&["x", "--out", "f.bin"]);
        let opts = Opts::parse(&args, &SPEC_GEN).unwrap();
        assert_eq!(opts.get("o"), Some("f.bin"));
        let args = argv(&["w", "-t", "5"]);
        let opts = Opts::parse(&args, &SPEC_FRAMES).unwrap();
        assert_eq!(opts.count("top", 3).unwrap(), 5);
    }

    #[test]
    fn misspelled_flag_rejected_naming_valid_set() {
        // The motivating bug: `--case` for `--cases` used to be silently
        // ignored, running the default 1000 cases instead.
        let args = argv(&["--case", "5"]);
        let err = Opts::parse(&args, &SPEC_CHECK).unwrap_err();
        assert!(err.contains("unknown option \"--case\""), "{err}");
        assert!(err.contains("replay check"), "{err}");
        assert!(err.contains("--cases"), "names the valid set: {err}");
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn unknown_short_flag_rejected() {
        let args = argv(&["gzip", "-x", "1"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("unknown option \"-x\""), "{err}");
    }

    #[test]
    fn every_command_rejects_unknown_options() {
        for spec in [
            &SPEC_WORKLOADS,
            &SPEC_GEN,
            &SPEC_SIM,
            &SPEC_COMPARE,
            &SPEC_BENCH_PARALLEL,
            &SPEC_FRAMES,
            &SPEC_CHECK,
            &SPEC_INFO,
            &SPEC_DISASM,
            &SPEC_REPORT,
        ] {
            let args = argv(&["--definitely-not-a-flag"]);
            let err = Opts::parse(&args, spec).unwrap_err();
            assert!(
                err.contains(&format!("replay {}", spec.name)),
                "{}: {err}",
                spec.name
            );
        }
    }

    #[test]
    fn value_flag_requires_a_value() {
        let args = argv(&["gzip", "--jobs"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("--jobs requires a value"), "{err}");
        // Previously `compare gzip -n` at end of args silently fell back to
        // the default scale; now it is an error.
        let args = argv(&["gzip", "-n"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("-n requires a value"), "{err}");
    }

    #[test]
    fn boolean_flag_rejects_inline_value() {
        let args = argv(&["gzip", "--profile=yes"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("--profile does not take a value"), "{err}");
    }
}
