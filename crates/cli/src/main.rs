//! `replay` — command-line driver for the rePLay reproduction.
//!
//! ```text
//! replay workloads                          list the synthetic workload suite
//! replay gen <workload> -o FILE [-n N] [-s SEG]
//!                                           generate a trace file
//! replay sim <workload|FILE> [-c CFG] [-n N] [--verify]
//!                                           simulate one configuration
//! replay compare <workload|FILE> [-n N]     all four configurations side by side
//! replay report <workload|FILE> --json FILE emit the structured profile artifact
//! replay serve [--addr ADDR] [-j N]         TCP simulation service (batching,
//!                                           backpressure, graceful drain)
//! replay submit <workload|FILE> [--addr ADDR]
//!                                           send a request to a running server
//! replay frames <workload> [-n N] [--top K] inspect the most-optimized frames
//! replay check [--cases N] [--seed S] [--passes all|pipeline|<list>]
//!                                           property-check the optimizer
//! replay clone --from-profile SRC [-n N]    synthesize a workload matching a
//!                                           target statistical profile
//! replay sweep [--corner NAME] [--out FILE] stress-sweep generator corners,
//!                                           record where the RPO gain collapses
//! ```

use replay_core::{optimize, AliasProfile, OptConfig};
use replay_frame::{ConstructorConfig, FrameConstructor, RetireEvent};
use replay_sim::experiment::{self, SimSpec};
use replay_sim::{parallel, simulate, ConfigKind, CoreModel, Injector, SimConfig, TraceStore};
use replay_timing::CycleBin;
use replay_trace::{read_trace, workloads, write_trace, Trace};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("bench-parallel") => cmd_bench_parallel(&args[1..]),
        Some("bench-hotpath") => cmd_bench_hotpath(&args[1..]),
        Some("frames") => cmd_frames(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("clone") => cmd_clone(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try `replay help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Word-wraps `text` to `width` columns, prefixing every line with
/// `indent`. A `[--flag VALUE]` bracket group counts as one word so a
/// flag is never split from its metavar across lines. Purely cosmetic —
/// the content comes from [`CmdSpec`].
fn wrap(text: &str, indent: &str, width: usize) -> String {
    let mut words: Vec<String> = Vec::new();
    for piece in text.split_whitespace() {
        match words.last_mut() {
            // Re-join an unbalanced bracket group with its continuation.
            Some(prev) if prev.matches('[').count() > prev.matches(']').count() => {
                prev.push(' ');
                prev.push_str(piece);
            }
            _ => words.push(piece.to_string()),
        }
    }
    let mut out = String::new();
    let mut col = 0;
    for word in words {
        if col == 0 {
            out.push_str(indent);
            col = indent.len();
        } else if col + 1 + word.len() > width {
            out.push('\n');
            out.push_str(indent);
            out.push_str("  ");
            col = indent.len() + 2;
        } else {
            out.push(' ');
            col += 1;
        }
        out.push_str(&word);
        col += word.len();
    }
    out
}

fn print_usage() {
    println!("replay — Dynamic Optimization of Micro-Operations (HPCA 2003) reproduction\n");
    println!("USAGE:");
    // Generated from the same CmdSpecs the parser validates against:
    // the synopsis line is CmdSpec::usage() minus the "usage: " prefix.
    for spec in ALL_SPECS {
        let synopsis = spec.usage();
        let synopsis = synopsis.strip_prefix("usage: ").unwrap_or(&synopsis);
        println!("{}", wrap(synopsis, "  ", 78));
        println!("{}", wrap(spec.about, "      ", 78));
    }
    println!(
        "
Parallelism: --jobs/--threads N (or the REPLAY_JOBS environment variable)
sets the worker count; the default is the machine's available parallelism
and 1 forces the legacy serial path. Results are identical at any count.

Persistent store: sim, compare, report, and bench-parallel cache
synthesized traces and optimized frames under .replay-cache/ so warm
reruns skip that work with bit-identical results. --cache-dir DIR (or
REPLAY_CACHE_DIR) moves the cache; --no-store (or REPLAY_NO_STORE)
disables it. Corrupt cache artifacts are evicted and regenerated."
    );
}

/// One option in a subcommand's vocabulary: every accepted spelling
/// (without leading dashes; one-character names are `-x` short options)
/// and the metavar its value is rendered as in usage text (`FILE`, `N`;
/// empty for boolean flags that consume no value).
struct FlagSpec {
    names: &'static [&'static str],
    value: &'static str,
    required: bool,
}

impl FlagSpec {
    fn takes_value(&self) -> bool {
        !self.value.is_empty()
    }

    /// The canonical spelling with dashes: `-n` or `--jobs`.
    fn dashed(&self) -> String {
        let canon = self.names[0];
        if canon.len() == 1 {
            format!("-{canon}")
        } else {
            format!("--{canon}")
        }
    }
}

const fn flag(names: &'static [&'static str], value: &'static str) -> FlagSpec {
    FlagSpec {
        names,
        value,
        required: false,
    }
}

const fn req_flag(names: &'static [&'static str], value: &'static str) -> FlagSpec {
    FlagSpec {
        names,
        value,
        required: true,
    }
}

/// The shared `--jobs N` / `--threads N` / `-j N` worker-count option.
const JOBS_FLAG: FlagSpec = flag(&["jobs", "threads", "j"], "N");

/// The shared persistent-store options: `--cache-dir DIR` overrides the
/// default `.replay-cache` artifact directory, `--no-store` disables the
/// store for this invocation.
const CACHE_DIR_FLAG: FlagSpec = flag(&["cache-dir"], "DIR");
const NO_STORE_FLAG: FlagSpec = flag(&["no-store"], "");

/// The shared `--core-model MODEL` execution-core selector (`generic` or
/// `port`; see `replay-timing`'s `ports` module).
const CORE_MODEL_FLAG: FlagSpec = flag(&["core-model"], "MODEL");

/// A subcommand's full option vocabulary. [`Opts::parse`] rejects any
/// option outside it, naming the valid set — a misspelled flag (`--case`
/// for `--cases`) is an error, never a silent no-op. Usage text (both
/// the `help` screen and per-command usage errors) is *generated* from
/// this spec by [`CmdSpec::usage`], so the vocabulary the parser accepts
/// and the vocabulary the help advertises cannot diverge.
struct CmdSpec {
    name: &'static str,
    /// Positional arguments, rendered verbatim: `"<workload|FILE>"`.
    positional: &'static str,
    /// One-line description for the `help` screen.
    about: &'static str,
    flags: &'static [FlagSpec],
}

impl CmdSpec {
    fn lookup(&self, name: &str) -> Option<&FlagSpec> {
        self.flags.iter().find(|f| f.names.contains(&name))
    }

    /// The full synopsis, generated from the spec: every flag appears
    /// under its canonical spelling with its metavar, optional ones in
    /// brackets. This string *is* the usage error — there is no
    /// hand-maintained copy to drift out of date.
    fn usage(&self) -> String {
        let mut s = format!("usage: replay {}", self.name);
        if !self.positional.is_empty() {
            s.push(' ');
            s.push_str(self.positional);
        }
        for f in self.flags {
            s.push(' ');
            if !f.required {
                s.push('[');
            }
            s.push_str(&f.dashed());
            if f.takes_value() {
                s.push(' ');
                s.push_str(f.value);
            }
            if !f.required {
                s.push(']');
            }
        }
        s
    }

    /// Human-readable rendering of every accepted option, for error
    /// messages: `--jobs/--threads/-j N, --profile, ...`.
    fn valid_set(&self) -> String {
        if self.flags.is_empty() {
            return "none".into();
        }
        self.flags
            .iter()
            .map(|f| {
                let spellings: Vec<String> = f
                    .names
                    .iter()
                    .map(|n| {
                        if n.len() == 1 {
                            format!("-{n}")
                        } else {
                            format!("--{n}")
                        }
                    })
                    .collect();
                let mut s = spellings.join("/");
                if f.takes_value() {
                    s.push(' ');
                    s.push_str(f.value);
                }
                s
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn unknown(&self, given: &str) -> String {
        format!(
            "unknown option {given:?} for `replay {}` (valid options: {})",
            self.name,
            self.valid_set()
        )
    }
}

const SPEC_WORKLOADS: CmdSpec = CmdSpec {
    name: "workloads",
    positional: "",
    about: "list the synthetic workload suite (Table 1 of the paper)",
    flags: &[],
};
const SPEC_GEN: CmdSpec = CmdSpec {
    name: "gen",
    positional: "<workload>",
    about: "generate and save a trace file",
    flags: &[
        req_flag(&["o", "out"], "FILE"),
        flag(&["n"], "N"),
        flag(&["s"], "SEG"),
    ],
};
const SPEC_SIM: CmdSpec = CmdSpec {
    name: "sim",
    positional: "<workload|FILE>",
    about: "simulate one configuration (CFG: IC, TC, RP, RPO; default RPO)",
    flags: &[
        flag(&["c"], "CFG"),
        flag(&["n"], "N"),
        CORE_MODEL_FLAG,
        flag(&["verify"], ""),
        flag(&["profile"], ""),
        flag(&["timings"], ""),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_COMPARE: CmdSpec = CmdSpec {
    name: "compare",
    positional: "<workload|FILE>",
    about: "all four configurations side by side",
    flags: &[
        flag(&["n"], "N"),
        JOBS_FLAG,
        CORE_MODEL_FLAG,
        flag(&["profile"], ""),
        flag(&["timings"], ""),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_BENCH_PARALLEL: CmdSpec = CmdSpec {
    name: "bench-parallel",
    positional: "",
    about: "time the serial vs parallel experiment engine, record a JSON artifact",
    flags: &[
        flag(&["n"], "N"),
        JOBS_FLAG,
        flag(&["out", "o"], "FILE"),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_BENCH_HOTPATH: CmdSpec = CmdSpec {
    name: "bench-hotpath",
    positional: "",
    about: "benchmark the hot-path execution engine: fig6-grid job scaling, \
            cold vs warm serial passes, interpreted vs specialized frame \
            execution; records a JSON artifact",
    flags: &[
        flag(&["n"], "N"),
        flag(&["out", "o"], "FILE"),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_FRAMES: CmdSpec = CmdSpec {
    name: "frames",
    positional: "<workload>",
    about: "show the most-optimized frames",
    flags: &[flag(&["n"], "N"), flag(&["top", "t"], "K")],
};
const SPEC_CHECK: CmdSpec = CmdSpec {
    name: "check",
    positional: "",
    about: "differential property check of the optimizer; replays tests/corpus/ \
            and persists shrunk counterexamples there (--faults: plant known \
            bug species and verify the oracle detects every kind)",
    flags: &[
        flag(&["cases"], "N"),
        flag(&["seed"], "S"),
        flag(&["passes"], "all|pipeline|CSV"),
        flag(&["corpus"], "DIR"),
        flag(&["entries"], "K"),
        JOBS_FLAG,
        flag(&["faults"], ""),
        flag(&["no-shrink"], ""),
    ],
};
const SPEC_INFO: CmdSpec = CmdSpec {
    name: "info",
    positional: "<workload|FILE>",
    about: "trace statistics (mix, branches, footprint)",
    flags: &[flag(&["n"], "N")],
};
const SPEC_DISASM: CmdSpec = CmdSpec {
    name: "disasm",
    positional: "<workload>",
    about: "disassemble a workload's program image",
    flags: &[flag(&["s"], "SEG")],
};
const SPEC_REPORT: CmdSpec = CmdSpec {
    name: "report",
    positional: "<workload|FILE>",
    about: "run all four configurations and emit the structured observability \
            profile (replay-report/v3 JSON; stdout or FILE)",
    flags: &[
        flag(&["n"], "N"),
        JOBS_FLAG,
        CORE_MODEL_FLAG,
        flag(&["json"], "FILE"),
        flag(&["timings"], ""),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};

const SPEC_SERVE: CmdSpec = CmdSpec {
    name: "serve",
    positional: "",
    about: "run the TCP simulation service: batches submitted requests onto the \
            shared worker pool and answers each with the replay-report/v3 bytes \
            a local `replay report --json` would produce",
    flags: &[
        flag(&["addr"], "ADDR"),
        flag(&["peers"], "ADDR,ADDR,..."),
        flag(&["cluster-addr"], "ADDR"),
        flag(&["cluster-proxy"], ""),
        flag(&["push-fanout"], "N"),
        JOBS_FLAG,
        flag(&["event-loop"], "on|off"),
        flag(&["max-conns"], "N"),
        flag(&["conn-queue"], "N"),
        flag(&["work-queue"], "N"),
        flag(&["batch-max"], "N"),
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_SUBMIT: CmdSpec = CmdSpec {
    name: "submit",
    positional: "<workload|FILE>",
    about: "submit a simulation request to a running `replay serve` and write \
            the report it returns (retries overload with seeded backoff)",
    flags: &[
        flag(&["addr"], "ADDR[,ADDR...]"),
        flag(&["n"], "N"),
        flag(&["json"], "FILE"),
        flag(&["timings"], ""),
        flag(&["retries"], "K"),
        flag(&["seed"], "S"),
        flag(&["deadline-ms"], "MS"),
    ],
};

const SPEC_CLONE: CmdSpec = CmdSpec {
    name: "clone",
    positional: "",
    about: "synthesize a workload whose measured profile matches a target drawn \
            from SRC (a workload name or trace file) within tolerance — \
            deterministic seeded hill-climb, bit-identical at any --jobs \
            (emits a replay-clone/v1 JSON artifact with --json)",
    flags: &[
        req_flag(&["from-profile"], "SRC"),
        flag(&["n"], "N"),
        flag(&["seed"], "S"),
        flag(&["tol"], "T"),
        flag(&["iters"], "K"),
        flag(&["candidates"], "K"),
        flag(&["o", "out"], "FILE"),
        flag(&["json"], "FILE"),
        JOBS_FLAG,
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};
const SPEC_SWEEP: CmdSpec = CmdSpec {
    name: "sweep",
    positional: "",
    about: "walk generator parameters toward pathological corners (CORNER: \
            assert-storm, alias-heavy, predictor-hostile, all) and record \
            where the RPO IPC gain collapses below the floor (replay-clone/v1 \
            JSON artifact with --out)",
    flags: &[
        flag(&["corner"], "CORNER"),
        flag(&["steps"], "K"),
        flag(&["n"], "N"),
        flag(&["seed"], "S"),
        flag(&["gain-floor"], "PCT"),
        flag(&["out", "o"], "FILE"),
        JOBS_FLAG,
        CACHE_DIR_FLAG,
        NO_STORE_FLAG,
    ],
};

/// Every subcommand, in `help` display order. The help screen iterates
/// this list, so adding a command here is what publishes it.
const ALL_SPECS: &[&CmdSpec] = &[
    &SPEC_WORKLOADS,
    &SPEC_GEN,
    &SPEC_SIM,
    &SPEC_COMPARE,
    &SPEC_REPORT,
    &SPEC_SERVE,
    &SPEC_SUBMIT,
    &SPEC_BENCH_PARALLEL,
    &SPEC_BENCH_HOTPATH,
    &SPEC_FRAMES,
    &SPEC_INFO,
    &SPEC_DISASM,
    &SPEC_CHECK,
    &SPEC_CLONE,
    &SPEC_SWEEP,
];

/// Parsed options: positionals plus a flag lookup, validated against a
/// [`CmdSpec`].
#[derive(Debug)]
struct Opts<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Opts<'a> {
    fn parse(args: &'a [String], spec: &CmdSpec) -> Result<Opts<'a>, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                let (key, inline) = match name.split_once('=') {
                    Some((k, v)) => (k, Some(v)),
                    None => (name, None),
                };
                let f = spec.lookup(key).ok_or_else(|| spec.unknown(a))?;
                // Store under the canonical (first) spelling so lookups by
                // canonical name see every alias.
                let canon = f.names[0];
                if f.takes_value() {
                    match inline {
                        Some(v) => {
                            flags.push((canon, Some(v)));
                            i += 1;
                        }
                        None => {
                            let v = args
                                .get(i + 1)
                                .map(String::as_str)
                                .ok_or_else(|| format!("option --{key} requires a value"))?;
                            flags.push((canon, Some(v)));
                            i += 2;
                        }
                    }
                } else {
                    if inline.is_some() {
                        return Err(format!("option --{key} does not take a value"));
                    }
                    flags.push((canon, None));
                    i += 1;
                }
            } else if let Some(name) = a.strip_prefix('-').filter(|n| !n.is_empty()) {
                let f = spec.lookup(name).ok_or_else(|| spec.unknown(a))?;
                let canon = f.names[0];
                if f.takes_value() {
                    let v = args
                        .get(i + 1)
                        .map(String::as_str)
                        .ok_or_else(|| format!("option -{name} requires a value"))?;
                    flags.push((canon, Some(v)));
                    i += 2;
                } else {
                    flags.push((canon, None));
                    i += 1;
                }
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn count(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("bad -{name} value {v:?}")),
            None => Ok(default),
        }
    }

    /// The worker count: `--jobs`/`--threads`/`-j`, else `REPLAY_JOBS`,
    /// else the machine's available parallelism. `1` forces the legacy
    /// serial path (no worker threads at all).
    fn jobs(&self) -> Result<usize, String> {
        for name in ["jobs", "threads", "j"] {
            if let Some(v) = self.get(name) {
                return match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(n),
                    _ => Err(format!(
                        "bad --{name} value {v:?} (want a positive integer)"
                    )),
                };
            }
        }
        Ok(parallel::job_count())
    }
}

fn cmd_workloads(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_WORKLOADS)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_WORKLOADS.usage());
    }
    println!(
        "{:10} {:8} {:>9} {:>14}   (Table 1 of the paper)",
        "name", "suite", "segments", "default x86"
    );
    for w in workloads::all() {
        println!(
            "{:10} {:8} {:>9} {:>14}",
            w.name,
            match w.suite {
                replay_trace::Suite::SpecInt => "SPECint",
                replay_trace::Suite::Desktop => "desktop",
            },
            w.segments,
            w.segments * w.default_segment_len,
        );
    }
    Ok(())
}

/// Applies the persistent-store options before the first trace or frame
/// lookup. `--no-store` disables the artifact store for this invocation;
/// otherwise the cache root is `--cache-dir DIR`, then the
/// `REPLAY_CACHE_DIR` environment variable, then `.replay-cache`. The
/// `REPLAY_NO_STORE` environment variable always wins (it is honored
/// inside [`replay_store::Store::configure`]).
fn configure_store(opts: &Opts) {
    if opts.has("no-store") {
        replay_store::Store::configure(None);
        return;
    }
    let dir = opts
        .get("cache-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| std::env::var_os(replay_store::CACHE_DIR_ENV).map(std::path::PathBuf::from))
        .unwrap_or_else(|| std::path::PathBuf::from(".replay-cache"));
    replay_store::Store::configure(Some(dir));
}

/// Splits a comma-separated `host:port` list, trimming whitespace and
/// dropping empty entries (`a:1,,b:2` and `a:1, b:2` both work).
fn parse_addr_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Loads a trace by workload name or from a trace file. Workload traces
/// come from the process-wide [`TraceStore`], so repeated requests (e.g.
/// the four configurations of `compare`) synthesize the trace only once.
fn load_trace(source: &str, n: usize, segment: usize) -> Result<Arc<Trace>, String> {
    if let Some(w) = workloads::by_name(source) {
        if segment >= w.segments {
            return Err(format!("{source} has {} segments", w.segments));
        }
        return Ok(TraceStore::global().segment(&w, segment, n));
    }
    let file =
        std::fs::File::open(source).map_err(|e| format!("no workload or file {source:?}: {e}"))?;
    read_trace(std::io::BufReader::new(file))
        .map(Arc::new)
        .map_err(|e| format!("reading {source:?}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_GEN)?;
    let [name] = opts.positional[..] else {
        return Err(SPEC_GEN.usage());
    };
    let out = opts
        .get("o")
        .ok_or_else(|| format!("missing -o FILE ({})", SPEC_GEN.usage()))?;
    let n = opts.count("n", 100_000)?;
    let seg = opts.count("s", 0)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = w.segment_trace(seg, n);
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out:?}: {e}"))?;
    write_trace(std::io::BufWriter::new(file), &trace).map_err(|e| e.to_string())?;
    println!(
        "wrote {} records of `{}` segment {seg} to {out}",
        trace.len(),
        name
    );
    Ok(())
}

fn config_by_label(label: &str) -> Result<ConfigKind, String> {
    ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| format!("unknown configuration {label:?} (IC, TC, RP, RPO)"))
}

/// Resolves the shared `--core-model` flag: absent means the generic
/// (class-banked) model, matching every pre-flag invocation byte for byte.
fn core_model_opt(opts: &Opts) -> Result<CoreModel, String> {
    match opts.get("core-model") {
        None => Ok(CoreModel::Generic),
        Some(label) => CoreModel::from_label(label)
            .ok_or_else(|| format!("unknown core model {label:?} (generic, port)")),
    }
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_SIM)?;
    let [source] = opts.positional[..] else {
        return Err(SPEC_SIM.usage());
    };
    let n = opts.count("n", 30_000)?;
    let kind = config_by_label(opts.get("c").unwrap_or("RPO"))?;
    let model = core_model_opt(&opts)?;
    configure_store(&opts);
    let trace = load_trace(source, n, 0)?;
    let mut cfg = SimConfig::new(kind).with_core_model(model);
    if !opts.has("verify") {
        cfg = cfg.without_verify();
    }
    let r = simulate(&trace, &cfg);
    println!("trace `{}`: {} x86 instructions", trace.name, trace.len());
    println!(
        "configuration {kind} ({} core): {} cycles, IPC {:.3}",
        model.label(),
        r.cycles,
        r.ipc()
    );
    if kind.uses_frames() {
        println!(
            "coverage {:.1}%  |  uops removed {:.1}%  loads removed {:.1}%  |  aborts {}",
            r.coverage * 100.0,
            r.uop_removal() * 100.0,
            r.load_removal() * 100.0,
            r.assert_events
        );
        if r.verify.checked > 0 {
            println!(
                "verifier: {} checked, {} failed",
                r.verify.checked, r.verify.failed
            );
        }
    }
    println!("cycle breakdown:");
    for bin in CycleBin::ALL {
        println!(
            "  {:8} {:10} ({:5.1}%)",
            bin.label(),
            r.bins.get(bin),
            r.bins.fraction(bin) * 100.0
        );
    }
    if opts.has("profile") {
        println!("profile [{}]:", kind.label());
        print!("{}", r.profile.render_table(opts.has("timings")));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_COMPARE)?;
    let [source] = opts.positional[..] else {
        return Err(SPEC_COMPARE.usage());
    };
    let n = opts.count("n", 30_000)?;
    let jobs = opts.jobs()?;
    let model = core_model_opt(&opts)?;
    configure_store(&opts);
    let trace = load_trace(source, n, 0)?;
    println!(
        "trace `{}`: {} x86 instructions ({} worker{}, {} core)",
        trace.name,
        trace.len(),
        jobs,
        if jobs == 1 { "" } else { "s" },
        model.label()
    );
    // One spec per configuration over the shared trace: the four
    // simulations run concurrently and print in ConfigKind::ALL order.
    let specs: Vec<SimSpec> = ConfigKind::ALL
        .into_iter()
        .map(|kind| SimSpec {
            name: trace.name.clone(),
            traces: vec![Arc::clone(&trace)],
            cfg: SimConfig::new(kind).without_verify().with_core_model(model),
        })
        .collect();
    let results = experiment::run_specs(&specs, jobs);
    println!(
        "{:5} {:>9} {:>7} {:>7} {:>9} {:>8}",
        "cfg", "cycles", "IPC", "cov%", "removed%", "aborts"
    );
    let mut rp = 0.0;
    let mut rpo = 0.0;
    for (kind, r) in ConfigKind::ALL.into_iter().zip(&results) {
        println!(
            "{:5} {:>9} {:>7.3} {:>7.1} {:>9.1} {:>8}",
            kind.label(),
            r.cycles,
            r.ipc(),
            r.coverage * 100.0,
            r.uop_removal() * 100.0,
            r.assert_events
        );
        match kind {
            ConfigKind::Replay => rp = r.ipc(),
            ConfigKind::ReplayOpt => rpo = r.ipc(),
            _ => {}
        }
    }
    if rp > 0.0 {
        println!("optimization gain: {:+.1}%", (rpo / rp - 1.0) * 100.0);
    }
    if opts.has("profile") {
        // The profile section is deterministic: counters only (timings are
        // wall clock and stay hidden unless --timings), merged shards in
        // submission order — byte-identical at any --jobs count.
        let timings = opts.has("timings");
        for (kind, r) in ConfigKind::ALL.into_iter().zip(&results) {
            println!("profile [{}]:", kind.label());
            print!("{}", r.profile.render_table(timings));
        }
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_REPORT)?;
    let [source] = opts.positional[..] else {
        return Err(SPEC_REPORT.usage());
    };
    let n = opts.count("n", 30_000)?;
    let jobs = opts.jobs()?;
    let timings = opts.has("timings");
    let model = core_model_opt(&opts)?;
    configure_store(&opts);
    let trace = load_trace(source, n, 0)?;
    // The artifact renderer is shared with `replay serve` (replay-sim's
    // report module) — a served response is byte-identical to this local
    // run because both are this one code path.
    let (results, json) = replay_sim::report::run_report_model(&trace, jobs, timings, model);

    match opts.get("json") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path:?}: {e}"))?;
            println!(
                "trace `{}`: {} x86 instructions ({} worker{})",
                trace.name,
                trace.len(),
                jobs,
                if jobs == 1 { "" } else { "s" }
            );
            for (kind, r) in ConfigKind::ALL.into_iter().zip(&results) {
                println!(
                    "  {:4} dyn uops removed {:>9} / {:>9}",
                    kind.label(),
                    r.dyn_uops_removed,
                    r.dyn_uops_total
                );
            }
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_SERVE)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_SERVE.usage());
    }
    let addr = opts.get("addr").unwrap_or(replay_serve::DEFAULT_ADDR);
    let peers: Option<Vec<String>> = opts.get("peers").map(parse_addr_list);
    if matches!(&peers, Some(p) if p.is_empty()) {
        return Err("--peers needs at least one host:port".to_string());
    }
    // The address this node advertises on the ring — what peers dial and
    // what NotOwner redirects name. Defaults to the listen address, which
    // therefore must be concrete (no port 0) in cluster mode.
    let self_addr = opts.get("cluster-addr").unwrap_or(addr).to_string();
    if peers.is_some() && self_addr.ends_with(":0") {
        return Err(
            "cluster mode needs a concrete advertised address: pass --cluster-addr \
             HOST:PORT (or bind a fixed --addr)"
                .to_string(),
        );
    }
    // Cluster nodes sharing a working directory must not share one
    // artifact cache — replication tests would self-satisfy through the
    // common disk. Unless the operator pins a directory explicitly, each
    // node gets its own namespace under the default cache root.
    if peers.is_some()
        && !opts.has("no-store")
        && opts.get("cache-dir").is_none()
        && std::env::var_os(replay_store::CACHE_DIR_ENV).is_none()
    {
        let node: String = self_addr
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        replay_store::Store::configure(Some(std::path::PathBuf::from(format!(
            ".replay-cache/node-{node}"
        ))));
    } else {
        configure_store(&opts);
    }
    let mut cfg = replay_serve::ServerConfig {
        jobs: opts.jobs()?,
        ..replay_serve::ServerConfig::default()
    };
    if let Some(n) = opts.get("conn-queue") {
        cfg.conn_queue = n
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("bad --conn-queue value {n:?}"))?;
    }
    if let Some(n) = opts.get("work-queue") {
        cfg.work_queue = n
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("bad --work-queue value {n:?}"))?;
    }
    if let Some(n) = opts.get("batch-max") {
        cfg.batch_max = n
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("bad --batch-max value {n:?}"))?;
    }
    if let Some(v) = opts.get("event-loop") {
        cfg.event_loop = match v {
            "on" => {
                if !replay_serve::poll::supported() {
                    return Err("--event-loop on: readiness polling is not \
                                supported on this target"
                        .to_string());
                }
                true
            }
            "off" => false,
            other => return Err(format!("bad --event-loop value {other:?} (want on|off)")),
        };
    }
    if let Some(n) = opts.get("max-conns") {
        cfg.max_conns = n
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("bad --max-conns value {n:?}"))?;
    }
    replay_serve::signal::install();
    if cfg.event_loop {
        // Every held connection is a file descriptor; give the ceiling
        // headroom before the first accept rather than failing under load.
        let _ = replay_serve::poll::raise_nofile_limit(cfg.max_conns as u64 + 512);
    }
    let jobs = cfg.jobs;
    let front = if cfg.event_loop {
        "event-loop front"
    } else {
        "thread front"
    };
    let mut server =
        replay_serve::Server::bind(addr, cfg).map_err(|e| format!("binding {addr:?}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(peer_list) = peers {
        let mut ccfg = replay_serve::ClusterConfig::new(self_addr.clone(), peer_list);
        ccfg.proxy = opts.has("cluster-proxy");
        ccfg.push_fanout = opts.count("push-fanout", ccfg.push_fanout)?;
        let members = {
            // The ring dedups and adds self if absent; mirror that here
            // so the banner's member count is what the ring will use.
            let mut m: Vec<&str> = ccfg.peers.iter().map(String::as_str).collect();
            m.push(&self_addr);
            m.sort_unstable();
            m.dedup();
            m.len()
        };
        println!(
            "cluster mode: {self_addr} on a {members}-member ring ({} misses, fanout {})",
            if ccfg.proxy { "proxies" } else { "redirects" },
            ccfg.push_fanout,
        );
        server.configure_cluster(ccfg);
    }
    println!("replay-serve listening on {bound} ({jobs} workers, {front}; SIGTERM/ctrl-c drains)");
    let stats = server.run();
    println!("drained; serve metrics:");
    print!("{}", stats.profile.render_table(false));
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_SUBMIT)?;
    let [source] = opts.positional[..] else {
        return Err(SPEC_SUBMIT.usage());
    };
    let n = opts.count("n", 30_000)?;
    // A known workload name travels as a name (the server synthesizes the
    // trace through its warm TraceStore); anything else must be a trace
    // file, which travels inline.
    let req_source = if workloads::by_name(source).is_some() {
        replay_serve::Source::Workload(source.to_string())
    } else {
        let bytes = std::fs::read(source)
            .map_err(|e| format!("no workload or trace file {source:?}: {e}"))?;
        replay_serve::Source::TraceBytes(bytes)
    };
    let req = replay_serve::Request {
        source: req_source,
        scale: n as u64,
        timings: opts.has("timings"),
        deadline_ms: opts.count("deadline-ms", 0)? as u64,
        relayed: false,
    };
    let addr = opts
        .get("addr")
        .unwrap_or(replay_serve::DEFAULT_ADDR)
        .to_string();
    // `--addr a:1,b:2,c:3` enables ring-aware routing with failover: the
    // client dials the request key's owner first and rotates on connect
    // failure, Overloaded, or ShuttingDown.
    let addrs = parse_addr_list(&addr);
    if addrs.is_empty() {
        return Err("--addr needs at least one host:port".to_string());
    }
    let mut cfg = replay_serve::ClientConfig {
        addrs,
        ..replay_serve::ClientConfig::default()
    };
    cfg.retries = opts.count("retries", cfg.retries as usize)? as u32;
    cfg.seed = opts.count("seed", cfg.seed as usize)? as u64;
    let mut client = replay_serve::Client::new(cfg);
    let resp = client.submit(&req).map_err(|e| e.to_string())?;
    let body = String::from_utf8(resp.body)
        .map_err(|_| "server returned a non-UTF-8 report body".to_string())?;
    match opts.get("json") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("writing {path:?}: {e}"))?;
            println!("wrote {path} ({} bytes from {addr})", body.len());
        }
        None => print!("{body}"),
    }
    Ok(())
}

/// Formats an `f64` as a JSON number (Rust's shortest-roundtrip `{:?}`
/// output is valid JSON for every finite value).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn cmd_bench_parallel(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_BENCH_PARALLEL)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_BENCH_PARALLEL.usage());
    }
    let scale = opts.count("n", 6_000)?;
    let jobs = opts.jobs()?;
    configure_store(&opts);
    let out = opts
        .get("out")
        .or_else(|| opts.get("o"))
        .unwrap_or("BENCH_parallel.json");

    // Warm the trace store first so both timed runs measure simulation,
    // not trace synthesis.
    let ws = workloads::all();
    let store = TraceStore::global();
    let t = Instant::now();
    store.prefetch(&ws, scale, jobs);
    let synth_secs = t.elapsed().as_secs_f64();
    let generations = store.generations();
    let disk_hits = store.disk_hits();
    let segments: usize = ws.iter().map(|w| w.segments).sum();
    println!(
        "prepared {segments} trace segments (scale {scale}) in {synth_secs:.2}s on {jobs} workers \
         ({generations} synthesized, {disk_hits} from the persistent store)"
    );

    println!("running the Figure 6 grid (14 workloads x 4 configurations) serially...");
    let t = Instant::now();
    let serial = experiment::ipc_comparison_jobs(scale, 1);
    let serial_secs = t.elapsed().as_secs_f64();
    println!("  serial:   {serial_secs:.2}s");

    println!("running the same grid on {jobs} workers...");
    let t = Instant::now();
    let par = experiment::ipc_comparison_jobs(scale, jobs);
    let par_secs = t.elapsed().as_secs_f64();
    println!("  parallel: {par_secs:.2}s");

    if store.generations() != generations {
        return Err(format!(
            "trace store regenerated traces during simulation ({} -> {})",
            generations,
            store.generations()
        ));
    }
    if generations + disk_hits != segments as u64 {
        return Err(format!(
            "trace accounting broken: {generations} synthesized + {disk_hits} disk hits \
             != {segments} segments"
        ));
    }

    // Every row must be bit-identical between the serial and parallel runs.
    let identical = serial.len() == par.len()
        && serial.iter().zip(&par).all(|(a, b)| {
            a.name == b.name
                && a.ipc
                    .iter()
                    .zip(&b.ipc)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
                && a.rpo_gain_pct.to_bits() == b.rpo_gain_pct.to_bits()
                && a.coverage.to_bits() == b.coverage.to_bits()
                && a.assert_cycle_frac.to_bits() == b.assert_cycle_frac.to_bits()
        });
    if !identical {
        return Err("parallel results diverge from the serial reference".into());
    }
    let speedup = if par_secs > 0.0 {
        serial_secs / par_secs
    } else {
        0.0
    };
    println!("speedup: {speedup:.2}x, outputs bit-identical");
    let degraded = parallel::warn_if_degraded(jobs);

    let mut rows = String::new();
    for (i, r) in serial.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let ipc: Vec<String> = r.ipc.iter().map(|&v| json_f64(v)).collect();
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"ipc\": [{}], \"rpo_gain_pct\": {}, \"coverage\": {}}}",
            r.name,
            ipc.join(", "),
            json_f64(r.rpo_gain_pct),
            json_f64(r.coverage)
        ));
    }
    let cores = parallel::available_jobs();
    let json = format!(
        "{{\n  \"experiment\": \"fig6 ipc grid, serial vs parallel\",\n  \"scale\": {scale},\n  \"jobs\": {jobs},\n  \"available_cores\": {cores},\n  \"degraded\": {degraded},\n  \"trace_segments\": {segments},\n  \"trace_generations\": {generations},\n  \"trace_disk_hits\": {disk_hits},\n  \"trace_synthesis_secs\": {},\n  \"serial_secs\": {},\n  \"parallel_secs\": {},\n  \"speedup\": {},\n  \"identical_output\": {identical},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        json_f64(synth_secs),
        json_f64(serial_secs),
        json_f64(par_secs),
        json_f64(speedup)
    );
    std::fs::write(out, json).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Bit-identity check between two Figure 6 result sets (same fold
/// `bench-parallel` uses): every float must match to the bit.
fn ipc_rows_identical(a: &[experiment::IpcRow], b: &[experiment::IpcRow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.ipc
                    .iter()
                    .zip(&y.ipc)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
                && x.rpo_gain_pct.to_bits() == y.rpo_gain_pct.to_bits()
                && x.coverage.to_bits() == y.coverage.to_bits()
                && x.assert_cycle_frac.to_bits() == y.assert_cycle_frac.to_bits()
        })
}

fn cmd_bench_hotpath(args: &[String]) -> Result<(), String> {
    use replay_core::{probe_frame, ExecPlan, ExecScratch, PlanScratch, ProbeOutcome};

    let opts = Opts::parse(args, &SPEC_BENCH_HOTPATH)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_BENCH_HOTPATH.usage());
    }
    let scale = opts.count("n", 6_000)?;
    configure_store(&opts);
    let out = opts
        .get("out")
        .or_else(|| opts.get("o"))
        .unwrap_or("BENCH_hotpath.json");

    const JOB_POINTS: [usize; 4] = [1, 2, 4, 8];
    let max_jobs = JOB_POINTS[JOB_POINTS.len() - 1];
    let cores = parallel::available_jobs();
    let degraded = parallel::warn_if_degraded(max_jobs);

    // Warm the trace store so every timed section below measures
    // simulation, not trace synthesis.
    let ws = workloads::all();
    let store = TraceStore::global();
    let t = Instant::now();
    store.prefetch(&ws, scale, cores);
    let synth_secs = t.elapsed().as_secs_f64();
    println!("prepared traces (scale {scale}) in {synth_secs:.2}s");

    // Cold vs warm: two consecutive serial passes over the Figure 6 grid.
    // Frame caches and execution plans are rebuilt per run by design, so
    // "cold" is the first full pass after trace synthesis and "warm" the
    // steady-state repeat; the delta is this process's cache warm-up.
    println!("fig6 grid (14 workloads x 4 configurations), serial cold pass...");
    let t = Instant::now();
    let baseline = experiment::ipc_comparison_jobs(scale, 1);
    let cold_secs = t.elapsed().as_secs_f64();
    println!("  cold: {cold_secs:.2}s");
    println!("fig6 grid, serial warm pass...");
    let t = Instant::now();
    let warm_rows = experiment::ipc_comparison_jobs(scale, 1);
    let warm_secs = t.elapsed().as_secs_f64();
    println!("  warm: {warm_secs:.2}s");
    let mut identical = ipc_rows_identical(&baseline, &warm_rows);

    // Job-scaling curve over the same grid, each point checked
    // bit-identical against the serial baseline. The jobs=1 point reuses
    // the warm pass so every speedup is warm-vs-warm.
    let mut curve = String::new();
    for (i, &j) in JOB_POINTS.iter().enumerate() {
        let (secs, rows) = if j == 1 {
            (warm_secs, warm_rows.clone())
        } else {
            let t = Instant::now();
            let rows = experiment::ipc_comparison_jobs(scale, j);
            (t.elapsed().as_secs_f64(), rows)
        };
        identical &= ipc_rows_identical(&baseline, &rows);
        let speedup = if secs > 0.0 { warm_secs / secs } else { 0.0 };
        let point_degraded = parallel::degraded(j);
        println!(
            "  jobs={j}: {secs:.2}s ({speedup:.2}x vs serial){}",
            if point_degraded { " [degraded]" } else { "" }
        );
        if i > 0 {
            curve.push_str(",\n");
        }
        curve.push_str(&format!(
            "    {{\"jobs\": {j}, \"secs\": {}, \"speedup\": {}, \"degraded\": {point_degraded}}}",
            json_f64(secs),
            json_f64(speedup)
        ));
    }

    // Interpreted vs specialized: the RPO configuration over every
    // workload, serially, with the frame fast path disabled and then at
    // the default threshold. The simulated numbers must not move.
    let rpo_specs = |specialized: bool| -> Vec<SimSpec> {
        ws.iter()
            .map(|w| {
                let cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
                let cfg = if specialized {
                    cfg
                } else {
                    cfg.without_specialization()
                };
                SimSpec::for_workload(w, scale, cfg)
            })
            .collect()
    };
    println!("RPO sweep, interpreted (specialization off)...");
    let t = Instant::now();
    let interp = experiment::run_specs(&rpo_specs(false), 1);
    let interp_secs = t.elapsed().as_secs_f64();
    println!("  interpreted: {interp_secs:.2}s");
    println!("RPO sweep, specialized (default threshold)...");
    let t = Instant::now();
    let spec = experiment::run_specs(&rpo_specs(true), 1);
    let spec_secs = t.elapsed().as_secs_f64();
    println!("  specialized: {spec_secs:.2}s");
    let sim_identical = interp.len() == spec.len()
        && interp.iter().zip(&spec).all(|(a, b)| {
            a.cycles == b.cycles
                && a.x86_retired == b.x86_retired
                && a.coverage.to_bits() == b.coverage.to_bits()
                && a.assert_events == b.assert_events
                && a.dyn_uops_removed == b.dyn_uops_removed
        });
    let counter_sum =
        |rs: &[replay_sim::SimResult], name: &str| rs.iter().map(|r| r.profile.counter(name)).sum();
    let specialized_hits: u64 = counter_sum(&spec, "sim.exec.specialized_hits");
    let fallbacks: u64 = counter_sum(&spec, "sim.exec.fallbacks");
    let plans_compiled: u64 = counter_sum(&spec, "sim.exec.plans_compiled");
    let sim_speedup = if spec_secs > 0.0 {
        interp_secs / spec_secs
    } else {
        0.0
    };
    println!(
        "  {sim_speedup:.2}x end-to-end ({specialized_hits} specialized fetches, \
         {fallbacks} fallbacks, {plans_compiled} plans)"
    );

    // Frame-execution microbenchmark: harvest real frames (with the
    // machine state each was constructed against) from every workload,
    // then time the interpreter loop against the compiled-plan loop over
    // the identical (frame, state) set. This isolates the probe itself —
    // the component the specialization threshold is buying — from the
    // timing model around it.
    const MAX_CASES: usize = 256;
    let mut cases: Vec<(replay_core::OptFrame, ExecPlan, replay_uop::MachineState)> = Vec::new();
    let mut scratch = ExecScratch::new();
    let mut plan_scratch = PlanScratch::new();
    'harvest: for w in &ws {
        let trace = w.segment_trace(0, scale);
        let mut injector = Injector::new();
        injector.preseed(&trace);
        let mut constructor = FrameConstructor::new(ConstructorConfig::default());
        let mut seen = std::collections::HashSet::new();
        for r in trace.records() {
            let flow = injector.flow(r);
            let ev = RetireEvent {
                addr: r.addr,
                uops: &flow,
                next_pc: r.next_pc,
                fallthrough: r.fallthrough(),
            };
            if let Some(frame) = constructor.retire(&ev) {
                if seen.insert(frame.start_addr) {
                    let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
                    let state = injector.golden().clone();
                    if let Some(plan) = ExecPlan::compile(&opt) {
                        let reference = probe_frame(&opt, &state, &mut scratch);
                        let planned = plan.probe(&state, &mut plan_scratch);
                        if reference != planned {
                            return Err(format!(
                                "plan diverges from interpreter on a {} frame at {:#x}",
                                w.name, frame.start_addr
                            ));
                        }
                        if reference == ProbeOutcome::Completed {
                            cases.push((opt, plan, state));
                            if cases.len() >= MAX_CASES {
                                break 'harvest;
                            }
                        }
                    }
                }
            }
            injector.apply(r);
        }
    }
    if cases.is_empty() {
        return Err("no completing frames harvested for the microbenchmark".into());
    }
    let total_steps: usize = cases.iter().map(|(_, p, _)| p.step_count()).sum();
    // Size the loop for tens of millions of executed steps so the timer
    // resolution is irrelevant, bounded on both sides for tiny suites.
    let iters = (20_000_000 / total_steps.max(1)).clamp(100, 200_000);
    println!(
        "frame-exec microbenchmark: {} frames, {total_steps} plan steps, {iters} iterations",
        cases.len()
    );
    let mut interp_completed = 0u64;
    let t = Instant::now();
    for _ in 0..iters {
        for (frame, _, state) in &cases {
            if probe_frame(frame, state, &mut scratch) == ProbeOutcome::Completed {
                interp_completed += 1;
            }
        }
    }
    let fe_interp_secs = t.elapsed().as_secs_f64();
    let mut plan_completed = 0u64;
    let t = Instant::now();
    for (_, plan, state) in &cases {
        for _ in 0..iters {
            if plan.probe(state, &mut plan_scratch) == ProbeOutcome::Completed {
                plan_completed += 1;
            }
        }
    }
    let fe_plan_secs = t.elapsed().as_secs_f64();
    let fe_identical =
        interp_completed == plan_completed && interp_completed == (cases.len() * iters) as u64;
    let fe_speedup = if fe_plan_secs > 0.0 {
        fe_interp_secs / fe_plan_secs
    } else {
        0.0
    };
    println!("  interpreter {fe_interp_secs:.3}s, plan {fe_plan_secs:.3}s ({fe_speedup:.2}x)");

    if !identical {
        return Err("fig6 grid results diverge across job counts or passes".into());
    }
    if !sim_identical {
        return Err("specialized simulation diverges from the interpreted run".into());
    }

    let json = format!(
        "{{\n  \"schema\": \"replay-bench-hotpath/v1\",\n  \"scale\": {scale},\n  \"available_cores\": {cores},\n  \"degraded\": {degraded},\n  \"trace_synthesis_secs\": {},\n  \"serial_cold_secs\": {},\n  \"serial_warm_secs\": {},\n  \"jobs_curve\": [\n{curve}\n  ],\n  \"sim_split\": {{\"interpreted_secs\": {}, \"specialized_secs\": {}, \"speedup\": {}, \"specialized_hits\": {specialized_hits}, \"fallbacks\": {fallbacks}, \"plans_compiled\": {plans_compiled}, \"identical_output\": {sim_identical}}},\n  \"frame_exec\": {{\"cases\": {}, \"plan_steps\": {total_steps}, \"iters\": {iters}, \"interpreted_secs\": {}, \"specialized_secs\": {}, \"speedup\": {}, \"identical_output\": {fe_identical}}},\n  \"identical_output\": {identical}\n}}\n",
        json_f64(synth_secs),
        json_f64(cold_secs),
        json_f64(warm_secs),
        json_f64(interp_secs),
        json_f64(spec_secs),
        json_f64(sim_speedup),
        cases.len(),
        json_f64(fe_interp_secs),
        json_f64(fe_plan_secs),
        json_f64(fe_speedup)
    );
    std::fs::write(out, json).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    use replay_check::{probe_fault_sensitivity, run_check, to_text, CheckConfig, PassSelection};

    let opts = Opts::parse(args, &SPEC_CHECK)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_CHECK.usage());
    }
    let cases = match opts.get("cases") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --cases value {v:?}"))?,
        None => 1000,
    };
    let seed = match opts.get("seed") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --seed value {v:?}"))?,
        None => 42,
    };

    if opts.has("faults") {
        // Sensitivity mode: plant every known bug species into optimized
        // frames and require that the differential oracle catches each one.
        let attempts = cases.min(10_000) as u32;
        println!(
            "planting faults into optimized frames ({attempts} attempts per kind, seed {seed})"
        );
        println!("{:14} {:>9} {:>9}", "fault", "injected", "detected");
        let mut missed = Vec::new();
        for probe in probe_fault_sensitivity(seed, attempts) {
            println!(
                "{:14} {:>9} {:>9}",
                probe.kind.name(),
                probe.injected,
                probe.detected
            );
            if probe.injected == 0 || probe.detected == 0 {
                missed.push(probe.kind.name());
            }
        }
        return if missed.is_empty() {
            println!("every fault kind detected");
            Ok(())
        } else {
            Err(format!(
                "oracle blind to fault kinds: {}",
                missed.join(", ")
            ))
        };
    }

    let passes = PassSelection::parse(opts.get("passes").unwrap_or("all"))?;
    let corpus = std::path::PathBuf::from(opts.get("corpus").unwrap_or("tests/corpus"));
    let entries_per_case = opts.count("entries", 4)? as u32;
    let jobs = opts.jobs()?;

    // Replay the persisted corpus first: previously-found bugs must stay
    // fixed before we go looking for new ones.
    match replay_check::replay_dir(&corpus) {
        Ok(0) => println!("corpus {}: empty", corpus.display()),
        Ok(n) => println!("corpus {}: {n} case(s) replayed clean", corpus.display()),
        Err((path, e)) => return Err(format!("corpus case {}: {e}", path.display())),
    }

    let cfg = CheckConfig {
        cases,
        seed,
        passes,
        jobs,
        entries_per_case: entries_per_case.max(1),
        shrink: !opts.has("no-shrink"),
    };
    let t = Instant::now();
    let report = run_check(&cfg);
    println!(
        "{report} (seed {seed}, {jobs} worker{}, {:.2}s)",
        if jobs == 1 { "" } else { "s" },
        t.elapsed().as_secs_f64()
    );
    if report.ok() {
        return Ok(());
    }
    // Persist every shrunk counterexample so the corpus replay above
    // guards the bug from now on.
    std::fs::create_dir_all(&corpus).map_err(|e| format!("creating {}: {e}", corpus.display()))?;
    for cex in &report.failures {
        let path = corpus.join(format!(
            "seed{}-case{}.case",
            cex.case.seed, cex.case.case_index
        ));
        std::fs::write(&path, to_text(&cex.case))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  {} ({} uops): {}",
            path.display(),
            cex.case.frame.uop_count(),
            cex.error
        );
    }
    Err(format!(
        "{} counterexample(s) written to {}",
        report.failures.len(),
        corpus.display()
    ))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_INFO)?;
    let [source] = opts.positional[..] else {
        return Err(SPEC_INFO.usage());
    };
    let n = opts.count("n", 30_000)?;
    let trace = load_trace(source, n, 0)?;
    println!("trace `{}`", trace.name);
    print!("{}", replay_trace::TraceStats::of(&trace).report());
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_DISASM)?;
    let [name] = opts.positional[..] else {
        return Err(SPEC_DISASM.usage());
    };
    let seg = opts.count("s", 0)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let (program, _) = w.segment_program(seg);
    for line in program.disasm() {
        match line {
            Ok(l) => println!("{:#010x}: {}", l.addr, l.inst),
            Err(e) => return Err(format!("disassembly failed: {e}")),
        }
    }
    Ok(())
}

fn cmd_frames(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_FRAMES)?;
    let [name] = opts.positional[..] else {
        return Err(SPEC_FRAMES.usage());
    };
    let n = opts.count("n", 20_000)?;
    let top = opts.count("top", 3)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = w.segment_trace(0, n);
    let mut injector = Injector::new();
    injector.preseed(&trace);
    let mut constructor = FrameConstructor::new(ConstructorConfig::default());
    let mut best: Vec<(u64, replay_frame::Frame)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for r in trace.records() {
        let flow = injector.flow(r);
        let ev = RetireEvent {
            addr: r.addr,
            uops: &flow,
            next_pc: r.next_pc,
            fallthrough: r.fallthrough(),
        };
        if let Some(frame) = constructor.retire(&ev) {
            if seen.insert(frame.start_addr) {
                let (_, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
                best.push((stats.removed_uops(), frame));
            }
        }
        injector.apply(r);
    }
    best.sort_by_key(|(removed, _)| std::cmp::Reverse(*removed));
    println!(
        "{} distinct frames constructed from {} instructions of `{}`",
        best.len(),
        trace.len(),
        name
    );
    for (removed, frame) in best.into_iter().take(top) {
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        println!(
            "\n=== frame at {:#x}: {} x86 instrs, {} -> {} uops ({removed} removed, {} loads) ===",
            frame.start_addr,
            frame.x86_count(),
            stats.uops_before,
            stats.uops_after,
            stats.removed_loads()
        );
        println!("--- before ---\n{}", frame.listing());
        println!("--- after ---\n{}", opt.listing());
    }
    Ok(())
}

fn cmd_clone(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_CLONE)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_CLONE.usage());
    }
    configure_store(&opts);
    let source = opts
        .get("from-profile")
        .ok_or_else(|| format!("missing --from-profile SRC ({})", SPEC_CLONE.usage()))?;
    let n = opts.count("n", 6_000)?;
    let mut cfg = replay_clone::FitConfig {
        fit_scale: n,
        jobs: opts.jobs()?,
        ..Default::default()
    };
    cfg.seed = opts.count("seed", cfg.seed as usize)? as u64;
    cfg.max_iters = opts.count("iters", cfg.max_iters)?;
    cfg.candidates_per_iter = opts.count("candidates", cfg.candidates_per_iter)?;
    if let Some(t) = opts.get("tol") {
        cfg.tolerance = t
            .parse()
            .ok()
            .filter(|t: &f64| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("bad --tol value {t:?}"))?;
    }
    // The target profile is measured at the fit scale, so a target drawn
    // from a suite workload is reachable exactly.
    let target_trace = load_trace(source, n, 0)?;
    let target = replay_trace::StatProfile::measure(&target_trace);
    println!(
        "target `{}`: {} x86 instructions; fitting at scale {} (tolerance {}, seed {:#x})",
        source,
        target_trace.len(),
        cfg.fit_scale,
        cfg.tolerance,
        cfg.seed
    );
    let fit = replay_clone::fit(&target, &cfg).map_err(|e| e.to_string())?;
    println!(
        "converged: `{}` at distance {:.4} after {} iterations ({} evaluations)",
        fit.workload.name, fit.distance, fit.iterations, fit.evaluations
    );
    let (axis, delta) = fit.measured.worst_component(&target);
    println!("worst dimension: {axis} (|delta| = {delta:.4})");
    if let Some(path) = opts.get("json") {
        let json = replay_clone::clone_json(&cfg, &target, &fit);
        std::fs::write(path, &json).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(out) = opts.get("o") {
        let trace = TraceStore::global().segment(&fit.workload, 0, cfg.fit_scale);
        let file = std::fs::File::create(out).map_err(|e| format!("creating {out:?}: {e}"))?;
        write_trace(std::io::BufWriter::new(file), &trace).map_err(|e| e.to_string())?;
        println!(
            "wrote {} records of `{}` to {out}",
            trace.len(),
            fit.workload.name
        );
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &SPEC_SWEEP)?;
    if !opts.positional.is_empty() {
        return Err(SPEC_SWEEP.usage());
    }
    configure_store(&opts);
    let mut cfg = replay_clone::SweepConfig {
        jobs: opts.jobs()?,
        ..Default::default()
    };
    cfg.steps = opts.count("steps", cfg.steps)?;
    cfg.scale = opts.count("n", cfg.scale)?;
    cfg.seed = opts.count("seed", cfg.seed as usize)? as u64;
    if let Some(v) = opts.get("gain-floor") {
        cfg.gain_floor_pct = v
            .parse()
            .ok()
            .filter(|f: &f64| f.is_finite())
            .ok_or_else(|| format!("bad --gain-floor value {v:?}"))?;
    }
    if let Some(name) = opts.get("corner") {
        if name != "all" {
            let corner = replay_clone::Corner::parse(name).ok_or_else(|| {
                format!(
                    "unknown corner {name:?} (valid: assert-storm, alias-heavy, \
                     predictor-hostile, all)"
                )
            })?;
            cfg.corners = vec![corner];
        }
    }
    let result = replay_clone::run_sweep(&cfg);
    for corner in &result.corners {
        println!("corner {}:", corner.corner);
        println!(
            "  {:>4} {:>5} {:>7} {:>7} {:>8} {:>5} {:>7}",
            "step", "frac", "rp", "rpo", "gain%", "cov", "assert"
        );
        for p in &corner.points {
            println!(
                "  {:>4} {:>5.2} {:>7.3} {:>7.3} {:>+8.2} {:>5.2} {:>7.3}",
                p.step,
                p.frac,
                p.gain.rp_ipc,
                p.gain.rpo_ipc,
                p.gain.rpo_gain_pct,
                p.gain.coverage,
                p.gain.assert_cycle_frac
            );
        }
        match corner.collapse_step {
            Some(step) => println!(
                "  collapse at step {step} (gain below {}%)",
                cfg.gain_floor_pct
            ),
            None => println!("  no collapse above the {}% floor", cfg.gain_floor_pct),
        }
    }
    if let Some(path) = opts.get("out") {
        std::fs::write(path, result.to_json()).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn known_flags_parse() {
        let args = argv(&["gzip", "-n", "4000", "--jobs=8", "--profile"]);
        let opts = Opts::parse(&args, &SPEC_COMPARE).unwrap();
        assert_eq!(opts.positional, vec!["gzip"]);
        assert_eq!(opts.count("n", 0).unwrap(), 4000);
        assert_eq!(opts.jobs().unwrap(), 8);
        assert!(opts.has("profile"));
        assert!(!opts.has("timings"));
    }

    #[test]
    fn aliases_normalize_to_canonical() {
        let args = argv(&["--threads", "3"]);
        let opts = Opts::parse(&args, &SPEC_COMPARE).unwrap();
        assert_eq!(opts.jobs().unwrap(), 3);
        let args = argv(&["x", "--out", "f.bin"]);
        let opts = Opts::parse(&args, &SPEC_GEN).unwrap();
        assert_eq!(opts.get("o"), Some("f.bin"));
        let args = argv(&["w", "-t", "5"]);
        let opts = Opts::parse(&args, &SPEC_FRAMES).unwrap();
        assert_eq!(opts.count("top", 3).unwrap(), 5);
    }

    #[test]
    fn misspelled_flag_rejected_naming_valid_set() {
        // The motivating bug: `--case` for `--cases` used to be silently
        // ignored, running the default 1000 cases instead.
        let args = argv(&["--case", "5"]);
        let err = Opts::parse(&args, &SPEC_CHECK).unwrap_err();
        assert!(err.contains("unknown option \"--case\""), "{err}");
        assert!(err.contains("replay check"), "{err}");
        assert!(err.contains("--cases"), "names the valid set: {err}");
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn unknown_short_flag_rejected() {
        let args = argv(&["gzip", "-x", "1"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("unknown option \"-x\""), "{err}");
    }

    #[test]
    fn every_command_rejects_unknown_options() {
        for spec in [
            &SPEC_WORKLOADS,
            &SPEC_GEN,
            &SPEC_SIM,
            &SPEC_COMPARE,
            &SPEC_BENCH_PARALLEL,
            &SPEC_BENCH_HOTPATH,
            &SPEC_FRAMES,
            &SPEC_CHECK,
            &SPEC_INFO,
            &SPEC_DISASM,
            &SPEC_REPORT,
            &SPEC_SERVE,
            &SPEC_SUBMIT,
        ] {
            let args = argv(&["--definitely-not-a-flag"]);
            let err = Opts::parse(&args, spec).unwrap_err();
            assert!(
                err.contains(&format!("replay {}", spec.name)),
                "{}: {err}",
                spec.name
            );
        }
    }

    #[test]
    fn usage_lines_advertise_every_spec_flag() {
        // Usage text is generated from the same spec the parser validates
        // against, so every flag the parser accepts must be advertised —
        // the drift where `replay compare` errors omitted --profile/
        // --timings/--cache-dir/--no-store cannot recur.
        for spec in ALL_SPECS {
            let usage = spec.usage();
            assert!(
                usage.starts_with(&format!("usage: replay {}", spec.name)),
                "{usage}"
            );
            for f in spec.flags {
                assert!(
                    usage.contains(&f.dashed()),
                    "replay {}: flag {} missing from usage {usage:?}",
                    spec.name,
                    f.dashed()
                );
                if f.takes_value() {
                    assert!(
                        usage.contains(&format!("{} {}", f.dashed(), f.value)),
                        "replay {}: metavar for {} missing from {usage:?}",
                        spec.name,
                        f.dashed()
                    );
                }
            }
            assert!(!spec.about.is_empty(), "replay {} has no about", spec.name);
        }
    }

    #[test]
    fn all_specs_is_complete() {
        // Every SPEC_* constant must be published in ALL_SPECS (the help
        // screen and the usage test above iterate it).
        let names: Vec<&str> = ALL_SPECS.iter().map(|s| s.name).collect();
        for expect in [
            "workloads",
            "gen",
            "sim",
            "compare",
            "report",
            "serve",
            "submit",
            "bench-parallel",
            "bench-hotpath",
            "frames",
            "info",
            "disasm",
            "check",
            "clone",
            "sweep",
        ] {
            assert!(names.contains(&expect), "{expect} missing from ALL_SPECS");
        }
    }

    #[test]
    fn compare_usage_advertises_store_and_profile_flags() {
        // The specific drift this guards against: the hand-written compare
        // usage string said only `[-n N] [--jobs N]`.
        let u = SPEC_COMPARE.usage();
        for want in ["--profile", "--timings", "--cache-dir DIR", "--no-store"] {
            assert!(u.contains(want), "{want} not in {u:?}");
        }
    }

    #[test]
    fn value_flag_requires_a_value() {
        let args = argv(&["gzip", "--jobs"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("--jobs requires a value"), "{err}");
        // Previously `compare gzip -n` at end of args silently fell back to
        // the default scale; now it is an error.
        let args = argv(&["gzip", "-n"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("-n requires a value"), "{err}");
    }

    #[test]
    fn boolean_flag_rejects_inline_value() {
        let args = argv(&["gzip", "--profile=yes"]);
        let err = Opts::parse(&args, &SPEC_COMPARE).unwrap_err();
        assert!(err.contains("--profile does not take a value"), "{err}");
    }
}
