//! `replay` — command-line driver for the rePLay reproduction.
//!
//! ```text
//! replay workloads                          list the synthetic workload suite
//! replay gen <workload> -o FILE [-n N] [-s SEG]
//!                                           generate a trace file
//! replay sim <workload|FILE> [-c CFG] [-n N] [--verify]
//!                                           simulate one configuration
//! replay compare <workload|FILE> [-n N]     all four configurations side by side
//! replay frames <workload> [-n N] [--top K] inspect the most-optimized frames
//! ```

use replay_core::{optimize, AliasProfile, OptConfig};
use replay_frame::{ConstructorConfig, FrameConstructor, RetireEvent};
use replay_sim::{simulate, ConfigKind, Injector, SimConfig};
use replay_timing::CycleBin;
use replay_trace::{read_trace, workloads, write_trace, Trace};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("frames") => cmd_frames(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try `replay help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "replay — Dynamic Optimization of Micro-Operations (HPCA 2003) reproduction

USAGE:
  replay workloads                           list the synthetic workload suite
  replay gen <workload> -o FILE [-n N] [-s SEG]
                                             generate and save a trace
  replay sim <workload|FILE> [-c CFG] [-n N] [--verify]
                                             simulate one configuration
                                             (CFG: IC, TC, RP, RPO; default RPO)
  replay compare <workload|FILE> [-n N]      all four configurations side by side
  replay frames <workload> [-n N] [--top K]  show the most-optimized frames
  replay info <workload|FILE> [-n N]         trace statistics (mix, branches, footprint)
  replay disasm <workload> [-s SEG]          disassemble a workload's program image"
    );
}

/// Parses `-x value` style options; returns (positional, lookup).
struct Opts<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Opts<'a> {
    fn parse(args: &'a [String]) -> Opts<'a> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                // Boolean long flags.
                flags.push((name, None));
                i += 1;
            } else if a.starts_with('-') && a.len() == 2 {
                let value = args.get(i + 1).map(String::as_str);
                flags.push((&a[1..], value));
                i += 2;
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Opts { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn count(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("bad -{name} value {v:?}")),
            None => Ok(default),
        }
    }
}

fn cmd_workloads() -> Result<(), String> {
    println!(
        "{:10} {:8} {:>9} {:>14}   (Table 1 of the paper)",
        "name", "suite", "segments", "default x86"
    );
    for w in workloads::all() {
        println!(
            "{:10} {:8} {:>9} {:>14}",
            w.name,
            match w.suite {
                replay_trace::Suite::SpecInt => "SPECint",
                replay_trace::Suite::Desktop => "desktop",
            },
            w.segments,
            w.segments * w.default_segment_len,
        );
    }
    Ok(())
}

/// Loads a trace by workload name or from a trace file.
fn load_trace(source: &str, n: usize, segment: usize) -> Result<Trace, String> {
    if let Some(w) = workloads::by_name(source) {
        if segment >= w.segments {
            return Err(format!("{source} has {} segments", w.segments));
        }
        return Ok(w.segment_trace(segment, n));
    }
    let file =
        std::fs::File::open(source).map_err(|e| format!("no workload or file {source:?}: {e}"))?;
    read_trace(std::io::BufReader::new(file)).map_err(|e| format!("reading {source:?}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    let [name] = opts.positional[..] else {
        return Err("usage: replay gen <workload> -o FILE [-n N] [-s SEG]".into());
    };
    let out = opts.get("o").ok_or("missing -o FILE")?;
    let n = opts.count("n", 100_000)?;
    let seg = opts.count("s", 0)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = w.segment_trace(seg, n);
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out:?}: {e}"))?;
    write_trace(std::io::BufWriter::new(file), &trace).map_err(|e| e.to_string())?;
    println!(
        "wrote {} records of `{}` segment {seg} to {out}",
        trace.len(),
        name
    );
    Ok(())
}

fn config_by_label(label: &str) -> Result<ConfigKind, String> {
    ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| format!("unknown configuration {label:?} (IC, TC, RP, RPO)"))
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    let [source] = opts.positional[..] else {
        return Err("usage: replay sim <workload|FILE> [-c CFG] [-n N] [--verify]".into());
    };
    let n = opts.count("n", 30_000)?;
    let kind = config_by_label(opts.get("c").unwrap_or("RPO"))?;
    let trace = load_trace(source, n, 0)?;
    let mut cfg = SimConfig::new(kind);
    if !opts.has("verify") {
        cfg = cfg.without_verify();
    }
    let r = simulate(&trace, &cfg);
    println!("trace `{}`: {} x86 instructions", trace.name, trace.len());
    println!(
        "configuration {kind}: {} cycles, IPC {:.3}",
        r.cycles,
        r.ipc()
    );
    if kind.uses_frames() {
        println!(
            "coverage {:.1}%  |  uops removed {:.1}%  loads removed {:.1}%  |  aborts {}",
            r.coverage * 100.0,
            r.uop_removal() * 100.0,
            r.load_removal() * 100.0,
            r.assert_events
        );
        if r.verify.checked > 0 {
            println!(
                "verifier: {} checked, {} failed",
                r.verify.checked, r.verify.failed
            );
        }
    }
    println!("cycle breakdown:");
    for bin in CycleBin::ALL {
        println!(
            "  {:8} {:10} ({:5.1}%)",
            bin.label(),
            r.bins.get(bin),
            r.bins.fraction(bin) * 100.0
        );
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    let [source] = opts.positional[..] else {
        return Err("usage: replay compare <workload|FILE> [-n N]".into());
    };
    let n = opts.count("n", 30_000)?;
    let trace = load_trace(source, n, 0)?;
    println!("trace `{}`: {} x86 instructions", trace.name, trace.len());
    println!(
        "{:5} {:>9} {:>7} {:>7} {:>9} {:>8}",
        "cfg", "cycles", "IPC", "cov%", "removed%", "aborts"
    );
    let mut rp = 0.0;
    let mut rpo = 0.0;
    for kind in ConfigKind::ALL {
        let r = simulate(&trace, &SimConfig::new(kind).without_verify());
        println!(
            "{:5} {:>9} {:>7.3} {:>7.1} {:>9.1} {:>8}",
            kind.label(),
            r.cycles,
            r.ipc(),
            r.coverage * 100.0,
            r.uop_removal() * 100.0,
            r.assert_events
        );
        match kind {
            ConfigKind::Replay => rp = r.ipc(),
            ConfigKind::ReplayOpt => rpo = r.ipc(),
            _ => {}
        }
    }
    if rp > 0.0 {
        println!("optimization gain: {:+.1}%", (rpo / rp - 1.0) * 100.0);
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    let [source] = opts.positional[..] else {
        return Err("usage: replay info <workload|FILE> [-n N]".into());
    };
    let n = opts.count("n", 30_000)?;
    let trace = load_trace(source, n, 0)?;
    println!("trace `{}`", trace.name);
    print!("{}", replay_trace::TraceStats::of(&trace).report());
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    let [name] = opts.positional[..] else {
        return Err("usage: replay disasm <workload> [-s SEG]".into());
    };
    let seg = opts.count("s", 0)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let (program, _) = w.segment_program(seg);
    for line in program.disasm() {
        match line {
            Ok(l) => println!("{:#010x}: {}", l.addr, l.inst),
            Err(e) => return Err(format!("disassembly failed: {e}")),
        }
    }
    Ok(())
}

fn cmd_frames(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    let [name] = opts.positional[..] else {
        return Err("usage: replay frames <workload> [-n N] [--top K]".into());
    };
    let n = opts.count("n", 20_000)?;
    let top = opts.count("t", 3)?;
    let w = workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = w.segment_trace(0, n);
    let mut injector = Injector::new();
    injector.preseed(&trace);
    let mut constructor = FrameConstructor::new(ConstructorConfig::default());
    let mut best: Vec<(u64, replay_frame::Frame)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for r in trace.records() {
        let flow = injector.flow(r);
        let ev = RetireEvent {
            addr: r.addr,
            uops: &flow,
            next_pc: r.next_pc,
            fallthrough: r.fallthrough(),
        };
        if let Some(frame) = constructor.retire(&ev) {
            if seen.insert(frame.start_addr) {
                let (_, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
                best.push((stats.removed_uops(), frame));
            }
        }
        injector.apply(r);
    }
    best.sort_by_key(|(removed, _)| std::cmp::Reverse(*removed));
    println!(
        "{} distinct frames constructed from {} instructions of `{}`",
        best.len(),
        trace.len(),
        name
    );
    for (removed, frame) in best.into_iter().take(top) {
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        println!(
            "\n=== frame at {:#x}: {} x86 instrs, {} -> {} uops ({removed} removed, {} loads) ===",
            frame.start_addr,
            frame.x86_count(),
            stats.uops_before,
            stats.uops_after,
            stats.removed_loads()
        );
        println!("--- before ---\n{}", frame.listing());
        println!("--- after ---\n{}", opt.listing());
    }
    Ok(())
}
