//! Fixed-seed load comparison of the two serve fronts.
//!
//! Runs the identical client load — a deterministic mix of workload
//! requests from concurrent seeded clients — first against the
//! event-loop front, then against the thread-per-connection front, and:
//!
//! - **fails** (exit 1) unless the two fronts produced byte-identical
//!   response-body sets,
//! - **fails** on any `serve.responses.write_failed`,
//! - emits a `replay-serve-load/v1` JSON artifact with per-front
//!   throughput and latency percentiles.
//!
//! Usage: `cargo run --release -p replay-serve --example serve_load -- [--out FILE]`

use replay_serve::{Client, ClientConfig, Request, Server, ServerConfig, Source, Status};
use replay_sim::report::strip_store_section;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const SCALE: u64 = 4_000;
const CLIENTS: usize = 6;
const REQS_PER_CLIENT: usize = 8;
const WORKLOADS: [&str; 3] = ["gzip", "twolf", "vortex"];

struct FrontResult {
    label: &'static str,
    bodies: Vec<String>,
    latencies_ms: Vec<u64>,
    wall: Duration,
    served: u64,
    shed: u64,
    write_failed: u64,
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn run_front(event_loop: bool) -> FrontResult {
    let label = if event_loop { "event" } else { "threads" };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            event_loop,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());

    let start = Instant::now();
    let mut per_client: Vec<(Vec<String>, Vec<u64>)> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::new(ClientConfig {
                        addrs: vec![addr.to_string()],
                        seed: 1000 + c as u64,
                        retries: 20,
                        base_backoff: Duration::from_millis(5),
                        max_backoff: Duration::from_millis(200),
                        ..ClientConfig::default()
                    });
                    let mut bodies = Vec::new();
                    let mut lats = Vec::new();
                    for r in 0..REQS_PER_CLIENT {
                        let req = Request {
                            source: Source::Workload(
                                WORKLOADS[(c + r) % WORKLOADS.len()].to_string(),
                            ),
                            scale: SCALE,
                            timings: false,
                            deadline_ms: 0,
                            relayed: false,
                        };
                        let t = Instant::now();
                        let resp = client.submit(&req).expect("submit converges");
                        lats.push(t.elapsed().as_millis() as u64);
                        assert_eq!(resp.status, Status::Ok, "{}", resp.message);
                        bodies.push(strip_store_section(
                            &String::from_utf8(resp.body).expect("UTF-8 body"),
                        ));
                    }
                    (bodies, lats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");

    let mut bodies = Vec::new();
    let mut latencies_ms = Vec::new();
    for (b, l) in per_client.drain(..) {
        bodies.extend(b);
        latencies_ms.extend(l);
    }
    bodies.sort();
    latencies_ms.sort_unstable();
    FrontResult {
        label,
        bodies,
        latencies_ms,
        wall,
        served: stats.served(),
        shed: stats.shed(),
        write_failed: stats.profile.counter("serve.responses.write_failed"),
    }
}

fn front_json(r: &FrontResult) -> String {
    let total = r.latencies_ms.len() as f64;
    let throughput = total / r.wall.as_secs_f64();
    format!(
        "    \"{}\": {{\n      \"requests\": {},\n      \"wall_ms\": {},\n      \
         \"throughput_rps\": {:.2},\n      \"p50_ms\": {},\n      \"p99_ms\": {},\n      \
         \"served\": {},\n      \"shed\": {},\n      \"write_failed\": {}\n    }}",
        r.label,
        r.latencies_ms.len(),
        r.wall.as_millis(),
        throughput,
        percentile(&r.latencies_ms, 0.50),
        percentile(&r.latencies_ms, 0.99),
        r.served,
        r.shed,
        r.write_failed,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = match args.get(1).map(String::as_str) {
        Some("--out") => Some(args.get(2).expect("--out needs a path").clone()),
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: serve_load [--out FILE]");
            std::process::exit(2);
        }
        None => None,
    };

    let event = run_front(true);
    let threads = run_front(false);

    let identical = event.bodies == threads.bodies;
    let json = format!(
        "{{\n  \"schema\": \"replay-serve-load/v1\",\n  \"clients\": {CLIENTS},\n  \
         \"requests_per_client\": {REQS_PER_CLIENT},\n  \"scale\": {SCALE},\n  \
         \"identical_bodies\": {identical},\n  \"fronts\": {{\n{},\n{}\n  }}\n}}\n",
        front_json(&event),
        front_json(&threads),
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write artifact");
            println!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }

    let mut failed = false;
    if !identical {
        eprintln!("FAIL: the two fronts served different response-body sets");
        failed = true;
    }
    for r in [&event, &threads] {
        if r.write_failed > 0 {
            eprintln!(
                "FAIL: {} front recorded {} serve.responses.write_failed",
                r.label, r.write_failed
            );
            failed = true;
        }
        if r.served != (CLIENTS * REQS_PER_CLIENT) as u64 {
            eprintln!(
                "FAIL: {} front served {} of {} requests",
                r.label,
                r.served,
                CLIENTS * REQS_PER_CLIENT
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "both fronts served {} identical responses (event p99 {} ms, threads p99 {} ms)",
        event.bodies.len(),
        percentile(&event.latencies_ms, 0.99),
        percentile(&threads.latencies_ms, 0.99),
    );
}
