//! The serving loop: bounded accept → parse → batch → simulate → respond.
//!
//! ```text
//!              conn queue (bounded)        work queue (bounded)
//! accept ──►  [TcpStream, ...]  ──parse──► [Job, ...] ──batch──► run_specs
//!    │shed: Overloaded            │shed: Overloaded │               │
//!    ▼                            ▼                 ▼               ▼
//!  respond                     respond       DeadlineExceeded    respond Ok
//! ```
//!
//! Every stage sheds instead of blocking: a full queue turns into a typed
//! [`Status::Overloaded`] response with a retry hint, never a hung
//! connection. The dispatcher collects jobs into batches (deduplicating
//! identical requests batch-locally), runs each batch as one
//! [`run_specs`] call on the shared worker pool — so four configurations
//! × many requests saturate the pool exactly like a local `replay
//! report` — and renders responses through the same
//! [`replay_sim::report`] code path the CLI uses, which is what makes a
//! served body byte-identical to a local run.
//!
//! Shutdown (programmatic flag or SIGTERM via [`crate::signal`]) stops
//! the accept loop immediately, then *drains*: connections already
//! accepted are parsed, queued jobs are simulated, responses are written,
//! and only then does [`Server::run`] return.

use crate::proto::{read_frame, write_frame, Request, Response, Source, Status};
use crate::queue::{Bounded, Pop, PushError};
use crate::signal;
use replay_obs::{Obs, Profile, Registry};
use replay_sim::experiment::run_specs;
use replay_sim::report::{render_report, specs_for_trace};
use replay_sim::TraceStore;
use replay_trace::{read_trace, workloads, Trace};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one [`Server`]. `Default` is sized for a small shared box;
/// tests shrink the queues to force shedding and set `batch_hold` to
/// make races deterministic.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulation worker threads per batch (the CLI's `--jobs`).
    pub jobs: usize,
    /// Accepted connections awaiting parse before shedding starts.
    pub conn_queue: usize,
    /// Parsed requests awaiting dispatch before shedding starts.
    pub work_queue: usize,
    /// Most requests dispatched as one simulation batch.
    pub batch_max: usize,
    /// How long the dispatcher lingers for stragglers after the first
    /// job of a batch arrives.
    pub batch_linger: Duration,
    /// Request-parsing threads.
    pub readers: usize,
    /// Socket read/write timeout (a stalled peer cannot wedge a stage).
    pub io_timeout: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Retry hint sent with shed responses.
    pub retry_after: Duration,
    /// Test hook: sleep this long before executing each batch, making
    /// overload and deadline windows deterministic under test. Zero in
    /// production.
    pub batch_hold: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            jobs: replay_sim::parallel::job_count(),
            conn_queue: 128,
            work_queue: 64,
            batch_max: 8,
            batch_linger: Duration::from_millis(2),
            readers: 2,
            io_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            retry_after: Duration::from_millis(50),
            batch_hold: Duration::ZERO,
        }
    }
}

/// What [`Server::run`] returns after draining: the serve-side metrics
/// profile (queue depths, batch sizes, shed/latency accounting).
#[derive(Debug)]
pub struct ServeStats {
    /// Merged metrics from every serving thread, deterministic order.
    pub profile: Profile,
}

impl ServeStats {
    /// Requests answered [`Status::Ok`].
    pub fn served(&self) -> u64 {
        self.profile.counter("serve.requests.ok")
    }

    /// Requests shed with [`Status::Overloaded`] (both queues).
    pub fn shed(&self) -> u64 {
        self.profile.counter("serve.shed.conn") + self.profile.counter("serve.shed.work")
    }
}

/// One parsed request awaiting dispatch.
struct Job {
    req: Request,
    conn: TcpStream,
    received: Instant,
}

/// A TCP simulation server. [`Server::bind`] claims the address;
/// [`Server::run`] serves until shutdown and returns the metrics.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:4655`; port 0 picks a free port).
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that initiates graceful shutdown when set to `true`.
    /// SIGTERM/SIGINT (after [`signal::install`]) works identically.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::triggered()
    }

    /// Serves until shutdown, then drains in-flight work and returns the
    /// metrics profile. The calling thread runs the accept loop; parsing
    /// and dispatch run on scoped threads that are joined before return,
    /// so when this returns every accepted connection has been answered.
    pub fn run(self) -> ServeStats {
        let cfg = &self.cfg;
        let conn_q: Arc<Bounded<TcpStream>> = Arc::new(Bounded::new(cfg.conn_queue));
        let work_q: Arc<Bounded<Job>> = Arc::new(Bounded::new(cfg.work_queue));
        let registry = Registry::new();
        let readers_left = AtomicUsize::new(cfg.readers.max(1));

        std::thread::scope(|scope| {
            for reader_idx in 0..cfg.readers.max(1) {
                let conn_q = Arc::clone(&conn_q);
                let work_q = Arc::clone(&work_q);
                let registry = &registry;
                let readers_left = &readers_left;
                scope.spawn(move || {
                    let profile = reader_loop(cfg, &conn_q, &work_q);
                    // The last reader out closes the work queue so the
                    // dispatcher knows no more jobs can arrive.
                    if readers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                        work_q.close();
                    }
                    registry.submit(1 + reader_idx, profile);
                });
            }
            {
                let work_q = Arc::clone(&work_q);
                let registry = &registry;
                let n_readers = cfg.readers.max(1);
                scope.spawn(move || {
                    let profile = dispatcher_loop(cfg, &work_q);
                    registry.submit(1 + n_readers, profile);
                });
            }

            // Accept loop on the calling thread: nonblocking accept with a
            // short poll so the shutdown flag is honored within ~1 ms.
            let mut obs = Obs::collecting();
            while !self.stopping() {
                match self.listener.accept() {
                    Ok((conn, _peer)) => {
                        obs.counter("serve.accepted", 1);
                        let _ = conn.set_read_timeout(Some(cfg.io_timeout));
                        let _ = conn.set_write_timeout(Some(cfg.io_timeout));
                        let _ = conn.set_nodelay(true);
                        if let Err(PushError::Full(conn) | PushError::Closed(conn)) =
                            conn_q.try_push(conn)
                        {
                            // Shed at the door: a typed response, not a
                            // silently dropped connection.
                            obs.counter("serve.shed.conn", 1);
                            respond(
                                conn,
                                &Response::reject(Status::Overloaded, "accept queue full")
                                    .with_retry_after(cfg.retry_after.as_millis() as u64),
                                &mut obs,
                            );
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // Stop accepting (listener closes on drop after the scope);
            // close the conn queue so readers drain what was accepted and
            // exit, which cascades into the work queue closing and the
            // dispatcher draining.
            conn_q.close();
            registry.submit(0, obs.into_profile());
        });

        ServeStats {
            profile: registry.finish(),
        }
    }
}

/// Parses requests off accepted connections and queues them for dispatch.
fn reader_loop(cfg: &ServerConfig, conn_q: &Bounded<TcpStream>, work_q: &Bounded<Job>) -> Profile {
    let mut obs = Obs::collecting();
    loop {
        let mut conn = match conn_q.pop() {
            Pop::Item(c) => c,
            Pop::Closed => break,
            Pop::Empty => continue, // unreachable for blocking pop
        };
        let received = Instant::now();
        let req = match read_frame(&mut conn)
            .map_err(|e| e.to_string())
            .and_then(|p| Request::decode(&p).map_err(|e| e.to_string()))
        {
            Ok(req) => req,
            Err(e) => {
                obs.counter("serve.requests.bad", 1);
                respond(conn, &Response::reject(Status::BadRequest, e), &mut obs);
                continue;
            }
        };
        obs.counter("serve.requests.received", 1);
        let job = Job {
            req,
            conn,
            received,
        };
        if let Err(PushError::Full(job) | PushError::Closed(job)) = work_q.try_push(job) {
            obs.counter("serve.shed.work", 1);
            respond(
                job.conn,
                &Response::reject(Status::Overloaded, "work queue full")
                    .with_retry_after(cfg.retry_after.as_millis() as u64),
                &mut obs,
            );
        }
    }
    obs.into_profile()
}

/// Collects jobs into batches, deduplicates identical requests, runs each
/// batch as one pool submission, and writes responses.
fn dispatcher_loop(cfg: &ServerConfig, work_q: &Bounded<Job>) -> Profile {
    let mut obs = Obs::collecting();
    // Warm-start cache for inline traces, keyed by content digest: a
    // resubmitted trace file skips decoding (named workloads already get
    // this through the process-wide TraceStore).
    let mut inline_traces: HashMap<u64, Arc<Trace>> = HashMap::new();
    loop {
        let first = match work_q.pop() {
            Pop::Item(j) => j,
            Pop::Closed => break,
            Pop::Empty => continue,
        };
        let mut batch = vec![first];
        let linger_until = Instant::now() + cfg.batch_linger;
        while batch.len() < cfg.batch_max.max(1) {
            let now = Instant::now();
            if now >= linger_until {
                break;
            }
            match work_q.pop_timeout(linger_until - now) {
                Pop::Item(j) => batch.push(j),
                Pop::Empty | Pop::Closed => break,
            }
        }
        obs.counter("serve.batches", 1);
        obs.hist("serve.batch_size", batch.len() as u64);
        obs.hist("serve.queue_depth", work_q.len() as u64);
        if !cfg.batch_hold.is_zero() {
            std::thread::sleep(cfg.batch_hold);
        }
        process_batch(cfg, batch, &mut inline_traces, &mut obs);
    }
    obs.into_profile()
}

/// Deadline check → trace resolution → one `run_specs` call → responses.
fn process_batch(
    cfg: &ServerConfig,
    batch: Vec<Job>,
    inline_traces: &mut HashMap<u64, Arc<Trace>>,
    obs: &mut Obs,
) {
    // Shed expired jobs first: simulating a request nobody is waiting on
    // wastes the pool.
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        let limit = if job.req.deadline_ms > 0 {
            Duration::from_millis(job.req.deadline_ms)
        } else {
            cfg.default_deadline
        };
        if job.received.elapsed() > limit {
            obs.counter("serve.requests.deadline", 1);
            respond(
                job.conn,
                &Response::reject(
                    Status::DeadlineExceeded,
                    format!("queued longer than {limit:?}"),
                ),
                obs,
            );
        } else {
            live.push(job);
        }
    }

    // Group identical requests: one simulation, many responses. Groups
    // keep first-arrival order so results map back deterministically.
    let mut groups: Vec<(u64, Vec<Job>)> = Vec::new();
    for job in live {
        let key = job.req.key();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, jobs)) => {
                obs.counter("serve.requests.deduped", 1);
                jobs.push(job);
            }
            None => groups.push((key, vec![job])),
        }
    }

    // Resolve traces, turning failures into BadRequest for every waiter
    // of that group.
    let mut runnable: Vec<(Arc<Trace>, bool, Vec<Job>)> = Vec::new();
    for (_key, jobs) in groups {
        let req = &jobs[0].req;
        let scale = req.scale as usize;
        let resolved: Result<Arc<Trace>, String> = match &req.source {
            Source::Workload(name) => match workloads::by_name(name) {
                Some(w) => Ok(TraceStore::global().segment(&w, 0, scale)),
                None => Err(format!("unknown workload {name:?}")),
            },
            Source::TraceBytes(bytes) => {
                let digest = replay_store::digest_bytes(bytes);
                match inline_traces.get(&digest) {
                    Some(t) => {
                        obs.counter("serve.inline_trace.hits", 1);
                        Ok(Arc::clone(t))
                    }
                    None => match read_trace(&bytes[..]) {
                        Ok(t) => {
                            let t = Arc::new(t);
                            inline_traces.insert(digest, Arc::clone(&t));
                            Ok(t)
                        }
                        Err(e) => Err(format!("undecodable trace payload: {e}")),
                    },
                }
            }
        };
        match resolved {
            Ok(trace) => runnable.push((trace, req.timings, jobs)),
            Err(msg) => {
                for job in jobs {
                    obs.counter("serve.requests.bad", 1);
                    respond(job.conn, &Response::reject(Status::BadRequest, &msg), obs);
                }
            }
        }
    }
    if runnable.is_empty() {
        return;
    }

    // One pool submission for the whole batch: four specs per unique
    // request, results in submission order, bit-identical at any `jobs`.
    let specs: Vec<_> = runnable
        .iter()
        .flat_map(|(trace, _, _)| specs_for_trace(trace))
        .collect();
    let results = run_specs(&specs, cfg.jobs);
    for (chunk, (trace, timings, jobs)) in results
        .chunks_exact(replay_sim::ConfigKind::ALL.len())
        .zip(runnable)
    {
        // The service always simulates the generic core model, matching a
        // local `replay report --json` with no `--core-model` override.
        let json = render_report(
            &trace.name,
            trace.len(),
            replay_sim::CoreModel::Generic,
            chunk,
            timings,
        );
        for job in jobs {
            obs.counter("serve.requests.ok", 1);
            obs.hist(
                "serve.latency_ms",
                job.received.elapsed().as_millis() as u64,
            );
            respond(job.conn, &Response::ok(json.clone().into_bytes()), obs);
        }
    }
}

/// Writes one response frame, counting (not propagating) write failures —
/// a peer that hung up is not the server's problem.
fn respond(mut conn: TcpStream, resp: &Response, obs: &mut Obs) {
    if write_frame(&mut conn, &resp.encode()).is_err() {
        obs.counter("serve.responses.write_failed", 1);
    }
}
