//! The serving core: two interchangeable front halves feeding one
//! dispatcher.
//!
//! ```text
//!  event mode (default):                 thread mode (--event-loop off):
//!
//!   epoll ◄─── doorbell ◄──┐               conn queue (bounded)
//!     │ readiness          │             accept ─► [TcpStream,..] ─► readers
//!     ▼                    │               │shed: typed response      │
//!   conn state machines    │               ▼                          ▼
//!     │ complete frames    │             respond            work queue (bounded)
//!     ▼                    │                                          │
//!   work queue (bounded) ──┴─────────────────────────────◄────────────┘
//!     │
//!     ▼
//!   dispatcher: batch → dedupe → run_specs → respond
//! ```
//!
//! The **event-driven front** (one thread, [`crate::poll`] +
//! [`crate::conn`]) holds every connection as a small state machine:
//! tens of thousands of idle or byte-dribbling clients cost file
//! descriptors, not blocked OS threads, and a slow peer can only ever
//! starve itself. The **thread front** keeps the original blocking
//! accept/read/write path — retained behind
//! [`ServerConfig::event_loop`]` = false` for differential testing and
//! for targets without the epoll shim.
//!
//! Both fronts shed instead of blocking: a full queue turns into a typed
//! [`Status::Overloaded`] response with a retry hint, a *closed* queue
//! (the server is draining) into [`Status::ShuttingDown`] — never a hung
//! connection. The shared dispatcher collects jobs into batches
//! (deduplicating identical requests batch-locally), runs each batch as
//! one [`run_specs`] call on the shared worker pool, and renders
//! responses through the same [`replay_sim::report`] code path the CLI
//! uses — which is what makes a served body byte-identical to a local
//! `replay report --json` regardless of which front carried it.
//!
//! Shutdown (programmatic flag or SIGTERM via [`crate::signal`]) stops
//! the accept path immediately, then *drains*: requests already parsed
//! are simulated and answered; event-mode connections that never sent a
//! complete request are closed (they may never speak), and only then
//! does [`Server::run`] return.

use crate::cluster::{ClusterConfig, ClusterState, RequestRoute};
use crate::conn::{Conn, ConnState, ReadStep, WriteStep};
use crate::poll;
use crate::proto::{read_frame, write_frame, Message, Request, Response, Source, Status};
use crate::queue::{Bounded, Pop, PushError};
use crate::signal;
use replay_obs::{Obs, Profile, Registry};
use replay_sim::experiment::run_specs;
use replay_sim::report::{render_report, specs_for_trace};
use replay_sim::{Exchange, TraceStore};
use replay_trace::{read_trace, workloads, Trace};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one [`Server`]. `Default` is sized for a small shared box;
/// tests shrink the queues to force shedding and set `batch_hold` to
/// make races deterministic.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulation worker threads per batch (the CLI's `--jobs`).
    pub jobs: usize,
    /// Thread mode: accepted connections awaiting parse before shedding
    /// starts. (The event loop parses incrementally and uses
    /// [`ServerConfig::max_conns`] instead.)
    pub conn_queue: usize,
    /// Parsed requests awaiting dispatch before shedding starts.
    pub work_queue: usize,
    /// Most requests dispatched as one simulation batch.
    pub batch_max: usize,
    /// How long the dispatcher lingers for stragglers after the first
    /// job of a batch arrives.
    pub batch_linger: Duration,
    /// Thread mode: request-parsing threads. Unused by the event loop,
    /// whose single thread parses every connection incrementally.
    pub readers: usize,
    /// Thread mode: socket read/write timeout. Event mode: how long a
    /// connection may sit *mid-frame* (or mid-response) without moving a
    /// byte before being closed — a connection that has sent nothing at
    /// all is idle, not stalled, and is never timed out.
    pub io_timeout: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Retry hint sent with overload-shed responses.
    pub retry_after: Duration,
    /// Test hook: sleep this long before executing each batch, making
    /// overload and deadline windows deterministic under test. Zero in
    /// production.
    pub batch_hold: Duration,
    /// Serve with the readiness-polling event loop (default wherever
    /// [`poll::supported`]); `false` selects the thread-per-connection
    /// path. Responses are byte-identical either way.
    pub event_loop: bool,
    /// Event mode: concurrent-connection ceiling; the connection that
    /// would exceed it is answered [`Status::Overloaded`] immediately.
    pub max_conns: usize,
    /// Decoded inline traces kept warm, keyed by content digest, evicted
    /// least-recently-used. Bounded so sustained unique-trace traffic
    /// cannot grow server memory without limit.
    pub inline_cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            jobs: replay_sim::parallel::job_count(),
            conn_queue: 128,
            work_queue: 64,
            batch_max: 8,
            batch_linger: Duration::from_millis(2),
            readers: 2,
            io_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            retry_after: Duration::from_millis(50),
            batch_hold: Duration::ZERO,
            event_loop: poll::supported(),
            max_conns: 20_000,
            inline_cache_cap: 64,
        }
    }
}

/// What [`Server::run`] returns after draining: the serve-side metrics
/// profile (queue depths, batch sizes, shed/latency accounting, and in
/// event mode the per-state connection counters).
#[derive(Debug)]
pub struct ServeStats {
    /// Merged metrics from every serving thread, deterministic order.
    pub profile: Profile,
}

impl ServeStats {
    /// Requests answered [`Status::Ok`].
    pub fn served(&self) -> u64 {
        self.profile.counter("serve.requests.ok")
    }

    /// Response frames that could not be written back (peer gone).
    pub fn write_failed(&self) -> u64 {
        self.profile.counter("serve.responses.write_failed")
    }

    /// Cluster mode: requests answered [`Status::NotOwner`].
    pub fn redirected(&self) -> u64 {
        self.profile.counter("serve.ring.redirected")
    }

    /// Cluster mode: warm artifacts pulled from peers on local miss.
    pub fn peer_artifact_pulls(&self) -> u64 {
        self.profile.counter("serve.peer.artifact_pulls")
    }

    /// Requests shed with [`Status::Overloaded`] (connection intake and
    /// work queue).
    pub fn shed(&self) -> u64 {
        self.profile.counter("serve.shed.conn") + self.profile.counter("serve.shed.work")
    }

    /// Requests refused with [`Status::ShuttingDown`] because they
    /// arrived during drain — counted apart from genuine overload so a
    /// rolling restart is not mistaken for capacity exhaustion.
    pub fn shed_shutdown(&self) -> u64 {
        self.profile.counter("serve.shed.shutdown")
    }
}

/// Where a job's response must go.
enum Reply {
    /// Thread mode: write the frame on this (blocking) stream.
    Stream(TcpStream),
    /// Event mode: route the encoded response back to the loop under
    /// this connection token (via the completion queue + doorbell).
    Event(u64),
}

/// One parsed request awaiting dispatch.
struct Job {
    req: Request,
    reply: Reply,
    received: Instant,
}

/// Encoded responses traveling from the dispatcher back to the event
/// loop: `(connection token, encoded response payload)`.
type Completion = (u64, Vec<u8>);

/// Maps a refused queue push to its wire response and shed counter —
/// the single source of truth for both fronts and both queues. A *full*
/// queue is genuine overload (retry after the hint); a *closed* queue
/// means the server is draining, so the response says "shutting down"
/// with a zero retry hint (retry immediately, elsewhere) and is counted
/// separately.
fn shed_outcome(cfg: &ServerConfig, closed: bool, stage: &'static str) -> (Response, &'static str) {
    if closed {
        (
            Response::reject(Status::ShuttingDown, "server is draining; retry elsewhere")
                .with_retry_after(0),
            "serve.shed.shutdown",
        )
    } else {
        let counter = if stage == "accept" {
            "serve.shed.conn"
        } else {
            "serve.shed.work"
        };
        (
            Response::reject(Status::Overloaded, format!("{stage} queue full"))
                .with_retry_after(cfg.retry_after.as_millis() as u64),
            counter,
        )
    }
}

/// Answers one job — the single exit point for Ok, BadRequest, shed, and
/// deadline responses alike, so every answered request lands in the
/// `serve.latency_ms` histogram (tail latency is most interesting
/// exactly when requests are being shed, which is when the old per-path
/// responders used to skip it).
fn finish_job(job: Job, resp: &Response, completions: Option<&Bounded<Completion>>, obs: &mut Obs) {
    obs.hist(
        "serve.latency_ms",
        job.received.elapsed().as_millis() as u64,
    );
    match job.reply {
        Reply::Stream(conn) => respond_stream(conn, resp, obs),
        Reply::Event(token) => {
            if let Some(q) = completions {
                let _ = q.try_push((token, resp.encode()));
            }
        }
    }
}

/// Writes one response frame on a blocking stream, counting (not
/// propagating) write failures — a peer that hung up is not the server's
/// problem.
fn respond_stream(mut conn: TcpStream, resp: &Response, obs: &mut Obs) {
    if write_frame(&mut conn, &resp.encode()).is_err() {
        obs.counter("serve.responses.write_failed", 1);
    }
}

/// A TCP simulation server. [`Server::bind`] claims the address;
/// [`Server::run`] serves until shutdown and returns the metrics.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    cluster: Option<Arc<ClusterState>>,
    trace_store: Option<Arc<TraceStore>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:4655`; port 0 picks a free port).
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            cluster: None,
            trace_store: None,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that initiates graceful shutdown when set to `true`.
    /// SIGTERM/SIGINT (after [`signal::install`]) works identically.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves from this private trace store instead of the process-wide
    /// [`TraceStore::global`]. This is how several in-process servers
    /// (tests, embedders) keep genuinely separate caches — the global
    /// store would let one node's warm cache satisfy another's lookups
    /// through shared process state, hiding exactly the replication
    /// behavior cluster tests exist to observe. Call *before*
    /// [`Server::configure_cluster`], which wires the exchange hooks
    /// into whichever store the server will use.
    pub fn with_trace_store(mut self, trace_store: Arc<TraceStore>) -> Server {
        self.trace_store = Some(trace_store);
        self
    }

    /// Enables cluster mode: builds the ring state and installs the peer
    /// artifact-exchange hooks on this server's trace store. Call after
    /// [`Server::bind`] (tests bind port 0 first, learn every node's real
    /// address, then configure) and after [`Server::with_trace_store`]
    /// when using a private store.
    pub fn configure_cluster(&mut self, cfg: ClusterConfig) {
        let state = Arc::new(ClusterState::new(cfg, self.trace_store_ref().disk()));
        self.trace_store_ref()
            .set_exchange(Arc::clone(&state) as Arc<dyn Exchange>);
        self.cluster = Some(state);
    }

    fn trace_store_ref(&self) -> &TraceStore {
        self.trace_store
            .as_deref()
            .unwrap_or_else(|| TraceStore::global())
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::triggered()
    }

    /// Serves until shutdown, then drains in-flight work and returns the
    /// metrics profile. Dispatch runs on a scoped thread that is joined
    /// before return, so when this returns every parsed request has been
    /// answered.
    pub fn run(self) -> ServeStats {
        #[cfg(unix)]
        if self.cfg.event_loop {
            match (poll::Poller::new(), poll::Doorbell::new()) {
                (Ok(poller), Ok(bell)) => return self.run_event(poller, bell),
                _ => eprintln!(
                    "replay-serve: readiness polling unavailable on this target; \
                     falling back to thread-per-connection"
                ),
            }
        }
        self.run_threads()
    }

    /// The readiness-polling front: one thread owns every connection's
    /// state machine; the dispatcher answers through the completion
    /// queue, whose doorbell wakes the poll loop.
    #[cfg(unix)]
    fn run_event(self, poller: poll::Poller, bell: poll::Doorbell) -> ServeStats {
        let cfg = &self.cfg;
        let trace_store = self.trace_store_ref();
        let cluster = self.cluster.as_deref();
        let work_q: Arc<Bounded<Job>> = Arc::new(Bounded::new(cfg.work_queue));
        let completions: Arc<Bounded<Completion>> = Arc::new(Bounded::new(usize::MAX));
        let bell = Arc::new(bell);
        {
            let bell = Arc::clone(&bell);
            completions.set_waker(Box::new(move || bell.ring()));
        }
        let registry = Registry::new();

        std::thread::scope(|scope| {
            {
                let work_q = Arc::clone(&work_q);
                let completions = Arc::clone(&completions);
                let registry = &registry;
                scope.spawn(move || {
                    let profile =
                        dispatcher_loop(cfg, &work_q, Some(&completions), trace_store, cluster);
                    registry.submit(1, profile);
                });
            }
            let mut el = event::EventLoop::new(cfg, &self.listener, poller, bell, &work_q, cluster);
            let profile = el.serve(&completions, || self.stopping());
            registry.submit(0, profile);
        });

        if let Some(cl) = cluster {
            let mut obs = Obs::collecting();
            cl.observe_into(&mut obs);
            registry.submit(usize::MAX, obs.into_profile());
        }
        ServeStats {
            profile: registry.finish(),
        }
    }

    /// The original blocking front: the calling thread accepts, reader
    /// threads parse, the dispatcher answers on the job's own stream.
    fn run_threads(self) -> ServeStats {
        let cfg = &self.cfg;
        let trace_store = self.trace_store_ref();
        let cluster = self.cluster.as_deref();
        let conn_q: Arc<Bounded<TcpStream>> = Arc::new(Bounded::new(cfg.conn_queue));
        let work_q: Arc<Bounded<Job>> = Arc::new(Bounded::new(cfg.work_queue));
        let registry = Registry::new();
        let readers_left = AtomicUsize::new(cfg.readers.max(1));

        std::thread::scope(|scope| {
            for reader_idx in 0..cfg.readers.max(1) {
                let conn_q = Arc::clone(&conn_q);
                let work_q = Arc::clone(&work_q);
                let registry = &registry;
                let readers_left = &readers_left;
                scope.spawn(move || {
                    let profile = reader_loop(cfg, &conn_q, &work_q, cluster);
                    // The last reader out closes the work queue so the
                    // dispatcher knows no more jobs can arrive.
                    if readers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                        work_q.close();
                    }
                    registry.submit(1 + reader_idx, profile);
                });
            }
            {
                let work_q = Arc::clone(&work_q);
                let registry = &registry;
                let n_readers = cfg.readers.max(1);
                scope.spawn(move || {
                    let profile = dispatcher_loop(cfg, &work_q, None, trace_store, cluster);
                    registry.submit(1 + n_readers, profile);
                });
            }

            // Accept loop on the calling thread: nonblocking accept with a
            // short poll so the shutdown flag is honored within ~1 ms.
            let mut obs = Obs::collecting();
            while !self.stopping() {
                match self.listener.accept() {
                    Ok((conn, _peer)) => {
                        obs.counter("serve.accepted", 1);
                        let _ = conn.set_read_timeout(Some(cfg.io_timeout));
                        let _ = conn.set_write_timeout(Some(cfg.io_timeout));
                        let _ = conn.set_nodelay(true);
                        if let Err(err) = conn_q.try_push(conn) {
                            // Shed at the door: a typed response, not a
                            // silently dropped connection.
                            let closed = matches!(err, PushError::Closed(_));
                            let (PushError::Full(conn) | PushError::Closed(conn)) = err;
                            let (resp, counter) = shed_outcome(cfg, closed, "accept");
                            obs.counter(counter, 1);
                            respond_stream(conn, &resp, &mut obs);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // Stop accepting (listener closes on drop after the scope);
            // close the conn queue so readers drain what was accepted and
            // exit, which cascades into the work queue closing and the
            // dispatcher draining.
            conn_q.close();
            registry.submit(0, obs.into_profile());
        });

        if let Some(cl) = cluster {
            let mut obs = Obs::collecting();
            cl.observe_into(&mut obs);
            registry.submit(usize::MAX, obs.into_profile());
        }
        ServeStats {
            profile: registry.finish(),
        }
    }
}

/// Answers a peer-exchange message directly on the front (both fronts
/// route through here): artifact fetches and pushes are cheap disk
/// operations that must not wait behind simulation batches in the work
/// queue. Returns the encoded reply frame.
fn peer_message_reply(msg: &Message, cluster: Option<&ClusterState>, obs: &mut Obs) -> Vec<u8> {
    let Some(cl) = cluster else {
        return Response::reject(Status::BadRequest, "server is not in cluster mode").encode();
    };
    match msg {
        Message::PeerFetch(f) => {
            obs.counter("serve.peer.fetch_recv", 1);
            cl.serve_fetch(f).encode()
        }
        Message::PeerPush(p) => cl.serve_push(p).encode(),
        // Inbound Response/PeerArtifact frames make no sense server-side.
        _ => Response::reject(Status::BadRequest, "unexpected message kind").encode(),
    }
}

/// Parses requests off accepted connections and queues them for dispatch
/// (thread mode only).
fn reader_loop(
    cfg: &ServerConfig,
    conn_q: &Bounded<TcpStream>,
    work_q: &Bounded<Job>,
    cluster: Option<&ClusterState>,
) -> Profile {
    let mut obs = Obs::collecting();
    loop {
        let mut conn = match conn_q.pop() {
            Pop::Item(c) => c,
            Pop::Closed => break,
            Pop::Empty => continue, // unreachable for blocking pop
        };
        let received = Instant::now();
        let msg = match read_frame(&mut conn)
            .map_err(|e| e.to_string())
            .and_then(|p| Message::decode(&p).map_err(|e| e.to_string()))
        {
            Ok(msg) => msg,
            Err(e) => {
                obs.counter("serve.requests.bad", 1);
                respond_stream(conn, &Response::reject(Status::BadRequest, e), &mut obs);
                continue;
            }
        };
        let req = match msg {
            Message::Request(req) => req,
            other => {
                if write_frame(&mut conn, &peer_message_reply(&other, cluster, &mut obs)).is_err() {
                    obs.counter("serve.responses.write_failed", 1);
                }
                continue;
            }
        };
        obs.counter("serve.requests.received", 1);
        let job = Job {
            req,
            reply: Reply::Stream(conn),
            received,
        };
        if let Err(err) = work_q.try_push(job) {
            let closed = matches!(err, PushError::Closed(_));
            let (PushError::Full(job) | PushError::Closed(job)) = err;
            let (resp, counter) = shed_outcome(cfg, closed, "work");
            obs.counter(counter, 1);
            finish_job(job, &resp, None, &mut obs);
        }
    }
    obs.into_profile()
}

/// Decoded inline traces kept warm, keyed by content digest, with a
/// hard capacity and deterministic least-recently-used eviction (the
/// entry order is a pure function of the request sequence). Without the
/// bound, sustained unique-inline-trace traffic grew the old map — and
/// server memory — without limit.
struct InlineTraceCache {
    cap: usize,
    /// LRU order: least recent at the front, most recent at the back.
    entries: Vec<(u64, Arc<Trace>)>,
}

impl InlineTraceCache {
    fn new(cap: usize) -> InlineTraceCache {
        InlineTraceCache {
            cap,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, digest: u64) -> Option<Arc<Trace>> {
        let i = self.entries.iter().position(|(d, _)| *d == digest)?;
        let entry = self.entries.remove(i);
        let trace = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(trace)
    }

    fn insert(&mut self, digest: u64, trace: Arc<Trace>, obs: &mut Obs) {
        if self.cap == 0 {
            return;
        }
        while self.entries.len() >= self.cap {
            self.entries.remove(0);
            obs.counter("serve.inline_trace.evictions", 1);
        }
        self.entries.push((digest, trace));
    }
}

/// Collects jobs into batches, deduplicates identical requests, runs each
/// batch as one pool submission, and answers every job (both fronts).
fn dispatcher_loop(
    cfg: &ServerConfig,
    work_q: &Bounded<Job>,
    completions: Option<&Bounded<Completion>>,
    trace_store: &TraceStore,
    cluster: Option<&ClusterState>,
) -> Profile {
    let mut obs = Obs::collecting();
    let mut inline_traces = InlineTraceCache::new(cfg.inline_cache_cap);
    loop {
        let first = match work_q.pop() {
            Pop::Item(j) => j,
            Pop::Closed => break,
            Pop::Empty => continue,
        };
        let mut batch = vec![first];
        let linger_until = Instant::now() + cfg.batch_linger;
        while batch.len() < cfg.batch_max.max(1) {
            let now = Instant::now();
            if now >= linger_until {
                break;
            }
            match work_q.pop_timeout(linger_until - now) {
                Pop::Item(j) => batch.push(j),
                Pop::Empty | Pop::Closed => break,
            }
        }
        obs.counter("serve.batches", 1);
        obs.hist("serve.batch_size", batch.len() as u64);
        obs.hist("serve.queue_depth", work_q.len() as u64);
        if !cfg.batch_hold.is_zero() {
            std::thread::sleep(cfg.batch_hold);
        }
        process_batch(
            cfg,
            batch,
            &mut inline_traces,
            completions,
            trace_store,
            cluster,
            &mut obs,
        );
    }
    obs.into_profile()
}

/// Deadline check → ring routing → trace resolution → one `run_specs`
/// call → responses.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    cfg: &ServerConfig,
    batch: Vec<Job>,
    inline_traces: &mut InlineTraceCache,
    completions: Option<&Bounded<Completion>>,
    trace_store: &TraceStore,
    cluster: Option<&ClusterState>,
    obs: &mut Obs,
) {
    // Shed expired jobs first: simulating a request nobody is waiting on
    // wastes the pool.
    let mut routed: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        let limit = if job.req.deadline_ms > 0 {
            Duration::from_millis(job.req.deadline_ms)
        } else {
            cfg.default_deadline
        };
        if job.received.elapsed() > limit {
            obs.counter("serve.requests.deadline", 1);
            let resp = Response::reject(
                Status::DeadlineExceeded,
                format!("queued longer than {limit:?}"),
            );
            finish_job(job, &resp, completions, obs);
        } else {
            routed.push(job);
        }
    }

    // Ring routing: redirect (or proxy) requests another node owns. A
    // relayed request is always Local — see `ClusterState::route_request`
    // for the anti-loop invariant. Proxy failure falls back to local
    // simulation: the response is byte-identical from any node, so the
    // owner being down costs the warm-cache benefit, never correctness.
    let mut live: Vec<Job> = Vec::with_capacity(routed.len());
    for job in routed {
        let Some(cl) = cluster else {
            live.push(job);
            continue;
        };
        match cl.route_request(&job.req) {
            RequestRoute::Local => live.push(job),
            RequestRoute::Redirect(owner) => {
                finish_job(job, &Response::not_owner(owner), completions, obs);
            }
            RequestRoute::Proxy(owner) => match cl.proxy_request(&owner, &job.req) {
                Some(resp) => finish_job(job, &resp, completions, obs),
                None => {
                    cl.count_proxy_fallback();
                    live.push(job);
                }
            },
        }
    }

    // Group identical requests: one simulation, many responses. Groups
    // keep first-arrival order so results map back deterministically.
    let mut groups: Vec<(u64, Vec<Job>)> = Vec::new();
    for job in live {
        let key = job.req.key();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, jobs)) => {
                obs.counter("serve.requests.deduped", 1);
                jobs.push(job);
            }
            None => groups.push((key, vec![job])),
        }
    }

    // Resolve traces, turning failures into BadRequest for every waiter
    // of that group.
    let mut runnable: Vec<(Arc<Trace>, bool, Vec<Job>)> = Vec::new();
    for (_key, jobs) in groups {
        let req = &jobs[0].req;
        let scale = req.scale as usize;
        let resolved: Result<Arc<Trace>, String> = match &req.source {
            Source::Workload(name) => match workloads::by_name(name) {
                Some(w) => Ok(trace_store.segment(&w, 0, scale)),
                None => Err(format!("unknown workload {name:?}")),
            },
            Source::TraceBytes(bytes) => {
                let digest = replay_store::digest_bytes(bytes);
                match inline_traces.get(digest) {
                    Some(t) => {
                        obs.counter("serve.inline_trace.hits", 1);
                        Ok(t)
                    }
                    None => match read_trace(&bytes[..]) {
                        Ok(t) => {
                            let t = Arc::new(t);
                            inline_traces.insert(digest, Arc::clone(&t), obs);
                            Ok(t)
                        }
                        Err(e) => Err(format!("undecodable trace payload: {e}")),
                    },
                }
            }
        };
        match resolved {
            Ok(trace) => runnable.push((trace, req.timings, jobs)),
            Err(msg) => {
                let resp = Response::reject(Status::BadRequest, &msg);
                for job in jobs {
                    obs.counter("serve.requests.bad", 1);
                    finish_job(job, &resp, completions, obs);
                }
            }
        }
    }
    if runnable.is_empty() {
        return;
    }

    // One pool submission for the whole batch: four specs per unique
    // request, results in submission order, bit-identical at any `jobs`.
    let specs: Vec<_> = runnable
        .iter()
        .flat_map(|(trace, _, _)| specs_for_trace(trace))
        .collect();
    let results = run_specs(&specs, cfg.jobs);
    for (chunk, (trace, timings, jobs)) in results
        .chunks_exact(replay_sim::ConfigKind::ALL.len())
        .zip(runnable)
    {
        // The service always simulates the generic core model, matching a
        // local `replay report --json` with no `--core-model` override.
        let json = render_report(
            &trace.name,
            trace.len(),
            replay_sim::CoreModel::Generic,
            chunk,
            timings,
        );
        let resp = Response::ok(json.into_bytes());
        for job in jobs {
            obs.counter("serve.requests.ok", 1);
            finish_job(job, &resp, completions, obs);
        }
    }
}

#[cfg(unix)]
mod event {
    //! The readiness-polling front half.

    use super::*;
    use crate::poll::{Doorbell, Event, Interest, Poller};
    use std::collections::HashMap;
    use std::os::fd::AsRawFd;

    const TOK_LISTENER: u64 = 0;
    const TOK_BELL: u64 = 1;
    const TOK_FIRST_CONN: u64 = 2;

    /// The event loop's whole world: the poller, every live connection's
    /// state machine, and the counters.
    pub(super) struct EventLoop<'a> {
        cfg: &'a ServerConfig,
        listener: &'a TcpListener,
        poller: Poller,
        bell: Arc<Doorbell>,
        work_q: &'a Bounded<Job>,
        cluster: Option<&'a ClusterState>,
        conns: HashMap<u64, Conn<TcpStream>>,
        next_token: u64,
        /// Jobs handed to the dispatcher whose completions have not come
        /// back yet — the drain-exit condition.
        in_flight: usize,
        draining: bool,
        obs: Obs,
    }

    impl<'a> EventLoop<'a> {
        pub(super) fn new(
            cfg: &'a ServerConfig,
            listener: &'a TcpListener,
            poller: Poller,
            bell: Arc<Doorbell>,
            work_q: &'a Bounded<Job>,
            cluster: Option<&'a ClusterState>,
        ) -> EventLoop<'a> {
            EventLoop {
                cfg,
                listener,
                poller,
                bell,
                work_q,
                cluster,
                conns: HashMap::new(),
                next_token: TOK_FIRST_CONN,
                in_flight: 0,
                draining: false,
                obs: Obs::collecting(),
            }
        }

        /// Runs until `stopping` and the subsequent drain complete;
        /// returns this thread's metrics.
        pub(super) fn serve(
            &mut self,
            completions: &Bounded<Completion>,
            stopping: impl Fn() -> bool,
        ) -> Profile {
            self.poller
                .add(self.listener.as_raw_fd(), TOK_LISTENER, Interest::READ)
                .expect("register listener");
            self.poller
                .add(self.bell.fd(), TOK_BELL, Interest::READ)
                .expect("register doorbell");

            // Sweep stalled connections a few times per timeout window;
            // cap the interval so huge timeouts still sweep regularly.
            let sweep_every = (self.cfg.io_timeout / 4)
                .max(Duration::from_millis(5))
                .min(Duration::from_secs(1));
            let mut last_sweep = Instant::now();
            let mut events: Vec<Event> = Vec::new();

            loop {
                if !self.draining && stopping() {
                    self.begin_drain();
                }
                if self.draining && self.in_flight == 0 && self.conns.is_empty() {
                    break;
                }
                let n = self.poller.wait(&mut events, 20).unwrap_or(0);
                if n > 0 {
                    self.obs.counter("serve.poll.wakeups", 1);
                }
                let now = Instant::now();
                for &ev in &events {
                    match ev.token {
                        TOK_LISTENER => self.accept_ready(now),
                        TOK_BELL => self.bell.drain(),
                        token => self.conn_event(token, ev, now),
                    }
                }
                // Always drain completions — cheap when empty, and doing
                // it unconditionally means a doorbell ring can never be
                // lost between the drain and the next wait.
                while let Pop::Item((token, payload)) = completions.try_pop() {
                    self.in_flight -= 1;
                    self.deliver(token, &payload, now);
                }
                if now.saturating_duration_since(last_sweep) >= sweep_every {
                    last_sweep = now;
                    self.sweep(now);
                }
            }
            std::mem::replace(&mut self.obs, Obs::disabled()).into_profile()
        }

        /// Stop accepting; close connections that never completed a
        /// request (they may never speak, and waiting on them would hold
        /// the drain hostage); close the work queue so the dispatcher
        /// drains what was parsed and exits.
        fn begin_drain(&mut self) {
            self.draining = true;
            let _ = self.poller.remove(self.listener.as_raw_fd());
            self.conns
                .retain(|_, c| matches!(c.state(), ConnState::Dispatched) || c.writing());
            self.work_q.close();
        }

        fn accept_ready(&mut self, now: Instant) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.obs.counter("serve.accepted", 1);
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        let token = self.next_token;
                        self.next_token += 1;
                        let fd = stream.as_raw_fd();
                        let mut conn = Conn::new(stream, token, now);
                        if self.conns.len() >= self.cfg.max_conns {
                            // Over the ceiling: answer Overloaded through
                            // the same state machine (the write may need
                            // readiness too) and count it as a conn shed.
                            let (resp, counter) = shed_outcome(self.cfg, false, "accept");
                            self.obs.counter(counter, 1);
                            conn.queue_response(&resp.encode());
                            self.obs.counter("serve.conns.writing", 1);
                            if self.poller.add(fd, token, Interest::WRITE).is_ok() {
                                self.conns.insert(token, conn);
                                self.drive_write(token, now);
                            }
                        } else if self.poller.add(fd, token, Interest::READ).is_ok() {
                            self.obs.counter("serve.conns.idle", 1);
                            self.conns.insert(token, conn);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        /// One readiness event for one connection.
        fn conn_event(&mut self, token: u64, ev: Event, now: Instant) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return; // stale event for a finished connection
            };
            if ev.readable
                && matches!(
                    conn.state(),
                    ConnState::Accepted | ConnState::ReadingLen | ConnState::ReadingPayload
                )
            {
                let was_idle = conn.state() == ConnState::Accepted;
                let step = conn.on_readable(now);
                if was_idle && conn.state() != ConnState::Accepted {
                    self.obs.counter("serve.conns.reading", 1);
                }
                match step {
                    ReadStep::Frame(payload) => self.frame_complete(token, &payload, now),
                    ReadStep::NeedMore { bytes } => {
                        if bytes > 0 {
                            self.obs.hist("serve.read.partial_bytes", bytes as u64);
                        }
                    }
                    ReadStep::TooLarge(len) => {
                        self.obs.counter("serve.requests.bad", 1);
                        let resp = Response::reject(
                            Status::BadRequest,
                            format!("frame length {len} exceeds {}", crate::proto::MAX_FRAME),
                        );
                        self.queue_and_write(token, &resp.encode(), now);
                    }
                    ReadStep::Disconnected => {
                        self.obs.counter("serve.conns.disconnected", 1);
                        self.conns.remove(&token);
                        return;
                    }
                }
            } else if ev.closed && !matches!(self.state_of(token), Some(ConnState::Dispatched)) {
                // Hangup on a connection with nothing readable and no
                // response owed to it.
                if self.state_of(token).is_some() {
                    self.obs.counter("serve.conns.disconnected", 1);
                    self.conns.remove(&token);
                    return;
                }
            }
            if ev.writable || ev.closed {
                if let Some(conn) = self.conns.get(&token) {
                    if conn.writing() {
                        self.drive_write(token, now);
                    }
                }
            }
        }

        fn state_of(&self, token: u64) -> Option<ConnState> {
            self.conns.get(&token).map(|c| c.state())
        }

        /// A complete frame arrived: decode, then dispatch or shed — all
        /// without leaving this thread. Peer artifact messages (cluster
        /// mode) are answered right here: they are cheap disk reads and
        /// must not wait behind simulation batches in the work queue.
        fn frame_complete(&mut self, token: u64, payload: &[u8], now: Instant) {
            match Message::decode(payload) {
                Ok(Message::Request(req)) => {
                    self.obs.counter("serve.requests.received", 1);
                    let job = Job {
                        req,
                        reply: Reply::Event(token),
                        received: now,
                    };
                    match self.work_q.try_push(job) {
                        Ok(()) => {
                            self.in_flight += 1;
                            // Nothing to read or write until the
                            // completion comes back.
                            if let Some(conn) = self.conns.get(&token) {
                                let fd = conn.stream().as_raw_fd();
                                let _ = self.poller.modify(fd, token, Interest::NONE);
                            }
                        }
                        Err(err) => {
                            let closed = matches!(err, PushError::Closed(_));
                            let (PushError::Full(job) | PushError::Closed(job)) = err;
                            let (resp, counter) = shed_outcome(self.cfg, closed, "work");
                            self.obs.counter(counter, 1);
                            self.obs.hist(
                                "serve.latency_ms",
                                job.received.elapsed().as_millis() as u64,
                            );
                            self.queue_and_write(token, &resp.encode(), now);
                        }
                    }
                }
                Ok(other) => {
                    let reply = peer_message_reply(&other, self.cluster, &mut self.obs);
                    self.queue_and_write(token, &reply, now);
                }
                Err(e) => {
                    self.obs.counter("serve.requests.bad", 1);
                    let resp = Response::reject(Status::BadRequest, e.to_string());
                    self.queue_and_write(token, &resp.encode(), now);
                }
            }
        }

        /// A completion came back from the dispatcher for `token`.
        fn deliver(&mut self, token: u64, payload: &[u8], now: Instant) {
            if self.conns.contains_key(&token) {
                self.queue_and_write(token, payload, now);
            } else {
                // The peer hung up while its request was being simulated.
                self.obs.counter("serve.responses.conn_gone", 1);
            }
        }

        /// Queues an encoded response on a connection and pushes as many
        /// bytes as the socket will take right now.
        fn queue_and_write(&mut self, token: u64, payload: &[u8], now: Instant) {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.queue_response(payload);
                self.obs.counter("serve.conns.writing", 1);
                self.drive_write(token, now);
            }
        }

        fn drive_write(&mut self, token: u64, now: Instant) {
            let (step, fd) = match self.conns.get_mut(&token) {
                Some(conn) => (conn.on_writable(now), conn.stream().as_raw_fd()),
                None => return,
            };
            match step {
                WriteStep::Flushed => {
                    self.conns.remove(&token);
                }
                WriteStep::NeedMore { bytes } => {
                    if bytes > 0 {
                        self.obs.hist("serve.write.partial_bytes", bytes as u64);
                    }
                    let _ = self.poller.modify(fd, token, Interest::WRITE);
                }
                WriteStep::Disconnected => {
                    self.obs.counter("serve.responses.write_failed", 1);
                    self.conns.remove(&token);
                }
            }
        }

        /// Closes connections stalled mid-frame or mid-response past
        /// `io_timeout` (a slow-loris peer evaporates here); connections
        /// that never sent a byte are idle, not stalled, and stay.
        fn sweep(&mut self, now: Instant) {
            let timeout = self.cfg.io_timeout;
            let stale: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| {
                    (c.mid_frame() || c.writing())
                        && now.saturating_duration_since(c.last_activity) > timeout
                })
                .map(|(t, _)| *t)
                .collect();
            for token in stale {
                self.obs.counter("serve.conns.timed_out", 1);
                self.conns.remove(&token);
            }
            self.obs.hist("serve.conns.open", self.conns.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServerConfig {
        ServerConfig::default()
    }

    #[test]
    fn full_queue_sheds_overloaded_with_retry_hint() {
        let c = cfg();
        let (resp, counter) = shed_outcome(&c, false, "accept");
        assert_eq!(resp.status, Status::Overloaded);
        assert_eq!(resp.retry_after_ms, c.retry_after.as_millis() as u64);
        assert_eq!(counter, "serve.shed.conn");
        let (resp, counter) = shed_outcome(&c, false, "work");
        assert_eq!(resp.status, Status::Overloaded);
        assert_eq!(counter, "serve.shed.work");
    }

    #[test]
    fn closed_queue_sheds_shutting_down_with_zero_retry() {
        // Regression: a closed queue used to be answered "Overloaded:
        // accept queue full", telling clients to retry a server that is
        // going away. Draining is its own status and its own counter.
        let c = cfg();
        for stage in ["accept", "work"] {
            let (resp, counter) = shed_outcome(&c, true, stage);
            assert_eq!(resp.status, Status::ShuttingDown, "{stage}");
            assert_eq!(resp.retry_after_ms, 0, "{stage}");
            assert!(resp.status.is_retryable());
            assert_eq!(counter, "serve.shed.shutdown", "{stage}");
        }
    }

    #[test]
    fn inline_trace_cache_bounds_and_evicts_lru() {
        let w = workloads::by_name("gzip").expect("workload");
        let trace = Arc::new(w.segment_trace(0, 50));
        let mut cache = InlineTraceCache::new(2);
        let mut obs = Obs::collecting();
        cache.insert(1, Arc::clone(&trace), &mut obs);
        cache.insert(2, Arc::clone(&trace), &mut obs);
        // Touch 1 so it becomes most-recent; inserting 3 must evict 2.
        assert!(cache.get(1).is_some());
        cache.insert(3, Arc::clone(&trace), &mut obs);
        assert!(cache.get(2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let profile = obs.into_profile();
        assert_eq!(profile.counter("serve.inline_trace.evictions"), 1);
    }

    #[test]
    fn inline_trace_cache_zero_capacity_never_stores() {
        let w = workloads::by_name("gzip").expect("workload");
        let trace = Arc::new(w.segment_trace(0, 50));
        let mut cache = InlineTraceCache::new(0);
        let mut obs = Obs::collecting();
        cache.insert(9, trace, &mut obs);
        assert!(cache.get(9).is_none());
        assert_eq!(
            obs.into_profile().counter("serve.inline_trace.evictions"),
            0
        );
    }
}
