//! A bounded MPMC queue with explicit shedding semantics.
//!
//! The server's backpressure story is built on two of these: a full queue
//! *rejects* the push (so the caller can answer [`Overloaded`] instead of
//! hanging the connection), and a closed queue drains — consumers keep
//! popping until it is empty, which is exactly the graceful-shutdown
//! contract (in-flight work completes; only new work is refused).
//!
//! Consumers blocked in [`Bounded::pop`] are woken by a condvar. A
//! consumer that *cannot* block on a condvar — the event loop, which
//! sleeps in `epoll_wait` — instead installs a [`Bounded::set_waker`]
//! hook (in practice [`crate::poll::Doorbell::ring`]) that fires after
//! every push and on close, and drains the queue with the non-blocking
//! [`Bounded::try_pop`] when the doorbell wakes it.
//!
//! [`Overloaded`]: crate::proto::Status::Overloaded

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity: shed the item (the value comes back so
    /// the caller can still respond on its connection).
    Full(T),
    /// The queue was closed: no new work is accepted.
    Closed(T),
}

/// Outcome of a potentially-waiting pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// The wait elapsed with nothing available (queue still open).
    Empty,
    /// Closed *and* drained — the consumer is done.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. All methods are `&self`; share it via `Arc`.
pub struct Bounded<T> {
    cap: usize,
    state: Mutex<State<T>>,
    available: Condvar,
    waker: OnceLock<Box<dyn Fn() + Send + Sync>>,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            cap: cap.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            waker: OnceLock::new(),
        }
    }

    /// Installs a wakeup hook fired after every successful push and on
    /// close — how a poll-loop consumer (which sleeps in `epoll_wait`,
    /// not on this queue's condvar) learns there is something to
    /// [`Bounded::try_pop`]. At most one waker per queue; later calls are
    /// ignored.
    pub fn set_waker(&self, waker: Box<dyn Fn() + Send + Sync>) {
        let _ = self.waker.set(waker);
    }

    fn wake(&self) {
        if let Some(w) = self.waker.get() {
            w();
        }
    }

    /// Non-blocking push: `Err(Full)` when at capacity — the caller sheds.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        self.wake();
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pushes fail from now on, pops drain what remains.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
        self.wake();
    }

    /// Non-blocking pop: an item if one is queued, [`Pop::Empty`] if the
    /// queue is open but empty, [`Pop::Closed`] once closed and drained.
    pub fn try_pop(&self) -> Pop<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        match s.items.pop_front() {
            Some(item) => Pop::Item(item),
            None if s.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Blocking pop: waits for an item; returns [`Pop::Closed`] once the
    /// queue is closed *and* empty (never [`Pop::Empty`]).
    pub fn pop(&self) -> Pop<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Closed;
            }
            s = self.available.wait(s).expect("queue poisoned");
        }
    }

    /// Pop with a wait bounded by `timeout`: [`Pop::Empty`] if nothing
    /// arrived in time.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::Empty;
            }
            let (guard, _) = self
                .available
                .wait_timeout(s, deadline - now)
                .expect("queue poisoned");
            s = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert!(matches!(q.pop(), Pop::Item(1)));
        assert!(matches!(q.pop(), Pop::Item(2)));
        assert!(matches!(q.pop(), Pop::Closed));
    }

    #[test]
    fn pop_timeout_reports_empty_on_an_open_queue() {
        let q: Bounded<u32> = Bounded::new(1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Pop::Empty
        ));
    }

    #[test]
    fn waker_fires_on_push_and_close_and_try_pop_drains() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        let rings = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&rings);
        q.set_waker(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(matches!(q.try_pop(), Pop::Empty));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(rings.load(Ordering::SeqCst), 2, "one ring per push");
        assert!(matches!(q.try_pop(), Pop::Item(1)));
        q.close();
        assert_eq!(rings.load(Ordering::SeqCst), 3, "close rings too");
        assert!(matches!(q.try_pop(), Pop::Item(2)));
        assert!(matches!(q.try_pop(), Pop::Closed));
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || match q2.pop() {
            Pop::Item(v) => v,
            other => panic!("unexpected {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
