//! Cluster coordination: ring-routing decisions, peer artifact exchange,
//! and the counters that make both observable.
//!
//! One [`ClusterState`] per serve process ties three things together:
//!
//! 1. **Request routing** — [`ClusterState::route_request`] answers, for
//!    every decoded client request, whether this node serves it locally,
//!    redirects the client to the ring owner ([`Status::NotOwner`] with
//!    the owner's address), or proxies it to the owner itself. A
//!    *relayed* request ([`Request::relayed`]) is always served locally:
//!    that single rule bounds every request to at most one redirect hop
//!    and makes routing loops structurally impossible, even when the
//!    member lists of client and servers disagree.
//! 2. **Peer artifact exchange** — the state implements
//!    [`replay_sim::Exchange`], so a disk-backed
//!    [`replay_sim::TraceStore`] that misses locally pulls the warm RPAS
//!    container from the peers on the artifact key's own ring route
//!    (pull-on-miss), and announces freshly synthesized artifacts to a
//!    small fanout of ring successors (gossip-on-write). Every inbound
//!    container passes [`replay_store::Store::import`]'s full container
//!    validation *and* the trace round-trip gate before anything trusts
//!    it.
//! 3. **Counters** — `serve.ring.*` and `serve.peer.*` totals, merged
//!    into the server's metrics profile at drain.
//!
//! Byte-identity across nodes costs nothing here: every node renders
//! responses through the same deterministic
//! [`replay_sim::report::render_report`] path, so a proxied, redirected,
//! or failed-over response is bit-equal to a local one — which is why
//! proxy failure can safely *fall back to local simulation* instead of
//! failing the request.

use crate::proto::{
    read_frame, write_frame, Message, PeerArtifact, PeerFetch, PeerPush, Request, Response, Status,
};
use crate::ring::Ring;
use replay_obs::Obs;
use replay_sim::Exchange;
use replay_store::Store;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cluster membership and behavior knobs for one serve process.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's advertised address — what peers and clients dial, and
    /// what [`Status::NotOwner`] redirects carry. Must be one of `peers`
    /// (it is added if missing).
    pub self_addr: String,
    /// Every member's advertised address, including this node's. Order
    /// and duplicates are irrelevant; the ring sorts and dedups.
    pub peers: Vec<String>,
    /// Serve misrouted requests by proxying to the owner (`true`) instead
    /// of answering [`Status::NotOwner`] (`false`, the default). Proxy
    /// failure falls back to local simulation — responses are
    /// byte-identical from any node, so correctness never depends on the
    /// owner being reachable.
    pub proxy: bool,
    /// Gossip fanout: a freshly synthesized artifact is pushed to this
    /// many ring successors of its key (0 disables gossip; pull-on-miss
    /// still works).
    pub push_fanout: usize,
    /// Connect/IO timeout for peer artifact RPCs. Short: a slow peer
    /// must cost less than the synthesis it would save.
    pub peer_io_timeout: Duration,
    /// Connect/IO timeout for proxied simulation requests. Long: a proxy
    /// carries a full simulation.
    pub proxy_timeout: Duration,
}

impl ClusterConfig {
    /// A config with default knobs for `self_addr` within `peers`.
    pub fn new(self_addr: impl Into<String>, peers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            self_addr: self_addr.into(),
            peers,
            proxy: false,
            push_fanout: 1,
            peer_io_timeout: Duration::from_secs(2),
            proxy_timeout: Duration::from_secs(60),
        }
    }
}

/// Where a decoded client request must go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestRoute {
    /// This node owns the key (or the request is relayed, or the ring is
    /// trivial): simulate locally.
    Local,
    /// Another node owns the key: answer [`Status::NotOwner`] carrying
    /// this owner address.
    Redirect(String),
    /// Another node owns the key and proxying is on: forward there.
    Proxy(String),
}

/// Shared, immutable-after-construction cluster state plus counters.
/// Cheap to share across fronts and the dispatcher behind an `Arc`.
pub struct ClusterState {
    cfg: ClusterConfig,
    ring: Ring,
    /// The local artifact store peers may fetch from (the trace store's
    /// disk); `None` when this node runs storeless.
    disk: Option<&'static Store>,
    // serve.ring.*
    owned: AtomicU64,
    relayed_served: AtomicU64,
    redirected: AtomicU64,
    proxied: AtomicU64,
    proxy_fallback: AtomicU64,
    // serve.peer.*
    artifact_pulls: AtomicU64,
    pull_misses: AtomicU64,
    artifact_pushes: AtomicU64,
    push_recv: AtomicU64,
    push_rejected: AtomicU64,
    fetch_served: AtomicU64,
    fetch_missing: AtomicU64,
}

impl std::fmt::Debug for ClusterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterState")
            .field("self_addr", &self.cfg.self_addr)
            .field("members", &self.ring.nodes())
            .field("proxy", &self.cfg.proxy)
            .finish()
    }
}

impl ClusterState {
    /// Builds the state: the ring over `peers ∪ {self_addr}`, counters at
    /// zero. `disk` is the local artifact store peers may fetch from.
    pub fn new(cfg: ClusterConfig, disk: Option<&'static Store>) -> ClusterState {
        let mut members = cfg.peers.clone();
        if !members.contains(&cfg.self_addr) {
            members.push(cfg.self_addr.clone());
        }
        let ring = Ring::new(members);
        ClusterState {
            cfg,
            ring,
            disk,
            owned: AtomicU64::new(0),
            relayed_served: AtomicU64::new(0),
            redirected: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            proxy_fallback: AtomicU64::new(0),
            artifact_pulls: AtomicU64::new(0),
            pull_misses: AtomicU64::new(0),
            artifact_pushes: AtomicU64::new(0),
            push_recv: AtomicU64::new(0),
            push_rejected: AtomicU64::new(0),
            fetch_served: AtomicU64::new(0),
            fetch_missing: AtomicU64::new(0),
        }
    }

    /// The ring shared by every member.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// This node's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.cfg.self_addr
    }

    /// Routes one decoded client request, counting the decision.
    ///
    /// The anti-loop invariant lives here: a request with
    /// [`Request::relayed`] set is *always* [`RequestRoute::Local`] — a
    /// node never redirects or proxies a request that has already been
    /// routed once, no matter what its own ring says.
    pub fn route_request(&self, req: &Request) -> RequestRoute {
        if req.relayed {
            self.relayed_served.fetch_add(1, Ordering::Relaxed);
            return RequestRoute::Local;
        }
        match self.ring.owner(req.key()) {
            None => RequestRoute::Local,
            Some(owner) if owner == self.cfg.self_addr => {
                self.owned.fetch_add(1, Ordering::Relaxed);
                RequestRoute::Local
            }
            Some(owner) if self.cfg.proxy => RequestRoute::Proxy(owner.to_string()),
            Some(owner) => {
                self.redirected.fetch_add(1, Ordering::Relaxed);
                RequestRoute::Redirect(owner.to_string())
            }
        }
    }

    /// Forwards a request to its owner and returns the owner's response,
    /// or `None` on any transport failure (the caller falls back to local
    /// simulation — byte-identical by construction — and the fallback is
    /// counted). The forwarded copy travels with `relayed` set, so the
    /// owner can never answer `NotOwner` back: proxy chains are one hop
    /// by the same invariant that bounds client redirects.
    pub fn proxy_request(&self, owner: &str, req: &Request) -> Option<Response> {
        let mut relayed = req.clone();
        relayed.relayed = true;
        let reply = peer_call(owner, &relayed.encode(), self.cfg.proxy_timeout).ok()?;
        match Response::decode(&reply) {
            Ok(resp) => {
                self.proxied.fetch_add(1, Ordering::Relaxed);
                Some(resp)
            }
            Err(_) => None,
        }
    }

    /// Counts a proxy failure that fell back to local simulation.
    pub fn count_proxy_fallback(&self) {
        self.proxy_fallback.fetch_add(1, Ordering::Relaxed);
    }

    /// Serves a peer's artifact fetch from the local store.
    pub fn serve_fetch(&self, fetch: &PeerFetch) -> PeerArtifact {
        let container = self
            .disk
            .and_then(|d| d.export(&fetch.class, fetch.key))
            .unwrap_or_default();
        if container.is_empty() {
            self.fetch_missing.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fetch_served.fetch_add(1, Ordering::Relaxed);
        }
        PeerArtifact {
            class: fetch.class.clone(),
            key: fetch.key,
            container,
        }
    }

    /// Admits (or rejects) a gossiped artifact into the local store.
    /// Import re-validates the container against `(class, key)`, so a
    /// hostile push can be refused but never poison the store.
    pub fn serve_push(&self, push: &PeerPush) -> Response {
        let admitted = self
            .disk
            .map(|d| d.import(&push.class, push.key, &push.container))
            .unwrap_or(false);
        if admitted {
            self.push_recv.fetch_add(1, Ordering::Relaxed);
            Response::ok(Vec::new())
        } else {
            self.push_rejected.fetch_add(1, Ordering::Relaxed);
            Response::reject(Status::BadRequest, "artifact rejected")
        }
    }

    /// Records the cluster counters into `obs` under `serve.ring.*` and
    /// `serve.peer.*`.
    pub fn observe_into(&self, obs: &mut Obs) {
        if !obs.enabled() {
            return;
        }
        obs.counter("serve.ring.members", self.ring.len() as u64);
        obs.counter("serve.ring.owned", self.owned.load(Ordering::Relaxed));
        obs.counter(
            "serve.ring.relayed_served",
            self.relayed_served.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.ring.redirected",
            self.redirected.load(Ordering::Relaxed),
        );
        obs.counter("serve.ring.proxied", self.proxied.load(Ordering::Relaxed));
        obs.counter(
            "serve.ring.proxy_fallback",
            self.proxy_fallback.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.artifact_pulls",
            self.artifact_pulls.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.pull_misses",
            self.pull_misses.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.artifact_pushes",
            self.artifact_pushes.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.push_recv",
            self.push_recv.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.push_rejected",
            self.push_rejected.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.fetch_served",
            self.fetch_served.load(Ordering::Relaxed),
        );
        obs.counter(
            "serve.peer.fetch_missing",
            self.fetch_missing.load(Ordering::Relaxed),
        );
    }

    /// The peers to ask for (or push) an artifact keyed `key`, in ring
    /// order starting at the key's owner, excluding this node.
    fn peers_for(&self, key: u64) -> Vec<String> {
        self.ring
            .route(key)
            .into_iter()
            .filter(|p| *p != self.cfg.self_addr)
            .map(str::to_string)
            .collect()
    }
}

impl Exchange for ClusterState {
    /// Pull-on-miss: walk the artifact key's ring route (the nodes most
    /// likely to hold it — the owner first, then the nodes gossip fans
    /// out to) and return the first peer's container. Transport errors
    /// and misses just move to the next peer; validation happens at the
    /// importing store, not here.
    fn fetch(&self, class: &str, key: u64) -> Option<Vec<u8>> {
        let msg = PeerFetch {
            class: class.to_string(),
            key,
        }
        .encode();
        for peer in self.peers_for(key) {
            let Ok(reply) = peer_call(&peer, &msg, self.cfg.peer_io_timeout) else {
                continue;
            };
            match Message::decode(&reply) {
                Ok(Message::PeerArtifact(a)) if a.class == class && a.key == key && a.found() => {
                    self.artifact_pulls.fetch_add(1, Ordering::Relaxed);
                    return Some(a.container);
                }
                _ => continue,
            }
        }
        self.pull_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Gossip-on-write: push the fresh container to the first
    /// `push_fanout` ring successors of its key. Best effort and
    /// synchronous — the cost is bounded by `peer_io_timeout × fanout`
    /// and paid only on synthesis, which dwarfs it.
    fn publish(&self, class: &str, key: u64, container: &[u8]) {
        if self.cfg.push_fanout == 0 {
            return;
        }
        let msg = PeerPush {
            class: class.to_string(),
            key,
            container: container.to_vec(),
        }
        .encode();
        for peer in self.peers_for(key).into_iter().take(self.cfg.push_fanout) {
            if let Ok(reply) = peer_call(&peer, &msg, self.cfg.peer_io_timeout) {
                if matches!(Response::decode(&reply), Ok(r) if r.status == Status::Ok) {
                    self.artifact_pushes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One framed request/response round trip to a peer with a bounded
/// connect (resolving the address first so a black-holed peer costs
/// `timeout`, not the OS connect default).
fn peer_call(addr: &str, payload: &[u8], timeout: Duration) -> io::Result<Vec<u8>> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable peer"))?;
    let mut conn = TcpStream::connect_timeout(&sock, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    let _ = conn.set_nodelay(true);
    write_frame(&mut conn, payload)?;
    read_frame(&mut conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Source;

    fn members() -> Vec<String> {
        vec![
            "10.0.0.1:21075".to_string(),
            "10.0.0.2:21075".to_string(),
            "10.0.0.3:21075".to_string(),
        ]
    }

    fn state_at(self_addr: &str) -> ClusterState {
        ClusterState::new(ClusterConfig::new(self_addr, members()), None)
    }

    fn req(name: &str) -> Request {
        Request {
            source: Source::Workload(name.to_string()),
            scale: 1000,
            timings: false,
            deadline_ms: 0,
            relayed: false,
        }
    }

    #[test]
    fn every_member_agrees_on_the_route_of_every_request() {
        let states: Vec<ClusterState> = members().iter().map(|m| state_at(m)).collect();
        for name in ["gzip", "eon", "mcf", "twolf", "crafty", "vortex"] {
            let r = req(name);
            let owner = states[0].ring().owner(r.key()).unwrap().to_string();
            let mut locals = 0;
            for s in &states {
                match s.route_request(&r) {
                    RequestRoute::Local => {
                        assert_eq!(s.self_addr(), owner, "only the owner serves locally");
                        locals += 1;
                    }
                    RequestRoute::Redirect(to) => {
                        assert_eq!(to, owner, "redirects all point at the owner");
                    }
                    RequestRoute::Proxy(_) => panic!("proxy is off"),
                }
            }
            assert_eq!(locals, 1, "{name}: exactly one owner");
        }
    }

    #[test]
    fn relayed_requests_are_always_served_locally() {
        // The anti-hot-loop invariant: once routed, a request can never
        // be redirected again — by any node, owner or not.
        for member in members() {
            let s = state_at(&member);
            let mut r = req("gzip");
            r.relayed = true;
            assert_eq!(s.route_request(&r), RequestRoute::Local, "{member}");
        }
    }

    #[test]
    fn proxy_mode_forwards_instead_of_redirecting() {
        let mut cfg = ClusterConfig::new("10.0.0.1:21075", members());
        cfg.proxy = true;
        let s = ClusterState::new(cfg, None);
        for name in ["gzip", "eon", "mcf", "twolf"] {
            let r = req(name);
            let owner = s.ring().owner(r.key()).unwrap().to_string();
            match s.route_request(&r) {
                RequestRoute::Local => assert_eq!(owner, "10.0.0.1:21075"),
                RequestRoute::Proxy(to) => assert_eq!(to, owner),
                RequestRoute::Redirect(_) => panic!("proxy mode must not redirect"),
            }
        }
    }

    #[test]
    fn self_is_added_to_the_member_list_when_missing() {
        let s = ClusterState::new(ClusterConfig::new("10.0.0.9:21075", members()), None);
        assert_eq!(s.ring().len(), 4);
        assert!(s.ring().nodes().contains(&"10.0.0.9:21075".to_string()));
    }

    #[test]
    fn storeless_node_answers_fetches_with_a_miss_and_rejects_pushes() {
        let s = state_at("10.0.0.1:21075");
        let art = s.serve_fetch(&PeerFetch {
            class: "trace".into(),
            key: 42,
        });
        assert!(!art.found());
        assert_eq!((art.class.as_str(), art.key), ("trace", 42));
        let ack = s.serve_push(&PeerPush {
            class: "trace".into(),
            key: 42,
            container: vec![1, 2, 3],
        });
        assert_eq!(ack.status, Status::BadRequest);
        let mut obs = Obs::collecting();
        s.observe_into(&mut obs);
        let p = obs.into_profile();
        assert_eq!(p.counter("serve.peer.fetch_missing"), 1);
        assert_eq!(p.counter("serve.peer.push_rejected"), 1);
        assert_eq!(p.counter("serve.ring.members"), 3);
    }

    #[test]
    fn peers_for_excludes_self_and_starts_at_the_owner_side() {
        let s = state_at("10.0.0.2:21075");
        for key in [1u64, 99, 12345, u64::MAX] {
            let peers = s.peers_for(key);
            assert_eq!(peers.len(), 2);
            assert!(!peers.contains(&"10.0.0.2:21075".to_string()));
        }
    }
}
