//! A zero-dependency readiness-polling shim: `epoll` + `eventfd` via raw
//! syscalls.
//!
//! `std` exposes no readiness API and the workspace bans external crates,
//! so this module talks to the kernel directly — `syscall`/`svc`
//! instructions through `std::arch::asm!`, no `libc`. Like
//! [`crate::signal`], it is a narrowly-scoped opt-out from the crate's
//! `deny(unsafe_code)`: all `unsafe` lives in the private `sys` module,
//! which wraps exactly five syscalls (`epoll_create1`, `epoll_ctl`,
//! `epoll_pwait`, `eventfd2`, `prlimit64`) plus `read`/`write`/`close`
//! on the eventfd, and every wrapper converts a negative return into a
//! typed [`io::Error`].
//!
//! The public surface is safe and minimal:
//!
//! - [`Poller`] — an epoll instance. Register file descriptors with a
//!   caller-chosen `u64` token and an [`Interest`]; [`Poller::wait`]
//!   fills a buffer of [`Event`]s (level-triggered, so a handler that
//!   reads until `WouldBlock` never loses data).
//! - [`Doorbell`] — a nonblocking `eventfd` used to wake the poll loop
//!   from another thread ([`Doorbell::ring`] is async-signal-safe and
//!   cheap; the loop registers [`Doorbell::fd`] and calls
//!   [`Doorbell::drain`] on wakeup).
//! - [`supported`] — whether this target has the shim at all. On
//!   unsupported targets every constructor returns
//!   [`io::ErrorKind::Unsupported`] and the server falls back to the
//!   thread-per-connection path.
//!
//! Tokens, not pointers, ride in `epoll_data`: the loop owns a map from
//! token to connection, so there is no aliasing to get wrong and a stale
//! event for a closed connection is just a failed map lookup.

use std::io;

/// True when the readiness shim works on this target (Linux on x86_64 or
/// aarch64). Everywhere else the event-driven server mode is unavailable
/// and [`Poller::new`] returns [`io::ErrorKind::Unsupported`].
pub const fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Which readiness a registration asks for. Error/hangup conditions are
/// always reported regardless of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Neither — the fd stays registered (hangup still reported) but
    /// produces no readiness wakeups. Used while a request is dispatched
    /// and the connection has nothing to read or write.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has data to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored (`EPOLLERR | EPOLLHUP |
    /// EPOLLRDHUP`); the connection is finished either way.
    pub closed: bool,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod sys {
    //! The unsafe core: raw syscalls and the kernel ABI structs. Nothing
    //! here is public outside [`super`].

    use std::arch::asm;
    use std::io;

    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PRLIMIT64: usize = 302;
    }
    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PRLIMIT64: usize = 261;
    }

    /// One raw syscall. The kernel never unwinds and the wrappers below
    /// only pass pointers to memory they own for the duration of the
    /// call, which is what makes the `asm!` blocks sound.
    #[cfg(target_arch = "x86_64")]
    fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// One raw syscall (aarch64 `svc 0` convention).
    #[cfg(target_arch = "aarch64")]
    fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a as isize => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Negative returns are `-errno`; map them to `io::Error`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// The kernel's `struct epoll_event`. Packed on x86_64 only — that is
    /// the one ABI where the struct is unaligned; everywhere else it has
    /// natural alignment.
    #[derive(Clone, Copy, Default)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EFD_CLOEXEC: usize = 0x80000;
    const EFD_NONBLOCK: usize = 0x800;

    pub fn epoll_create1() -> io::Result<i32> {
        check(syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0)).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(
        epfd: i32,
        op: i32,
        fd: i32,
        event: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event.map_or(0usize, |e| e as *mut EpollEvent as usize);
        check(syscall6(
            nr::EPOLL_CTL,
            epfd as usize,
            op as usize,
            fd as usize,
            ptr,
            0,
            0,
        ))
        .map(|_| ())
    }

    /// `epoll_pwait` with a null sigmask — identical to `epoll_wait`,
    /// but the syscall number exists on every architecture (aarch64
    /// never had plain `epoll_wait`).
    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        check(syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0,
            0,
        ))
    }

    pub fn eventfd() -> io::Result<i32> {
        check(syscall6(
            nr::EVENTFD2,
            0,
            EFD_CLOEXEC | EFD_NONBLOCK,
            0,
            0,
            0,
            0,
        ))
        .map(|fd| fd as i32)
    }

    pub fn write_u64(fd: i32, v: u64) -> io::Result<usize> {
        let buf = v.to_ne_bytes();
        check(syscall6(
            nr::WRITE,
            fd as usize,
            buf.as_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        ))
    }

    pub fn read_u64(fd: i32) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        check(syscall6(
            nr::READ,
            fd as usize,
            buf.as_mut_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        ))?;
        Ok(u64::from_ne_bytes(buf))
    }

    pub fn close(fd: i32) {
        let _ = syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0);
    }

    #[repr(C)]
    struct RLimit64 {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: usize = 7;

    /// Reads the (soft, hard) open-file limits of this process.
    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        let mut old = RLimit64 { cur: 0, max: 0 };
        check(syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            0,
            &mut old as *mut RLimit64 as usize,
            0,
            0,
        ))?;
        Ok((old.cur, old.max))
    }

    /// Raises the soft open-file limit to `min(want, hard)`.
    pub fn raise_nofile(want: u64) -> io::Result<u64> {
        let (cur, max) = nofile_limits()?;
        let target = want.min(max);
        if target <= cur {
            return Ok(cur);
        }
        let new = RLimit64 { cur: target, max };
        check(syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            &new as *const RLimit64 as usize,
            0,
            0,
            0,
        ))?;
        Ok(target)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::{sys, Event, Interest};
    use std::io;

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    /// An epoll instance plus its reusable kernel-event buffer.
    pub struct Poller {
        epfd: i32,
        buf: Vec<sys::EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::epoll_create1()?,
                buf: vec![sys::EpollEvent::default(); 1024],
            })
        }

        pub fn add(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
        }

        pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Some(&mut ev))
        }

        pub fn remove(&mut self, fd: i32) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            out.clear();
            let n = match sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for raw in &self.buf[..n] {
                // Copy packed fields out by value; references into a
                // packed struct would be unaligned.
                let events = { raw.events };
                let data = { raw.data };
                out.push(Event {
                    token: data,
                    readable: events & sys::EPOLLIN != 0,
                    writable: events & sys::EPOLLOUT != 0,
                    closed: events & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }

    /// A nonblocking eventfd.
    pub struct Doorbell {
        fd: i32,
    }

    impl Doorbell {
        pub fn new() -> io::Result<Doorbell> {
            Ok(Doorbell {
                fd: sys::eventfd()?,
            })
        }

        pub fn fd(&self) -> i32 {
            self.fd
        }

        pub fn ring(&self) {
            // EAGAIN means the counter is already saturated — the loop is
            // guaranteed to wake, which is all a ring promises.
            let _ = sys::write_u64(self.fd, 1);
        }

        pub fn drain(&self) {
            while sys::read_u64(self.fd).is_ok() {}
        }
    }

    impl Drop for Doorbell {
        fn drop(&mut self) {
            sys::close(self.fd);
        }
    }

    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        sys::nofile_limits()
    }

    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        sys::raise_nofile(want)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::{Event, Interest};
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling requires linux on x86_64 or aarch64",
        ))
    }

    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }
        pub fn add(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn modify(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn remove(&mut self, _fd: i32) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(&mut self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    pub struct Doorbell {}

    impl Doorbell {
        pub fn new() -> io::Result<Doorbell> {
            unsupported()
        }
        pub fn fd(&self) -> i32 {
            -1
        }
        pub fn ring(&self) {}
        pub fn drain(&self) {}
    }

    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        unsupported()
    }

    pub fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
        unsupported()
    }
}

/// A readiness poller (one epoll instance). Level-triggered: an fd that
/// still has unread data re-reports readable on the next [`Poller::wait`].
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// Creates the epoll instance ([`io::ErrorKind::Unsupported`] when
    /// [`supported`] is false).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest. Hangup and
    /// error conditions are always reported.
    pub fn add(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Changes the interest (and token) of an already-registered fd.
    pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Deregisters `fd`. Closing the fd deregisters it implicitly; this
    /// exists for fds that outlive their registration.
    pub fn remove(&mut self, fd: i32) -> io::Result<()> {
        self.inner.remove(fd)
    }

    /// Waits up to `timeout_ms` (`-1` = forever, `0` = poll) and fills
    /// `out` with ready events. Returns the event count; `EINTR` is
    /// absorbed and reported as zero events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.inner.wait(out, timeout_ms)
    }
}

/// A cross-thread wakeup for the poll loop: any thread may
/// [`Doorbell::ring`]; the loop registers [`Doorbell::fd`] readable and
/// [`Doorbell::drain`]s on wakeup. Backed by a nonblocking `eventfd`.
pub struct Doorbell {
    inner: imp::Doorbell,
}

impl Doorbell {
    /// Creates the eventfd ([`io::ErrorKind::Unsupported`] when
    /// [`supported`] is false).
    pub fn new() -> io::Result<Doorbell> {
        Ok(Doorbell {
            inner: imp::Doorbell::new()?,
        })
    }

    /// The fd to register with a [`Poller`].
    pub fn fd(&self) -> i32 {
        self.inner.fd()
    }

    /// Wakes the poll loop. Never blocks; safe from any thread.
    pub fn ring(&self) {
        self.inner.ring()
    }

    /// Consumes pending rings so the fd stops reporting readable.
    pub fn drain(&self) {
        self.inner.drain()
    }
}

/// The process's (soft, hard) open-file limits.
pub fn nofile_limits() -> io::Result<(u64, u64)> {
    imp::nofile_limits()
}

/// Raises the soft open-file limit toward `want` (clamped to the hard
/// limit) and returns the resulting soft limit. High-connection-count
/// serving and the load tests call this so a conservative inherited
/// `ulimit -n` does not masquerade as a server defect.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    imp::raise_nofile_limit(want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn doorbell_wakes_and_drains() {
        if !supported() {
            return;
        }
        let mut poller = Poller::new().expect("epoll");
        let bell = Doorbell::new().expect("eventfd");
        poller.add(bell.fd(), 7, Interest::READ).expect("add bell");
        let mut events = Vec::new();
        // Nothing rung: a zero-timeout wait sees nothing.
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty());
        bell.ring();
        bell.ring();
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        bell.drain();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "drained doorbell must go quiet");
    }

    #[test]
    fn socket_readiness_and_hangup_are_reported() {
        if !supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("epoll");
        poller
            .add(server_side.as_raw_fd(), 42, Interest::READ)
            .expect("add");
        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "no data yet");

        client.write_all(b"ping").expect("write");
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        drop(client);
        // Give the kernel a beat to deliver the FIN, then expect closed.
        std::thread::sleep(Duration::from_millis(10));
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].closed, "peer hangup must surface as closed");
    }

    #[test]
    fn interest_modify_gates_writable_reporting() {
        if !supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("epoll");
        let fd = server_side.as_raw_fd();
        poller.add(fd, 1, Interest::NONE).expect("add");
        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "no interest, no events");
        poller.modify(fd, 1, Interest::WRITE).expect("modify");
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].writable, "an idle socket is writable");
        poller.remove(fd).expect("remove");
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "removed fd must not report");
    }

    #[test]
    fn nofile_limit_is_readable_and_raisable() {
        if !supported() {
            return;
        }
        let (cur, max) = nofile_limits().expect("limits");
        assert!(cur >= 1 && max >= cur);
        // Re-raising to the current soft limit is a no-op that succeeds.
        assert_eq!(raise_nofile_limit(cur).expect("raise"), cur.max(cur));
    }
}
