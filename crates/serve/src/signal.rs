//! SIGTERM / SIGINT → shutdown flag, with no external crates.
//!
//! `std` exposes no signal API, so on Unix this registers a handler via
//! the C `signal(2)` entry point directly — the one place in the
//! workspace that needs FFI, and therefore the one narrowly-scoped
//! exception to the `unsafe` ban (the crate root carries
//! `deny(unsafe_code)`; this module opts back in for two calls). The
//! handler body only stores to a static atomic, which is async-signal-
//! safe. Non-Unix builds compile to a no-op installer; programmatic
//! shutdown (the server's own flag) still works everywhere.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler on SIGTERM/SIGINT. The server's accept loop
/// polls this alongside its own programmatic flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a termination signal has been delivered (or [`trigger`] was
/// called).
pub fn triggered() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the flag as if a signal had arrived — used by tests and by
/// embedders that manage their own signal handling.
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `sighandler_t signal(int signum, sighandler_t handler)` — the
        // return value (previous handler) is deliberately ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent). Call once before
/// [`Server::run`](crate::Server::run) to make ctrl-c and `kill -TERM`
/// initiate a graceful drain instead of killing the process mid-request.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_the_flag() {
        // No signal delivery in unit tests (it would race other tests in
        // the same process); the programmatic path is what the server's
        // tests use, and `install` must at least not crash.
        install();
        assert!(!triggered() || triggered()); // no assumption about prior state
        trigger();
        assert!(triggered());
    }
}
