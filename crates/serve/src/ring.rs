//! The consistent-hash ring that turns N serve instances into one
//! sharded cache.
//!
//! Every request carries a [`Digest64`] content key (see
//! [`crate::proto::Request::key`]); the ring maps that key space onto the
//! cluster's node addresses so that **every node — and every client —
//! computes the same owner for the same key from nothing but the member
//! list**. There is no coordinator and no membership protocol: the ring
//! is a pure function of the sorted, deduplicated address list, which is
//! exactly what lets a server and a client that were given the same
//! `--peers` list agree without ever exchanging ring state.
//!
//! Each node is hashed onto the ring at [`VNODES`] pseudo-random points
//! (virtual nodes); a key is owned by the node whose point is the first
//! at or clockwise-after the key. Virtual nodes are what makes the two
//! classic consistent-hashing properties hold in practice, and the unit
//! tests pin both:
//!
//! * **balance** — with `V` points per node the expected share of each of
//!   `N` nodes is `1/N`, with relative spread shrinking like
//!   `1/sqrt(V)`;
//! * **minimal disruption** — removing one node only reassigns the keys
//!   that node owned (≈ `K/N` of `K` keys), because the other nodes'
//!   points do not move.
//!
//! [`Ring::route`] extends ownership into a deterministic failover
//! order: the distinct nodes in ring order starting from the key's owner.
//! A client that walks this order on connect failure lands exactly on the
//! node that would own the key if the dead owner were removed from the
//! ring — failover and remapping agree by construction.
//!
//! [`Digest64`]: replay_store::Digest64

use replay_store::Digest64;

/// Virtual nodes (ring points) per member address.
///
/// 64 keeps the per-node load spread within a few percent at single-digit
/// cluster sizes while keeping ring construction and lookup trivially
/// cheap (a sort of `64 * N` points once, one binary search per lookup).
pub const VNODES: u32 = 64;

/// A deterministic consistent-hash ring over node addresses.
///
/// Construction sorts and deduplicates the member list, so any two
/// parties holding the same *set* of addresses — in any order, with
/// duplicates — build bit-identical rings.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted, deduplicated member addresses.
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point (ties broken by index, which
    /// is deterministic because `nodes` is sorted).
    points: Vec<(u64, u32)>,
}

/// Finalizing mix (the SplitMix64 output permutation). FNV-1a is the
/// repo's content digest, but its avalanche is too weak for ring
/// placement: short, similar inputs (node addresses differing in one
/// digit, replica counters with three zero bytes) leave the high bits —
/// the ones a sorted-ring binary search keys on — badly clustered, and
/// one node ends up owning most of the key space. A bijective finalizer
/// spreads both the points and the looked-up keys uniformly without
/// changing what either party has to agree on.
fn spread(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The ring position of one virtual node.
fn point(node: &str, replica: u32) -> u64 {
    let mut d = Digest64::new();
    d.write_str("replay-serve/ring");
    d.write_str(node);
    d.write_u32(replica);
    spread(d.finish())
}

impl Ring {
    /// Builds the ring over `members` (order and duplicates are
    /// irrelevant: the list is sorted and deduplicated first).
    ///
    /// An empty member list yields an empty ring; [`Ring::owner`] and
    /// [`Ring::route`] on an empty ring return `None` / nothing rather
    /// than panicking, so a misconfigured caller degrades to "no owner"
    /// instead of crashing the serve path.
    pub fn new<I, S>(members: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut nodes: Vec<String> = members.into_iter().map(Into::into).collect();
        nodes.sort();
        nodes.dedup();
        let mut points: Vec<(u64, u32)> = Vec::with_capacity(nodes.len() * VNODES as usize);
        for (i, node) in nodes.iter().enumerate() {
            for replica in 0..VNODES {
                points.push((point(node, replica), i as u32));
            }
        }
        points.sort();
        Ring { nodes, points }
    }

    /// The sorted, deduplicated member addresses.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index into `points` of the first point at or clockwise-after
    /// `key`, wrapping at the top of the key space.
    fn first_point_at_or_after(&self, key: u64) -> usize {
        // Keys are FNV-1a content digests; spread them through the same
        // finalizer as the points so FNV's clustered high bits cannot
        // pile similar requests onto one arc of the ring. `spread` is a
        // bijection, so distinct keys stay distinct.
        let key = spread(key);
        let i = self.points.partition_point(|&(p, _)| p < key);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// The address that owns `key`, or `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let (_, node) = self.points[self.first_point_at_or_after(key)];
        Some(self.nodes[node as usize].as_str())
    }

    /// The deterministic failover order for `key`: every member exactly
    /// once, starting with the owner, continuing in ring order.
    ///
    /// The second entry is precisely the node that would own `key` if the
    /// first were removed from the ring (and so on down the list), so a
    /// client that rotates through this order on failure always lands on
    /// the node the surviving ring would elect.
    pub fn route(&self, key: u64) -> Vec<&str> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.first_point_at_or_after(key);
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::with_capacity(self.nodes.len());
        for off in 0..self.points.len() {
            let (_, node) = self.points[(start + off) % self.points.len()];
            if !seen[node as usize] {
                seen[node as usize] = true;
                out.push(self.nodes[node as usize].as_str());
                if out.len() == self.nodes.len() {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_rng::SmallRng;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:21075")).collect()
    }

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn ring_is_identical_regardless_of_member_order_and_duplicates() {
        let a = Ring::new(members(5));
        let mut shuffled = members(5);
        shuffled.reverse();
        shuffled.push(shuffled[0].clone()); // duplicate
        let b = Ring::new(shuffled);
        assert_eq!(a.nodes(), b.nodes());
        for key in keys(1_000, 7) {
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn every_key_has_exactly_one_owner_who_heads_its_route() {
        let ring = Ring::new(members(5));
        for key in keys(5_000, 1) {
            let owner = ring.owner(key).expect("non-empty ring owns every key");
            let route = ring.route(key);
            assert_eq!(route.len(), 5, "route visits every member once");
            assert_eq!(route[0], owner, "route starts at the owner");
            let mut sorted: Vec<&str> = route.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "route has no duplicates");
        }
    }

    #[test]
    fn load_is_balanced_within_a_factor_of_two() {
        let ring = Ring::new(members(5));
        let ks = keys(20_000, 2);
        let mut counts = std::collections::BTreeMap::new();
        for &k in &ks {
            *counts
                .entry(ring.owner(k).unwrap().to_string())
                .or_insert(0u64) += 1;
        }
        let expected = ks.len() as u64 / 5;
        for (node, count) in counts {
            assert!(
                count > expected / 2 && count < expected * 2,
                "{node}: {count} keys vs expected ~{expected}"
            );
        }
    }

    #[test]
    fn removing_one_node_remaps_only_about_one_nth_of_keys() {
        // The consistent-hashing contract: dropping one of N nodes moves
        // only the keys that node owned — about K/N of K keys — and every
        // key it did own moves to its route successor. A modulo-hash
        // router would remap (N-1)/N of all keys here.
        let n = 5;
        let full = Ring::new(members(n));
        let removed = &members(n)[2];
        let reduced = Ring::new(members(n).into_iter().filter(|m| m != removed));
        let ks = keys(20_000, 3);
        let mut remapped = 0usize;
        for &k in &ks {
            let before = full.owner(k).unwrap();
            let after = reduced.owner(k).unwrap();
            if before == removed.as_str() {
                remapped += 1;
                // The orphaned key lands exactly on its failover successor.
                assert_eq!(
                    after,
                    full.route(k)[1],
                    "orphaned key must move to its route successor"
                );
            } else {
                assert_eq!(before, after, "a surviving node's key must not move");
            }
        }
        let expected = ks.len() / n;
        assert!(
            remapped <= expected * 2,
            "remapped {remapped} of {} keys; expected ~{expected}",
            ks.len()
        );
        assert!(remapped >= expected / 2, "suspiciously few remapped keys");
    }

    #[test]
    fn empty_and_singleton_rings_degrade_gracefully() {
        let empty = Ring::new(Vec::<String>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.owner(42), None);
        assert!(empty.route(42).is_empty());

        let solo = Ring::new(["127.0.0.1:1".to_string()]);
        assert_eq!(solo.len(), 1);
        for key in keys(100, 4) {
            assert_eq!(solo.owner(key), Some("127.0.0.1:1"));
            assert_eq!(solo.route(key), vec!["127.0.0.1:1"]);
        }
    }
}
